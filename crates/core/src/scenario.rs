//! End-to-end session simulation: genuine users and attackers captured
//! through the physics and sensor substrates.
//!
//! This module is the testbed stand-in (§V/§VI of the paper): it places a
//! sound source (human mouth, loudspeaker, shielded loudspeaker, tube
//! outlet, ESL...) in a magnetic/acoustic scene, runs the protocol motion,
//! and records what the phone's microphone, magnetometer and IMU would
//! see. The output [`SessionData`] feeds the defense pipeline exactly as
//! an Android capture would.

use crate::pipeline::{BootstrapConfig, DefenseSystem};
use crate::session::SessionData;
use magshield_physics::acoustics::field::speech_band;
use magshield_physics::acoustics::source::AcousticSource;
use magshield_physics::acoustics::tube::SoundTube;
use magshield_physics::magnetics::dipole::MagneticDipole;
use magshield_physics::magnetics::evasion::ActiveCompensation;
use magshield_physics::magnetics::interference::EmfEnvironment;
use magshield_physics::magnetics::scene::{DrivenDipole, MagneticScene};
use magshield_physics::magnetics::shielding::Shield;
use magshield_sensors::phone::{Phone, PhoneModel};
use magshield_simkit::rng::SimRng;
use magshield_simkit::series::TimeSeries;
use magshield_simkit::units::DbSpl;
use magshield_simkit::vec3::Vec3;
use magshield_trajectory::motion::{MotionParams, SessionMotion};
use magshield_voice::attacks::{apply_device_response, attack_audio, AttackKind};
use magshield_voice::devices::PlaybackDevice;
use magshield_voice::profile::SpeakerProfile;
use magshield_voice::synth::{FormantSynthesizer, SessionEffects, VOICE_SAMPLE_RATE};

/// The genuine user of the system.
#[derive(Debug, Clone)]
pub struct UserContext {
    /// The user's voice.
    pub profile: SpeakerProfile,
    /// The enrolled passphrase.
    pub passphrase: String,
    /// The user's phone.
    pub phone: PhoneModel,
}

impl UserContext {
    /// Samples a user.
    pub fn sample(rng: &SimRng) -> Self {
        let mut prng = rng.fork("user-passphrase");
        Self {
            profile: SpeakerProfile::sample(0, rng),
            passphrase: magshield_voice::corpus::random_passphrase(6, &mut prng),
            phone: PhoneModel::Nexus5,
        }
    }
}

/// What is physically producing the sound.
#[derive(Debug, Clone)]
pub enum SourceKind {
    /// A live human mouth.
    HumanMouth,
    /// A playback device, optionally inside a Mu-metal shield.
    Device {
        /// The loudspeaker.
        device: PlaybackDevice,
        /// Whether a Mu-metal shield encloses it.
        shielded: bool,
    },
    /// A loudspeaker feeding a sound tube whose outlet sits at the source
    /// position (the §VII sound-tube attack). The speaker body (and its
    /// magnet) sits `tube.length_m` behind the outlet.
    DeviceViaTube {
        /// The loudspeaker.
        device: PlaybackDevice,
        /// The tube.
        tube: SoundTube,
    },
}

/// What is being said (and by whom).
#[derive(Debug, Clone)]
pub enum SpeechKind {
    /// The genuine user speaking the passphrase live.
    Genuine,
    /// An impersonation attack on the user's passphrase.
    Attack {
        /// Attack type.
        kind: AttackKind,
        /// The human attacker's own voice (morph source / mimic).
        attacker: SpeakerProfile,
    },
}

/// A fully specified verification scenario.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    /// The (claimed) user.
    pub user: UserContext,
    /// The physical sound source.
    pub source: SourceKind,
    /// The speech content.
    pub speech: SpeechKind,
    /// EMF environment.
    pub environment: EmfEnvironment,
    /// Protocol motion parameters.
    pub motion: MotionParams,
    /// When set, the hand motion pivots around this point instead of the
    /// sound source (attacker faking closeness to a distant speaker).
    pub off_center_pivot: Option<Vec3>,
    /// MagLive-style active compensation rig strapped to the playback
    /// device (magnetic-pattern evasion). Ignored for human sources.
    pub magnetic_evasion: Option<ActiveCompensation>,
}

impl ScenarioBuilder {
    /// A compliant genuine session at the default 5 cm final distance.
    pub fn genuine(user: &UserContext) -> Self {
        Self {
            user: user.clone(),
            source: SourceKind::HumanMouth,
            speech: SpeechKind::Genuine,
            environment: EmfEnvironment::quiet(),
            motion: MotionParams {
                approach_s: 1.0,
                // Long enough for the six-digit passphrase to span the
                // sweep at any speaker rate.
                sweep_s: 2.0,
                ..MotionParams::default()
            },
            off_center_pivot: None,
            magnetic_evasion: None,
        }
    }

    /// A machine-based attack: `kind` played through `device`, the phone
    /// operated compliantly at the same distances as a genuine session.
    pub fn machine_attack(
        user: &UserContext,
        kind: AttackKind,
        device: PlaybackDevice,
        attacker: SpeakerProfile,
    ) -> Self {
        let mut s = Self::genuine(user);
        s.source = SourceKind::Device {
            device,
            shielded: false,
        };
        s.speech = SpeechKind::Attack { kind, attacker };
        s
    }

    /// A human mimicry attack (live voice, no loudspeaker).
    pub fn mimicry_attack(user: &UserContext, attacker: SpeakerProfile) -> Self {
        let mut s = Self::genuine(user);
        s.speech = SpeechKind::Attack {
            kind: AttackKind::HumanMimicry,
            attacker,
        };
        s
    }

    /// Sets the final phone–source distance (m).
    pub fn at_distance(mut self, final_distance_m: f64) -> Self {
        self.motion.end_distance_m = final_distance_m;
        if self.motion.start_distance_m <= final_distance_m {
            self.motion.start_distance_m = final_distance_m + 0.15;
        }
        self
    }

    /// Wraps the playback device in a Mu-metal shield.
    pub fn with_shielding(mut self) -> Self {
        if let SourceKind::Device { shielded, .. } = &mut self.source {
            *shielded = true;
        }
        self
    }

    /// Replaces the EMF environment.
    pub fn in_environment(mut self, env: EmfEnvironment) -> Self {
        self.environment = env;
        self
    }

    /// Pivot the sweep around a fake center (attack-geometry motion).
    pub fn with_off_center_pivot(mut self, pivot: Vec3) -> Self {
        self.off_center_pivot = Some(pivot);
        self
    }

    /// Straps an active magnetic-compensation rig to the playback device
    /// (MagLive-style magnetic-pattern evasion).
    pub fn with_magnetic_evasion(mut self, rig: ActiveCompensation) -> Self {
        self.magnetic_evasion = Some(rig);
        self
    }

    /// Runs the capture simulation.
    pub fn capture(&self, rng: &SimRng) -> SessionData {
        let motion = match self.off_center_pivot {
            Some(pivot) => SessionMotion::generate_off_center(self.motion, pivot),
            None => SessionMotion::generate(self.motion),
        };
        let mut phone = Phone::new(self.user.phone, &rng.fork("phone"));
        let imu_rate = self.motion.sample_rate_hz;
        let audio_rate = phone.microphone.sample_rate();
        let duration = motion.duration();
        let n_audio = (duration * audio_rate) as usize;

        // ------------- speech content -------------
        let speech16k = self.render_speech(rng);
        let speech = TimeSeries::from_samples(VOICE_SAMPLE_RATE, speech16k)
            .resampled(audio_rate)
            .into_samples();

        // ------------- acoustic scene -------------
        let acoustic_source = self.acoustic_source();
        let band = speech_band();
        let positions = motion.positions();
        // Amplitude gain from source to phone per IMU sample.
        let gains: Vec<f64> = positions
            .iter()
            .map(|&p| {
                let e: f64 = band
                    .iter()
                    .map(|&f| acoustic_source.gain_at(p, f).powi(2))
                    .sum::<f64>()
                    / band.len() as f64;
                e.sqrt()
            })
            .collect();
        let gain_ts = TimeSeries::from_samples(imu_rate, gains);

        // Distance (m) from phone to the *physical* source per IMU sample,
        // for the pilot path (the pilot reflects off the sound-emitting
        // object in front of the phone).
        let dist_ts = TimeSeries::from_samples(imu_rate, motion.distances());

        // Protocol timing: the spoken command accompanies the *sweep* (the
        // sound-field verification needs speech while the phone crosses the
        // field; the approach segment is covered by the pilot alone).
        let speech_delay = (self.motion.approach_s * audio_rate) as usize;
        let mut mix = vec![0.0f64; n_audio];
        for (j, slot) in mix.iter_mut().enumerate() {
            let t = j as f64 / audio_rate;
            let s = j
                .checked_sub(speech_delay)
                .and_then(|k| speech.get(k))
                .copied()
                .unwrap_or(0.0);
            *slot = s * gain_ts.value_at(t) * 0.5;
        }
        // Received pilot: the phone emits it; the echo path follows the
        // phone–source distance.
        let dists_audio: Vec<f64> = (0..n_audio)
            .map(|j| dist_ts.value_at(j as f64 / audio_rate).max(0.01))
            .collect();
        let pilot = magshield_trajectory::ranging::render_received_pilot(
            phone.pilot_hz,
            audio_rate,
            &dists_audio,
        );
        for (slot, p) in mix.iter_mut().zip(&pilot) {
            *slot += 0.08 * p;
        }
        // Room noise.
        let mut nrng = rng.fork("room-noise");
        for slot in mix.iter_mut() {
            *slot += nrng.gauss(0.0, 0.002);
        }
        let audio = phone.microphone.record(&mix);
        // Secondary (noise-cancellation) microphone for dual-mic devices
        // (§VII): it sits at the top of the phone, one body length
        // (~9 cm) farther from the sound source, so it hears the speech
        // quieter and the pilot echo over a longer path.
        let audio2 = if self.user.phone.has_dual_microphones() {
            const MIC_SPACING_M: f64 = 0.09;
            let gains2: Vec<f64> = positions
                .iter()
                .map(|&p| {
                    let away = (p - self.motion.source).normalized() * MIC_SPACING_M;
                    let e: f64 = band
                        .iter()
                        .map(|&f| acoustic_source.gain_at(p + away, f).powi(2))
                        .sum::<f64>()
                        / band.len() as f64;
                    e.sqrt()
                })
                .collect();
            let gain2_ts = TimeSeries::from_samples(imu_rate, gains2);
            let mut mix2 = vec![0.0f64; n_audio];
            for (j, slot) in mix2.iter_mut().enumerate() {
                let t = j as f64 / audio_rate;
                let s = j
                    .checked_sub(speech_delay)
                    .and_then(|k| speech.get(k))
                    .copied()
                    .unwrap_or(0.0);
                *slot = s * gain2_ts.value_at(t) * 0.5;
            }
            let dists2: Vec<f64> = (0..n_audio)
                .map(|j| dist_ts.value_at(j as f64 / audio_rate).max(0.01) + MIC_SPACING_M)
                .collect();
            let pilot2 = magshield_trajectory::ranging::render_received_pilot(
                phone.pilot_hz,
                audio_rate,
                &dists2,
            );
            for (slot, p) in mix2.iter_mut().zip(&pilot2) {
                *slot += 0.08 * p;
            }
            let mut nrng2 = rng.fork("room-noise-2");
            for slot in mix2.iter_mut() {
                *slot += nrng2.gauss(0.0, 0.002);
            }
            let mut mic2 = magshield_sensors::microphone::Microphone::new(
                magshield_sensors::microphone::MicrophoneSpec::default(),
                rng.fork("mic2"),
            );
            Some(mic2.record(&mix2))
        } else {
            None
        };

        // ------------- magnetic scene -------------
        let mut scene = MagneticScene::quiet().with_environment(self.environment.clone());
        let drive_env = envelope_at_rate(&speech, audio_rate, imu_rate, motion.samples.len());
        match &self.source {
            SourceKind::HumanMouth => {}
            SourceKind::Device { device, shielded } => {
                if let Some(mut driver) =
                    device_driver(device, self.motion.source, drive_env.clone(), *shielded)
                {
                    if let Some(rig) = self.magnetic_evasion {
                        driver = driver.compensated(rig);
                    }
                    scene = scene.with_driver(driver);
                }
            }
            SourceKind::DeviceViaTube { device, tube } => {
                // The speaker body sits tube.length_m behind the outlet,
                // away from the phone (+y).
                let body = self.motion.source + Vec3::new(0.0, tube.length_m, 0.0);
                if let Some(mut driver) = device_driver(device, body, drive_env.clone(), false) {
                    if let Some(rig) = self.magnetic_evasion {
                        driver = driver.compensated(rig);
                    }
                    scene = scene.with_driver(driver);
                }
            }
        }
        let world_fields = scene.sample_along(&positions, imu_rate, &rng.fork("mag-scene"));
        // Rotate into the body frame using the true heading, then sensor-ize.
        let body_fields: Vec<Vec3> = world_fields
            .iter()
            .zip(&motion.samples)
            .map(|(&b, s)| b.rotated_z(-s.heading))
            .collect();
        let mag_readings = phone.magnetometer.read_series(&body_fields);

        // ------------- inertial readings -------------
        let accel_readings = phone
            .accelerometer
            .read_series(&motion.body_accelerations());
        let gyro_readings = phone.gyroscope.read_series(&motion.angular_rates());

        SessionData {
            claimed_speaker: self.user.profile.id,
            audio,
            audio2,
            audio_rate,
            pilot_hz: phone.pilot_hz,
            mag_readings,
            accel_readings,
            gyro_readings,
            imu_rate,
            sweep_start_s: self.motion.approach_s,
            earth_reference: scene.earth.field_at(),
        }
    }

    /// Renders the raw speech (voice rate) for this scenario.
    fn render_speech(&self, rng: &SimRng) -> Vec<f64> {
        let digits = &self.user.passphrase;
        let mut audio = match &self.speech {
            SpeechKind::Genuine => {
                let synth = FormantSynthesizer::default();
                let fx = SessionEffects::sample(&rng.fork("live-session"), 0.5);
                synth.render_digits(&self.user.profile, digits, fx, &rng.fork("live"))
            }
            SpeechKind::Attack { kind, attacker } => attack_audio(
                *kind,
                attacker,
                &self.user.profile,
                digits,
                &rng.fork("attack"),
            ),
        };
        // Playback-device coloration applies to machine-delivered audio.
        match &self.source {
            SourceKind::Device { device, .. } => {
                apply_device_response(&mut audio, VOICE_SAMPLE_RATE, device)
            }
            SourceKind::DeviceViaTube { device, tube } => {
                apply_device_response(&mut audio, VOICE_SAMPLE_RATE, device);
                apply_tube_coloration(&mut audio, VOICE_SAMPLE_RATE, tube);
            }
            SourceKind::HumanMouth => {}
        }
        audio
    }

    /// The piston source model for this scenario's emitter.
    fn acoustic_source(&self) -> AcousticSource {
        let pos = self.motion.source;
        let axis = Vec3::new(0.0, -1.0, 0.0); // facing the user/phone side
        match &self.source {
            SourceKind::HumanMouth => AcousticSource::human_mouth(pos, axis),
            SourceKind::Device { device, .. } => {
                AcousticSource::speaker(pos, axis, device.aperture_radius_m, DbSpl(70.0))
            }
            // The tube outlet radiates with the bore aperture; the speaker
            // body (and its magnet) is placed separately in the magnetic
            // scene, a tube-length behind.
            SourceKind::DeviceViaTube { tube, .. } => {
                AcousticSource::speaker(pos, axis, tube.bore_radius_m, DbSpl(66.0))
            }
        }
    }
}

/// Builds the magnetic driver for a playback device, or `None` for
/// devices with no magnetic signature at all.
fn device_driver(
    device: &PlaybackDevice,
    position: Vec3,
    drive: Vec<f64>,
    shielded: bool,
) -> Option<DrivenDipole> {
    let field = if device.has_magnet() {
        device.magnet_ut_at_3cm
    } else {
        device.residual_interference_ut()
    };
    if field <= 0.0 {
        return None;
    }
    let magnet = MagneticDipole::calibrated(position, Vec3::new(0.0, -1.0, 0.0), field, 0.03);
    let mut driver = DrivenDipole::new(magnet, drive);
    if !device.has_magnet() {
        // Grid/wiring interference fluctuates with the drive more than a
        // permanent magnet does.
        driver.coil_fraction = 0.3;
    }
    if shielded {
        driver = driver.shielded(Shield::mu_metal());
    }
    Some(driver)
}

/// Crude tube coloration: boost the first resonances, low-pass the rest.
fn apply_tube_coloration(audio: &mut [f64], sample_rate: f64, tube: &SoundTube) {
    for f in tube.resonances(3500.0).into_iter().take(4) {
        let gain_db = 20.0 * tube.transmission_gain(f).log10() + 6.0;
        let mut biquad = magshield_dsp::filter::Biquad::peaking(sample_rate, f, 6.0, gain_db);
        for x in audio.iter_mut() {
            *x = biquad.process(*x);
        }
    }
    let mut lp = magshield_dsp::filter::Biquad::lowpass(sample_rate, 4000.0, 0.7);
    for x in audio.iter_mut() {
        *x = lp.process(*x);
    }
}

/// |audio| envelope decimated to the IMU rate, normalized to ±1 drive.
fn envelope_at_rate(audio: &[f64], audio_rate: f64, imu_rate: f64, n_out: usize) -> Vec<f64> {
    let window = (audio_rate / imu_rate) as usize;
    let mut env: Vec<f64> = audio
        .chunks(window.max(1))
        .map(|c| c.iter().map(|x| x.abs()).sum::<f64>() / c.len() as f64)
        .collect();
    env.resize(n_out, 0.0);
    let peak = env.iter().cloned().fold(0.0f64, f64::max);
    if peak > 1e-9 {
        for e in &mut env {
            *e = *e / peak * 2.0 - 1.0; // oscillate the coil around zero
        }
    }
    env
}

/// Builds a ready-to-use, fully trained defense system plus its enrolled
/// user — the entry point for examples, tests and benchmarks.
pub fn bootstrap_system(rng: &SimRng) -> (DefenseSystem, UserContext) {
    bootstrap_with(rng, BootstrapConfig::default())
}

/// [`bootstrap_system`] with explicit sizing (tests use smaller models).
pub fn bootstrap_with(rng: &SimRng, config: BootstrapConfig) -> (DefenseSystem, UserContext) {
    let user = UserContext::sample(&rng.fork("user"));
    let system = DefenseSystem::bootstrap(&user, config, &rng.fork("bootstrap"));
    (system, user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_voice::devices::table_iv_catalog;

    fn user() -> UserContext {
        UserContext::sample(&SimRng::from_seed(1))
    }

    #[test]
    fn genuine_capture_is_valid_and_reproducible() {
        let u = user();
        let rng = SimRng::from_seed(2);
        let a = ScenarioBuilder::genuine(&u).capture(&rng);
        assert!(a.validate().is_ok());
        let b = ScenarioBuilder::genuine(&u).capture(&rng);
        assert_eq!(a, b);
    }

    #[test]
    fn genuine_magnetometer_is_quiet() {
        let u = user();
        let s = ScenarioBuilder::genuine(&u).capture(&SimRng::from_seed(3));
        let mags = s.mag_magnitude();
        let earth = s.earth_reference.norm();
        for &m in &mags {
            assert!((m - earth).abs() < 8.0, "genuine |B| {m} vs earth {earth}");
        }
    }

    #[test]
    fn replay_attack_magnetometer_spikes_close() {
        let u = user();
        let device = table_iv_catalog()[0].clone(); // Logitech LS21
        let attacker = SpeakerProfile::sample(9, &SimRng::from_seed(4));
        let s = ScenarioBuilder::machine_attack(&u, AttackKind::Replay, device, attacker)
            .at_distance(0.04)
            .capture(&SimRng::from_seed(5));
        let mags = s.mag_magnitude();
        let earth = s.earth_reference.norm();
        // The magnet field adds *vectorially* to the Earth field, so the
        // magnitude anomaly is smaller than the raw dipole field — but it
        // must still tower over the 2.5 µT detection threshold.
        let peak = mags.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak > earth + 10.0,
            "speaker magnet should dominate close-in: peak {peak}, earth {earth}"
        );
    }

    #[test]
    fn attack_at_long_distance_is_magnetically_quieter() {
        let u = user();
        let attacker = SpeakerProfile::sample(9, &SimRng::from_seed(4));
        let peak_at = |d: f64| {
            let device = table_iv_catalog()[0].clone();
            let s =
                ScenarioBuilder::machine_attack(&u, AttackKind::Replay, device, attacker.clone())
                    .at_distance(d)
                    .capture(&SimRng::from_seed(6));
            s.mag_magnitude().iter().cloned().fold(0.0f64, f64::max)
        };
        assert!(peak_at(0.04) > peak_at(0.12) + 10.0);
    }

    #[test]
    fn magnetic_evasion_suppresses_but_cannot_erase_the_anomaly() {
        use magshield_physics::magnetics::evasion::ActiveCompensation;
        let u = user();
        let attacker = SpeakerProfile::sample(9, &SimRng::from_seed(4));
        let peak = |evaded: bool| {
            let device = table_iv_catalog()[0].clone();
            let mut b =
                ScenarioBuilder::machine_attack(&u, AttackKind::Replay, device, attacker.clone())
                    .at_distance(0.05);
            if evaded {
                b = b.with_magnetic_evasion(ActiveCompensation::tuned());
            }
            let s = b.capture(&SimRng::from_seed(21));
            let earth = s.earth_reference.norm();
            s.mag_magnitude()
                .iter()
                .map(|m| (m - earth).abs())
                .fold(0.0f64, f64::max)
        };
        let bare = peak(false);
        let evaded = peak(true);
        assert!(
            evaded < bare * 0.5,
            "the rig should eat most of the anomaly: bare {bare}, evaded {evaded}"
        );
        assert!(
            evaded > 0.5,
            "residual DC leak + coil slew must stay visible close-in: {evaded} µT"
        );
    }

    #[test]
    fn audio_contains_speech_and_pilot() {
        use magshield_dsp::goertzel::tone_power;
        let u = user();
        let s = ScenarioBuilder::genuine(&u).capture(&SimRng::from_seed(7));
        let rms = (s.audio.iter().map(|x| x * x).sum::<f64>() / s.audio.len() as f64).sqrt();
        assert!(rms > 0.01, "audio rms {rms}");
        let pilot_pw = tone_power(&s.audio[s.audio.len() / 2..], s.pilot_hz, s.audio_rate);
        assert!(pilot_pw > 1e-6, "pilot power {pilot_pw}");
    }

    #[test]
    fn earphone_attack_has_weak_magnet_signature() {
        let u = user();
        let attacker = SpeakerProfile::sample(9, &SimRng::from_seed(4));
        let earphone = table_iv_catalog()
            .into_iter()
            .find(|d| d.name.contains("EarPods"))
            .unwrap();
        let s = ScenarioBuilder::machine_attack(&u, AttackKind::Replay, earphone, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(8));
        let earth = s.earth_reference.norm();
        let peak = s.mag_magnitude().iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak < earth + 30.0,
            "earphone signature should be weak: peak {peak}"
        );
    }
}

//! Streaming continuous verification: chunk-fed cascade execution.
//!
//! The batch pipeline verifies *complete* sessions. This module
//! restructures that into a stream: a [`StreamingVerification`] is opened
//! against one pinned registry generation, fed [`SessionChunk`]s as the
//! capture progresses, and produces a terminal [`DefenseVerdict`] either
//! mid-stream (early reject) or at close (finalize).
//!
//! # Decision identity
//!
//! The streaming path is **decision-identical to the one-shot path by
//! construction**:
//!
//! * every terminal verdict is produced by running the *stock* one-shot
//!   cascade ([`Cascade::run`]) over the accumulated chunk data — the
//!   exact code path [`DefenseSystem::verify_with_policy`] uses;
//! * a mid-stream [`StreamEvent::EarlyReject`] fires only when a stage
//!   state machine reports a **monotone lower bound** on its final raw
//!   score crossing the boundary ([`StageStatus::EarlyReject`]); the
//!   one-shot cascade is then run on the accumulated prefix, and the
//!   bound guarantees it rejects. In the standard cascade only the
//!   loudspeaker detector has such bounds (its changing-rate maximum
//!   over stable centered-smoothed pairs only grows with more data, and
//!   its baseline-deviation bound confines the final baseline median to
//!   the observed pre-close-range interval — see
//!   `loudspeaker::StreamingRateTracker`), and it is precisely the stage
//!   that condemns magnet-and-coil replay hardware within the first few
//!   hundred milliseconds.
//!
//! The per-stage incremental machinery (chunk-fed resampling, MFCC/VAD,
//! LLR accumulation) feeds *provisional* scores surfaced through
//! [`StreamProgress`] for operator dashboards; it never feeds decisions.
//!
//! # Re-verification cadence
//!
//! Long-lived streams can be re-checked every
//! [`StreamConfig::reverify_every_chunks`] chunks: the full one-shot
//! cascade runs over the accumulated prefix. A rejecting pass is
//! **advisory** by default (counted, surfaced in the event) because a
//! prefix rejection does not imply a full-session rejection for the
//! non-monotone stages; opting into
//! [`StreamConfig::terminate_on_reverify`] trades that decision-identity
//! guarantee for faster containment.
//!
//! [`DefenseSystem::verify_with_policy`]: crate::pipeline::DefenseSystem::verify_with_policy

use crate::cascade::{
    standard_stream_states, Cascade, ExecutionPolicy, StageState, StageStatus, StreamStageCtx,
};
use crate::config::DefenseConfig;
use crate::pipeline::PipelineObs;
use crate::registry::ModelSnapshot;
use crate::session::SessionData;
use crate::verdict::{Component, DefenseVerdict};
use magshield_obs::trace::PipelineTrace;
use magshield_simkit::vec3::Vec3;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Per-stream policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamConfig {
    /// Re-run the full one-shot cascade on the accumulated prefix every
    /// this many chunks (`0` disables the cadence). Each pass costs a
    /// full cascade evaluation including the ASV back end.
    pub reverify_every_chunks: u32,
    /// Whether a rejecting re-verification pass terminates the stream
    /// ([`StreamEvent::ReverifyReject`]). **Off by default**: a prefix
    /// rejection from a non-monotone stage does not imply the complete
    /// session would reject, so enabling this forfeits strict decision
    /// identity with the one-shot path.
    pub terminate_on_reverify: bool,
    /// Execution policy for finalize, early-reject confirmation and
    /// re-verification passes.
    pub policy: ExecutionPolicy,
}

/// Stream-constant metadata: the [`SessionData`] scalars that must be
/// known before the first chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOpenInfo {
    /// Claimed speaker identity.
    pub claimed_speaker: u32,
    /// Audio sample rate (Hz).
    pub audio_rate: f64,
    /// IMU sample rate (Hz).
    pub imu_rate: f64,
    /// Ranging pilot tone frequency (Hz).
    pub pilot_hz: f64,
    /// When the ranging sweep starts (s from stream start).
    pub sweep_start_s: f64,
    /// Calibrated Earth-field reference (µT).
    pub earth_reference: Vec3,
    /// Whether the stream carries a second microphone channel.
    pub dual_mic: bool,
}

impl StreamOpenInfo {
    /// The open info describing an existing complete session (what a
    /// capture of the same device/geometry would have streamed).
    pub fn for_session(session: &SessionData) -> Self {
        Self {
            claimed_speaker: session.claimed_speaker,
            audio_rate: session.audio_rate,
            imu_rate: session.imu_rate,
            pilot_hz: session.pilot_hz,
            sweep_start_s: session.sweep_start_s,
            earth_reference: session.earth_reference,
            dual_mic: session.audio2.is_some(),
        }
    }
}

/// One chunk of interleaved sensor data. Streams may chunk audio and IMU
/// at different granularities; empty fields are allowed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionChunk {
    /// Primary-microphone samples at the stream's audio rate.
    pub audio: Vec<f64>,
    /// Second-microphone samples (ignored on single-mic streams).
    pub audio2: Vec<f64>,
    /// Magnetometer readings (µT) at the IMU rate.
    pub mag: Vec<Vec3>,
    /// Accelerometer readings at the IMU rate.
    pub accel: Vec<Vec3>,
    /// Gyroscope readings at the IMU rate.
    pub gyro: Vec<Vec3>,
}

impl SessionChunk {
    /// Whether the chunk carries no data at all.
    pub fn is_empty(&self) -> bool {
        self.audio.is_empty()
            && self.audio2.is_empty()
            && self.mag.is_empty()
            && self.accel.is_empty()
            && self.gyro.is_empty()
    }
}

/// Non-terminal progress after one chunk.
#[derive(Debug, Clone)]
pub struct StreamProgress {
    /// Chunks ingested so far.
    pub chunks: u32,
    /// Accumulated audio samples.
    pub audio_samples: usize,
    /// Accumulated IMU (magnetometer) samples.
    pub imu_samples: usize,
    /// Advisory per-stage provisional raw attack scores, cascade order
    /// (stages without a provisional statistic yet are omitted).
    pub provisional: Vec<(Component, f64)>,
    /// Whether the most recent re-verification pass (if any ran on this
    /// chunk) rejected the accumulated prefix.
    pub reverify_rejected: bool,
}

/// What [`StreamingVerification::ingest`] reports.
#[derive(Debug)]
pub enum StreamEvent {
    /// Keep streaming.
    Progress(StreamProgress),
    /// A stage's monotone bound crossed its boundary mid-stream. The
    /// verdict is the stock one-shot cascade run on the accumulated
    /// prefix (guaranteed to reject). The stream is terminated.
    EarlyReject(DefenseVerdict),
    /// A re-verification pass rejected the prefix and
    /// [`StreamConfig::terminate_on_reverify`] is set. The stream is
    /// terminated.
    ReverifyReject(DefenseVerdict),
}

/// Error: a chunk was fed to (or finalize called on) a stream that
/// already produced its terminal verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamClosed;

impl fmt::Display for StreamClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream already terminated")
    }
}

impl std::error::Error for StreamClosed {}

/// One in-flight streaming verification, pinned to a registry
/// generation (see the module docs for the decision-identity contract).
pub struct StreamingVerification {
    snapshot: Arc<ModelSnapshot>,
    generation: u64,
    machines: Vec<Box<dyn StageState>>,
    data: SessionData,
    stream: StreamConfig,
    chunks: u32,
    opened: Instant,
    terminated: bool,
}

impl StreamingVerification {
    /// Opens a stream scored against `snapshot` (stamping `generation`
    /// on every verdict). Prefer
    /// [`DefenseSystem::open_stream`](crate::pipeline::DefenseSystem::open_stream),
    /// which pins the currently served generation.
    pub fn open(
        snapshot: Arc<ModelSnapshot>,
        generation: u64,
        info: &StreamOpenInfo,
        stream: StreamConfig,
    ) -> Self {
        let ctx = StreamStageCtx {
            snapshot: Arc::clone(&snapshot),
            audio_rate: info.audio_rate,
            imu_rate: info.imu_rate,
            sweep_start_s: info.sweep_start_s,
            dual_mic: info.dual_mic,
            claimed_speaker: info.claimed_speaker,
        };
        let machines = standard_stream_states(&ctx);
        let data = SessionData {
            claimed_speaker: info.claimed_speaker,
            audio: Vec::new(),
            audio2: info.dual_mic.then(Vec::new),
            audio_rate: info.audio_rate,
            pilot_hz: info.pilot_hz,
            mag_readings: Vec::new(),
            accel_readings: Vec::new(),
            gyro_readings: Vec::new(),
            imu_rate: info.imu_rate,
            sweep_start_s: info.sweep_start_s,
            earth_reference: info.earth_reference,
        };
        Self {
            snapshot,
            generation,
            machines,
            data,
            stream,
            chunks: 0,
            opened: Instant::now(),
            terminated: false,
        }
    }

    /// The registry generation this stream is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Chunks ingested so far.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// Accumulated audio samples.
    pub fn audio_samples(&self) -> usize {
        self.data.audio.len()
    }

    /// Accumulated IMU samples.
    pub fn imu_samples(&self) -> usize {
        self.data.mag_readings.len()
    }

    /// Whether the stream has produced its terminal verdict.
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// Time since the stream was opened.
    pub fn age(&self) -> std::time::Duration {
        self.opened.elapsed()
    }

    /// Ingests one chunk: appends it to the accumulated session, steps
    /// every applicable stage machine, and — on the configured cadence —
    /// re-verifies the prefix. Terminal events ([`StreamEvent::EarlyReject`],
    /// [`StreamEvent::ReverifyReject`]) close the stream; feeding it
    /// afterwards returns [`StreamClosed`].
    pub fn ingest(
        &mut self,
        chunk: &SessionChunk,
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> Result<StreamEvent, StreamClosed> {
        if self.terminated {
            return Err(StreamClosed);
        }
        self.data.audio.extend_from_slice(&chunk.audio);
        if let Some(audio2) = &mut self.data.audio2 {
            audio2.extend_from_slice(&chunk.audio2);
        }
        self.data.mag_readings.extend_from_slice(&chunk.mag);
        self.data.accel_readings.extend_from_slice(&chunk.accel);
        self.data.gyro_readings.extend_from_slice(&chunk.gyro);
        self.chunks += 1;
        obs.registry.counter("pipeline.stream.chunks").inc();

        for machine in &mut self.machines {
            if !machine.applies() {
                continue;
            }
            match machine.ingest(&self.data, config) {
                StageStatus::Continue => {}
                StageStatus::EarlyReject(bound) | StageStatus::Settled(bound)
                    if bound.attack_score / config.stage_boundaries.get(bound.component) >= 1.0 =>
                {
                    self.terminated = true;
                    let (verdict, _trace) = self.run_one_shot(config, obs);
                    debug_assert!(
                        !verdict.accepted(),
                        "monotone bound crossed the boundary but the one-shot \
                         cascade accepted the prefix"
                    );
                    let elapsed = self.opened.elapsed().as_secs_f64().max(1e-9);
                    obs.registry
                        .histogram("pipeline.stream.first_verdict.seconds")
                        .record_secs(elapsed);
                    obs.registry
                        .histogram("pipeline.stream.early_reject.seconds")
                        .record_secs(elapsed);
                    obs.registry.counter("pipeline.stream.early_rejects").inc();
                    return Ok(StreamEvent::EarlyReject(verdict));
                }
                // A settled *accept* (or a bound below the boundary —
                // which the standard machines never emit) carries no
                // terminal authority; keep streaming.
                StageStatus::EarlyReject(_) | StageStatus::Settled(_) => {}
            }
        }

        let mut reverify_rejected = false;
        if self.stream.reverify_every_chunks > 0
            && self
                .chunks
                .is_multiple_of(self.stream.reverify_every_chunks)
        {
            let (verdict, _trace) = self.run_one_shot(config, obs);
            obs.registry
                .counter("pipeline.stream.reverify.passes")
                .inc();
            if !verdict.accepted() {
                reverify_rejected = true;
                obs.registry
                    .counter("pipeline.stream.reverify.rejects")
                    .inc();
                if self.stream.terminate_on_reverify {
                    self.terminated = true;
                    let elapsed = self.opened.elapsed().as_secs_f64().max(1e-9);
                    obs.registry
                        .histogram("pipeline.stream.first_verdict.seconds")
                        .record_secs(elapsed);
                    return Ok(StreamEvent::ReverifyReject(verdict));
                }
            }
        }

        let provisional = self
            .machines
            .iter()
            .filter(|m| m.applies())
            .filter_map(|m| Some((m.component(), m.provisional(config)?)))
            .collect();
        Ok(StreamEvent::Progress(StreamProgress {
            chunks: self.chunks,
            audio_samples: self.data.audio.len(),
            imu_samples: self.data.mag_readings.len(),
            provisional,
            reverify_rejected,
        }))
    }

    /// Closes the stream: runs the stock one-shot cascade over the
    /// complete accumulated session — the decision is identical to
    /// verifying the same data in one shot — and returns the verdict
    /// (stamped with the pinned generation) plus its trace.
    pub fn finalize(
        mut self,
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> Result<(DefenseVerdict, PipelineTrace), StreamClosed> {
        if self.terminated {
            return Err(StreamClosed);
        }
        self.terminated = true;
        let (verdict, trace) = self.run_one_shot(config, obs);
        obs.registry
            .histogram("pipeline.stream.first_verdict.seconds")
            .record_secs(self.opened.elapsed().as_secs_f64().max(1e-9));
        obs.registry.counter("pipeline.stream.completed").inc();
        Ok((verdict, trace))
    }

    /// A borrowed view of the accumulated session prefix.
    pub fn accumulated(&self) -> &SessionData {
        &self.data
    }

    /// Runs the stock one-shot cascade over the accumulated data under
    /// the stream's policy, stamping the pinned generation.
    fn run_one_shot(
        &self,
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> (DefenseVerdict, PipelineTrace) {
        let (mut verdict, trace) = Cascade::standard(
            &self.snapshot.sound_field,
            &self.snapshot.engine,
            &self.snapshot.speakers,
        )
        .with_policy(self.stream.policy)
        .run(&self.data, config, obs);
        verdict.generation = Some(self.generation);
        (verdict, trace)
    }
}

/// Splits a complete captured session into `n`-audio-sample chunks, the
/// IMU streams cut at the matching timestamps (`round(t · imu_rate)`);
/// the last chunk carries every remainder. Replaying the chunks through
/// [`StreamingVerification::ingest`] reassembles the session exactly.
pub fn chunk_session(session: &SessionData, chunk_audio_samples: usize) -> Vec<SessionChunk> {
    let n = session.audio.len();
    let step = chunk_audio_samples.max(1);
    if n == 0 {
        return vec![SessionChunk {
            audio: Vec::new(),
            audio2: session.audio2.clone().unwrap_or_default(),
            mag: session.mag_readings.clone(),
            accel: session.accel_readings.clone(),
            gyro: session.gyro_readings.clone(),
        }];
    }
    let mut chunks = Vec::with_capacity(n / step + 1);
    let mut a0 = 0usize;
    let mut i0 = 0usize;
    while a0 < n {
        let a1 = (a0 + step).min(n);
        let last = a1 == n;
        let i1 = if last {
            session.mag_readings.len()
        } else {
            let t = a1 as f64 / session.audio_rate;
            ((t * session.imu_rate).round() as usize)
                .min(session.mag_readings.len())
                .max(i0)
        };
        let imu = |v: &[Vec3]| v[i0.min(v.len())..i1.min(v.len())].to_vec();
        chunks.push(SessionChunk {
            audio: session.audio[a0..a1].to_vec(),
            audio2: session
                .audio2
                .as_ref()
                .map(|a| a[a0.min(a.len())..a1.min(a.len())].to_vec())
                .unwrap_or_default(),
            mag: imu(&session.mag_readings),
            accel: imu(&session.accel_readings),
            gyro: imu(&session.gyro_readings),
        });
        a0 = a1;
        i0 = i1;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::attacks::AttackKind;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;
    use proptest::prelude::*;

    fn genuine_session(seed: u64) -> SessionData {
        let (_, user) = crate::test_support::shared_tiny_system();
        ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
    }

    fn replay_session(seed: u64) -> SessionData {
        let (_, user) = crate::test_support::shared_tiny_system();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(seed))
    }

    /// Streams a session chunk-by-chunk to its terminal verdict.
    fn stream_to_verdict(
        session: &SessionData,
        chunk_audio: usize,
        stream: StreamConfig,
    ) -> (DefenseVerdict, bool) {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let mut v = sys.open_stream(&StreamOpenInfo::for_session(session), stream);
        for chunk in chunk_session(session, chunk_audio) {
            match v.ingest(&chunk, &sys.config, sys.obs()).unwrap() {
                StreamEvent::Progress(_) => {}
                StreamEvent::EarlyReject(verdict) | StreamEvent::ReverifyReject(verdict) => {
                    return (verdict, true);
                }
            }
        }
        (v.finalize(&sys.config, sys.obs()).unwrap().0, false)
    }

    /// [`stream_to_verdict`] under an explicit config (the quantized
    /// decision-identity test swaps in `asv_quantized`).
    fn stream_to_verdict_with_config(
        session: &SessionData,
        chunk_audio: usize,
        stream: StreamConfig,
        config: &DefenseConfig,
    ) -> (DefenseVerdict, bool) {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let mut v = sys.open_stream(&StreamOpenInfo::for_session(session), stream);
        for chunk in chunk_session(session, chunk_audio) {
            match v.ingest(&chunk, config, sys.obs()).unwrap() {
                StreamEvent::Progress(_) => {}
                StreamEvent::EarlyReject(verdict) | StreamEvent::ReverifyReject(verdict) => {
                    return (verdict, true);
                }
            }
        }
        (v.finalize(config, sys.obs()).unwrap().0, false)
    }

    #[test]
    fn chunks_reassemble_the_session_exactly() {
        let s = genuine_session(91);
        for chunk_audio in [1usize, 4801, 16_000, s.audio.len(), s.audio.len() * 2] {
            let chunks = chunk_session(&s, chunk_audio);
            let mut audio = Vec::new();
            let mut audio2 = Vec::new();
            let mut mag = Vec::new();
            let mut accel = Vec::new();
            let mut gyro = Vec::new();
            for c in &chunks {
                audio.extend_from_slice(&c.audio);
                audio2.extend_from_slice(&c.audio2);
                mag.extend_from_slice(&c.mag);
                accel.extend_from_slice(&c.accel);
                gyro.extend_from_slice(&c.gyro);
            }
            assert_eq!(audio, s.audio);
            assert_eq!(audio2, s.audio2.clone().unwrap_or_default());
            assert_eq!(mag.len(), s.mag_readings.len());
            assert_eq!(accel.len(), s.accel_readings.len());
            assert_eq!(gyro.len(), s.gyro_readings.len());
        }
    }

    #[test]
    fn genuine_stream_matches_one_shot_decision() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let s = genuine_session(92);
        let one_shot = sys.verify(&s);
        let (streamed, early) = stream_to_verdict(&s, 9600, StreamConfig::default());
        assert!(!early, "genuine session must not early-reject");
        assert_eq!(streamed.decision, one_shot.decision);
        assert_eq!(streamed.generation, one_shot.generation);
    }

    #[test]
    fn replay_stream_early_rejects_mid_stream() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let s = replay_session(93);
        let one_shot = sys.verify(&s);
        assert!(!one_shot.accepted(), "replay at 5 cm must reject");
        let (streamed, early) = stream_to_verdict(&s, 4800, StreamConfig::default());
        assert!(early, "magnet+coil replay must be caught mid-stream");
        assert!(!streamed.accepted());
        assert_eq!(streamed.decision, one_shot.decision);
    }

    #[test]
    fn terminated_stream_refuses_more_chunks() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let s = replay_session(94);
        let mut v = sys.open_stream(&StreamOpenInfo::for_session(&s), StreamConfig::default());
        let chunks = chunk_session(&s, 4800);
        let mut rejected = false;
        for chunk in &chunks {
            match v.ingest(chunk, &sys.config, sys.obs()) {
                Ok(StreamEvent::EarlyReject(_)) => {
                    rejected = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected);
        assert!(v.terminated());
        assert_eq!(
            v.ingest(&chunks[0], &sys.config, sys.obs()).unwrap_err(),
            StreamClosed
        );
        assert!(v.finalize(&sys.config, sys.obs()).is_err());
    }

    #[test]
    fn advisory_reverify_counts_but_does_not_terminate() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = genuine_session(95);
        let stream = StreamConfig {
            reverify_every_chunks: 2,
            ..StreamConfig::default()
        };
        let mut v = sys.open_stream(&StreamOpenInfo::for_session(&s), stream);
        for chunk in chunk_session(&s, s.audio.len() / 6) {
            match v.ingest(&chunk, &sys.config, sys.obs()).unwrap() {
                StreamEvent::Progress(_) => {}
                other => panic!("genuine stream terminated early: {other:?}"),
            }
        }
        assert!(
            sys.metrics()
                .counter("pipeline.stream.reverify.passes")
                .get()
                >= 2
        );
        let (verdict, _) = v.finalize(&sys.config, sys.obs()).unwrap();
        assert_eq!(verdict.decision, sys.verify(&s).decision);
    }

    #[test]
    fn progress_reports_provisional_scores() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let s = genuine_session(96);
        let mut v = sys.open_stream(&StreamOpenInfo::for_session(&s), StreamConfig::default());
        let mut saw_loudspeaker = false;
        let mut saw_asv = false;
        for chunk in chunk_session(&s, 9600) {
            if let StreamEvent::Progress(p) = v.ingest(&chunk, &sys.config, sys.obs()).unwrap() {
                for (c, score) in &p.provisional {
                    assert!(score.is_finite());
                    match c {
                        Component::Loudspeaker => saw_loudspeaker = true,
                        Component::SpeakerIdentity => saw_asv = true,
                        _ => {}
                    }
                }
            }
        }
        assert!(saw_loudspeaker, "loudspeaker provisional score expected");
        assert!(saw_asv, "ASV provisional trend expected");
        let _ = v.finalize(&sys.config, sys.obs()).unwrap();
    }

    proptest! {
        // Each case runs the cascade at least twice (stream + one-shot);
        // keep the case count low — the fixture is shared.
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole invariant (satellite 3): across chunk sizes —
        /// including single-frame-scale and whole-utterance chunks — and
        /// under both execution policies, a stream that completes yields
        /// the one-shot decision, and a stream that early-rejects has a
        /// one-shot decision of Reject.
        #[test]
        fn streaming_is_decision_identical_across_chunkings(
            seed in 0u64..5000,
            attack in 0u8..2,
            chunk_sel in 0usize..4,
            short_circuit in 0u8..2,
        ) {
            let (sys, _) = crate::test_support::shared_tiny_system();
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                genuine_session(seed)
            };
            // 10 ms, 100 ms, ~1/3 session, whole utterance.
            let chunk_audio = match chunk_sel {
                0 => (s.audio_rate / 100.0) as usize,
                1 => (s.audio_rate / 10.0) as usize,
                2 => (s.audio.len() / 3).max(1),
                _ => s.audio.len(),
            };
            let policy = if short_circuit == 1 {
                ExecutionPolicy::ShortCircuit
            } else {
                ExecutionPolicy::FullEvaluation
            };
            let one_shot = sys.verify_with_policy(&s, policy);
            let stream = StreamConfig { policy, ..StreamConfig::default() };
            let (streamed, early) = stream_to_verdict(&s, chunk_audio, stream);
            if early {
                prop_assert!(!streamed.accepted());
                prop_assert!(
                    !one_shot.accepted(),
                    "early reject on a session the one-shot cascade accepts"
                );
            } else {
                prop_assert_eq!(streamed.decision, one_shot.decision);
            }
        }

        /// Quantized ASV scoring is decision-identical to exact scoring
        /// for the whole cascade — one-shot and streamed at several
        /// chunk granularities, under both execution policies. The
        /// analytic quantization drift bound sits far below the decision
        /// margins of the scenario corpus, so no verdict may flip.
        #[test]
        fn quantized_cascade_is_decision_identical_across_chunkings(
            seed in 0u64..5000,
            attack in 0u8..2,
            chunk_sel in 0usize..3,
            short_circuit in 0u8..2,
        ) {
            let (sys, _) = crate::test_support::shared_tiny_system();
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                genuine_session(seed)
            };
            // 100 ms, ~1/3 session, whole utterance.
            let chunk_audio = match chunk_sel {
                0 => (s.audio_rate / 10.0) as usize,
                1 => (s.audio.len() / 3).max(1),
                _ => s.audio.len(),
            };
            let policy = if short_circuit == 1 {
                ExecutionPolicy::ShortCircuit
            } else {
                ExecutionPolicy::FullEvaluation
            };
            let quant_cfg = DefenseConfig { asv_quantized: true, ..sys.config };
            let exact = sys.verify_with_policy(&s, policy);
            let quant = sys
                .cascade()
                .with_policy(policy)
                .run(&s, &quant_cfg, sys.obs())
                .0;
            prop_assert_eq!(
                quant.decision,
                exact.decision,
                "quantization flipped the one-shot verdict"
            );
            let stream = StreamConfig { policy, ..StreamConfig::default() };
            let (streamed, early) =
                stream_to_verdict_with_config(&s, chunk_audio, stream, &quant_cfg);
            if early {
                prop_assert!(!streamed.accepted());
                prop_assert!(
                    !exact.accepted(),
                    "quantized early reject on a session the exact cascade accepts"
                );
            } else {
                prop_assert_eq!(streamed.decision, quant.decision);
            }
        }

        /// The advisory re-verification cadence never changes the
        /// terminal decision.
        #[test]
        fn advisory_reverify_preserves_decisions(
            seed in 0u64..5000,
            attack in 0u8..2,
            cadence in 1u32..5,
        ) {
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                genuine_session(seed)
            };
            let base = stream_to_verdict(&s, 9600, StreamConfig::default());
            let with_reverify = stream_to_verdict(
                &s,
                9600,
                StreamConfig { reverify_every_chunks: cadence, ..StreamConfig::default() },
            );
            prop_assert_eq!(base.0.decision, with_reverify.0.decision);
            prop_assert_eq!(base.1, with_reverify.1, "same early/complete shape");
        }
    }
}

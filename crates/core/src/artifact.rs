//! Versioned model artifacts: the training → serving hand-off format.
//!
//! A [`ModelBundle`] is everything a server needs to verify sessions —
//! the ASV engine, the enrolled speaker models, the sound-field
//! classifier and the thresholds they were validated against — plus
//! [`BundleMeta`] provenance describing how it was trained. Bundles are
//! produced offline by [`Trainer::train`](crate::trainer::Trainer::train),
//! serialized through the workspace's checksummed binary codec
//! ([`BinaryCodec`], magic `MBDL`), and loaded into a serving process via
//! [`DefenseSystem::from_bundle`](crate::pipeline::DefenseSystem::from_bundle)
//! or hot-swapped into a live one via
//! [`DefenseSystem::swap_bundle`](crate::pipeline::DefenseSystem::swap_bundle).
//!
//! The codec guarantees (see [`magshield_ml::codec`]) make bundle files
//! safe to load from untrusted storage: corruption, truncation, version
//! skew and semantic invalid states (duplicate speakers, bin mismatches)
//! all surface as typed errors, never as panics or silently wrong models.

use crate::components::sound_field::SoundFieldModel;
use crate::components::speaker_id::AsvEngine;
use crate::config::{ConfigError, DefenseConfig};
use crate::registry::ModelSnapshot;
use magshield_asv::model::SpeakerModel;
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use std::sync::Arc;

/// Provenance of a trained bundle: who produced it and the training
/// sizing it came from.
///
/// Deliberately timestamp-free so that training with a fixed seed yields
/// byte-identical bundles — the artifact-compatibility CI job depends on
/// golden bundles being reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleMeta {
    /// Tool (or test) that produced the bundle.
    pub producer: String,
    /// Speakers in the UBM training corpus.
    pub ubm_speakers: u32,
    /// UBM mixture components.
    pub ubm_components: u32,
    /// EM iterations the UBM was trained for.
    pub em_iters: u32,
    /// Whether the ISV backend was trained instead of plain GMM–UBM.
    pub use_isv: bool,
    /// Free-form notes (deployment labels, experiment ids).
    pub notes: String,
}

impl BundleMeta {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_string(&self.producer);
        w.put_u32(self.ubm_speakers);
        w.put_u32(self.ubm_components);
        w.put_u32(self.em_iters);
        w.put_bool(self.use_isv);
        w.put_string(&self.notes);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            producer: r.get_string()?,
            ubm_speakers: r.get_u32()?,
            ubm_components: r.get_u32()?,
            em_iters: r.get_u32()?,
            use_isv: r.get_bool()?,
            notes: r.get_string()?,
        })
    }
}

/// A complete, immutable set of trained serving models.
///
/// The unit of training, persistence and hot-swap: a bundle is produced
/// whole, validated whole ([`ModelBundle::validate`]) and swapped whole,
/// so a server can never end up serving an engine from one training run
/// with speaker models from another.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Provenance.
    pub meta: BundleMeta,
    /// The thresholds this model set was trained/validated against.
    pub config: DefenseConfig,
    /// The ASV backend.
    pub engine: AsvEngine,
    /// Enrolled speaker models. May be empty: a multi-tenant server can
    /// boot from a speaker-less bundle and enroll tenants online.
    pub speakers: Vec<SpeakerModel>,
    /// The sound-field classifier.
    pub sound_field: SoundFieldModel,
}

impl ModelBundle {
    /// Checks the bundle is servable: valid thresholds, no duplicate
    /// speaker ids, and a sound-field model whose angle-bin count matches
    /// what the config will feed it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.config.validate()?;
        let mut seen = std::collections::HashSet::with_capacity(self.speakers.len());
        for m in &self.speakers {
            if !seen.insert(m.speaker_id) {
                return Err(ConfigError::DuplicateSpeaker {
                    speaker_id: m.speaker_id,
                });
            }
        }
        if self.sound_field.bins() != self.config.sound_field_bins {
            return Err(ConfigError::MismatchedSoundFieldBins {
                config: self.config.sound_field_bins,
                model: self.sound_field.bins(),
            });
        }
        Ok(())
    }

    /// Converts the bundle into a registry snapshot (consuming it).
    pub fn into_snapshot(self) -> ModelSnapshot {
        ModelSnapshot {
            config: self.config,
            engine: self.engine,
            speakers: self
                .speakers
                .into_iter()
                .map(|m| (m.speaker_id, Arc::new(m)))
                .collect(),
            sound_field: self.sound_field,
        }
    }

    /// Rebuilds a bundle from a live registry snapshot — how a server
    /// exports its current serving state (e.g. to persist online
    /// enrollments, or to derive a tweaked bundle for a hot-swap test)
    /// without retraining. Speakers are ordered by id so the result is
    /// deterministic.
    pub fn from_snapshot(meta: BundleMeta, snapshot: &ModelSnapshot) -> Self {
        let mut speakers: Vec<SpeakerModel> =
            snapshot.speakers.values().map(|m| (**m).clone()).collect();
        speakers.sort_by_key(|m| m.speaker_id);
        Self {
            meta,
            config: snapshot.config,
            engine: snapshot.engine.clone(),
            speakers,
            sound_field: snapshot.sound_field.clone(),
        }
    }
}

impl BinaryCodec for ModelBundle {
    const MAGIC: u32 = codec::magic(b"MBDL");
    const VERSION: u8 = 1;
    const NAME: &'static str = "ModelBundle";

    fn encode_payload(&self, w: &mut ByteWriter) {
        self.meta.encode(w);
        w.put_nested(&self.config.to_bytes());
        w.put_nested(&self.engine.to_bytes());
        w.put_len(self.speakers.len());
        for m in &self.speakers {
            w.put_nested(&m.to_bytes());
        }
        w.put_nested(&self.sound_field.to_bytes());
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let meta = BundleMeta::decode(r)?;
        let config = DefenseConfig::from_bytes(r.get_nested()?)?;
        let engine = AsvEngine::from_bytes(r.get_nested()?)?;
        let n = r.get_len()?;
        let mut speakers = Vec::new();
        for _ in 0..n {
            speakers.push(SpeakerModel::from_bytes(r.get_nested()?)?);
        }
        let sound_field = SoundFieldModel::from_bytes(r.get_nested()?)?;
        let bundle = Self {
            meta,
            config,
            engine,
            speakers,
            sound_field,
        };
        bundle.validate().map_err(|e| CodecError::Invalid {
            artifact: Self::NAME,
            reason: e.to_string(),
        })?;
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigError;

    fn fixture_bundle() -> ModelBundle {
        let (sys, _) = crate::test_support::shared_tiny_system();
        ModelBundle::from_snapshot(test_meta(), &sys.models())
    }

    fn test_meta() -> BundleMeta {
        BundleMeta {
            producer: "artifact-tests".to_string(),
            ubm_speakers: 3,
            ubm_components: 8,
            em_iters: 4,
            use_isv: false,
            notes: String::new(),
        }
    }

    #[test]
    fn bundle_round_trips_byte_identically() {
        let bundle = fixture_bundle();
        let bytes = bundle.to_bytes();
        let back = ModelBundle::from_bytes(&bytes).unwrap();
        assert_eq!(back.meta, bundle.meta);
        assert_eq!(back.config, bundle.config);
        assert_eq!(back.sound_field, bundle.sound_field);
        assert_eq!(back.speakers.len(), bundle.speakers.len());
        // Encoding is deterministic, so re-encoding proves deep equality
        // even for types without PartialEq (the engine).
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn encoding_is_reproducible() {
        let bundle = fixture_bundle();
        assert_eq!(bundle.to_bytes(), fixture_bundle().to_bytes());
    }

    #[test]
    fn duplicate_speakers_fail_validation_and_decode() {
        let mut bundle = fixture_bundle();
        let dup = bundle.speakers[0].clone();
        bundle.speakers.push(dup);
        let id = bundle.speakers[0].speaker_id;
        assert_eq!(
            bundle.validate(),
            Err(ConfigError::DuplicateSpeaker { speaker_id: id })
        );
        assert!(matches!(
            ModelBundle::from_bytes(&bundle.to_bytes()),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn bin_mismatch_fails_validation() {
        let mut bundle = fixture_bundle();
        bundle.config.sound_field_bins = bundle.sound_field.bins() + 4;
        assert!(matches!(
            bundle.validate(),
            Err(ConfigError::MismatchedSoundFieldBins { .. })
        ));
    }

    #[test]
    fn speakerless_bundle_is_valid() {
        let mut bundle = fixture_bundle();
        bundle.speakers.clear();
        assert!(bundle.validate().is_ok());
        let back = ModelBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert!(back.speakers.is_empty());
    }

    #[test]
    fn truncation_yields_typed_errors() {
        // Full single-bit fuzz over a multi-hundred-KB bundle is done at
        // the leaf-artifact level; here every truncation point of the
        // envelope-bearing prefix must fail cleanly.
        let bytes = fixture_bundle().to_bytes();
        for cut in 0..64.min(bytes.len()) {
            assert!(ModelBundle::from_bytes(&bytes[..cut]).is_err());
        }
        assert!(ModelBundle::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}

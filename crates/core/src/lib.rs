#![warn(missing_docs)]

//! # magshield-core
//!
//! The paper's contribution: a software-only defense against voice
//! impersonation attacks on smartphones (ICDCS 2017, "You Can Hear But You
//! Cannot Steal"). Five verification stages run as a cascade (Fig. 4 plus
//! the §VII dual-mic extension), cheapest first:
//!
//! 1. **loudspeaker detection** ([`components::loudspeaker`]) —
//!    magnetometer magnitude-deviation and changing-rate thresholds
//!    (`Mt`, `βt`) expose the magnet+coil signature;
//! 2. **sound source distance verification** ([`components::distance`]) —
//!    trajectory reconstruction + circle fit bounds the phone–source
//!    distance by `Dt` (6 cm);
//! 3. **dual-mic SLD range check** ([`components::sld`]) — the §VII
//!    sound-level-difference cue, on dual-microphone phones only;
//! 4. **sound field verification** ([`components::sound_field`]) — an SVM
//!    over (volume, rotation-angle) features rejects sources whose
//!    aperture/geometry differs from a human mouth;
//! 5. **speaker identity verification** ([`components::speaker_id`]) —
//!    GMM–UBM / ISV ASV rejects human imitators.
//!
//! The cascade is a first-class subsystem ([`cascade`]): each stage
//! implements the [`cascade::CascadeStage`] trait and a
//! [`cascade::Cascade`] executor runs them under a stage mask (real
//! ablation) and an execution policy — full evaluation for FAR/FRR
//! sweeps, or short-circuiting so the expensive ASV back end never runs
//! on sessions the magnetometer already condemned.
//!
//! Training and serving are split: a [`trainer::Trainer`] produces an
//! immutable, versioned [`artifact::ModelBundle`] (serialized through the
//! checksummed binary codec of `magshield-ml`), and a
//! [`pipeline::DefenseSystem`] is constructed *from* a bundle. At
//! serving time the models live in a [`registry::ModelRegistry`] — a
//! concurrent, generation-numbered store supporting online multi-tenant
//! enrollment and atomic whole-bundle hot-swap while in-flight
//! verifications finish on the snapshot they pinned. [`store`] layers
//! crash-safe durability under the registry: a write-ahead log of
//! enrollments (as delta speaker records) and bundle swaps, replayed bit
//! exactly on [`pipeline::DefenseSystem::open_durable`], with periodic
//! compaction into a golden base.
//!
//! [`scenario`] simulates complete verification sessions (genuine and
//! attacks) on the physics/sensor substrates; [`server`] provides the
//! client–server deployment of §V with a binary wire protocol (including
//! online `Enroll` and `SwapBundle` operations); [`adaptive`] implements
//! the §VII adaptive-thresholding extension.
//!
//! The pipeline and server are instrumented against `magshield-obs`:
//! [`pipeline::DefenseSystem::verify_traced`] returns a per-session
//! trace of each component's decision and duration, and the server
//! serves queue/compute latency histograms over the wire
//! (`server::protocol::Message::StatsRequest`). See DESIGN.md §7 for the
//! metric and span naming scheme.
//!
//! # Quickstart
//!
//! ```no_run
//! use magshield_core::pipeline::DefenseSystem;
//! use magshield_core::scenario::{self, ScenarioBuilder};
//! use magshield_simkit::rng::SimRng;
//!
//! let rng = SimRng::from_seed(7);
//! let (system, user) = scenario::bootstrap_system(&rng);
//! let session = ScenarioBuilder::genuine(&user).capture(&rng.fork("session"));
//! let verdict = system.verify(&session);
//! assert!(verdict.accepted());
//! ```

pub mod adaptive;
pub mod artifact;
pub mod batch;
pub mod cascade;
pub mod components;
pub mod config;
pub mod pipeline;
pub mod registry;
pub mod robustness;
pub mod scenario;
pub mod server;
pub mod session;
pub mod store;
pub mod stream;
pub mod trainer;
pub mod verdict;

pub use artifact::ModelBundle;
pub use config::{ConfigError, DefenseConfig};
pub use pipeline::DefenseSystem;
pub use registry::ModelRegistry;
pub use session::SessionData;
pub use stream::{SessionChunk, StreamConfig, StreamEvent, StreamingVerification};
pub use trainer::Trainer;
pub use verdict::{Decision, DefenseVerdict};

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures: bootstrapping a system is the most expensive step
    //! in the test suite, so unit tests share one tiny instance.
    use crate::pipeline::{BootstrapConfig, DefenseSystem};
    use crate::scenario::{bootstrap_with, UserContext};
    use magshield_simkit::rng::SimRng;
    use std::sync::OnceLock;

    static SHARED: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();

    /// A lazily built, shared tiny system + user.
    pub fn shared_tiny_system() -> &'static (DefenseSystem, UserContext) {
        SHARED.get_or_init(|| bootstrap_with(&SimRng::from_seed(42), BootstrapConfig::tiny()))
    }
}

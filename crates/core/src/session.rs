//! Captured sensor data for one verification session.

use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Everything the phone records during one verification attempt — the
/// payload the mobile client uploads to the server backend (§V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionData {
    /// Claimed user identity.
    pub claimed_speaker: u32,
    /// Microphone recording (speech + received pilot tone + noise).
    pub audio: Vec<f64>,
    /// Secondary (noise-cancellation) microphone recording, when the
    /// device has one (§VII "Dual Microphones", e.g. Nexus 4). Same rate
    /// and length as `audio`.
    pub audio2: Option<Vec<f64>>,
    /// Audio sample rate (Hz).
    pub audio_rate: f64,
    /// The pilot frequency this phone calibrated (Hz).
    pub pilot_hz: f64,
    /// Magnetometer readings, body frame (µT).
    pub mag_readings: Vec<Vec3>,
    /// Accelerometer readings, body frame, gravity-free (m/s²).
    pub accel_readings: Vec<Vec3>,
    /// Gyroscope readings, body frame (rad/s).
    pub gyro_readings: Vec<Vec3>,
    /// IMU sample rate (Hz).
    pub imu_rate: f64,
    /// Time (s) where the sweep segment begins.
    pub sweep_start_s: f64,
    /// Pre-session ambient field calibration: the Earth-field vector the
    /// phone measured before motion began (world frame, µT).
    pub earth_reference: Vec3,
}

impl SessionData {
    /// Sample index in the IMU streams where the sweep begins.
    pub fn sweep_start_index(&self) -> usize {
        (self.sweep_start_s * self.imu_rate).round() as usize
    }

    /// Session duration (s) by the IMU clock.
    pub fn duration(&self) -> f64 {
        self.mag_readings.len() as f64 / self.imu_rate
    }

    /// Magnetometer magnitude trace (µT).
    pub fn mag_magnitude(&self) -> Vec<f64> {
        self.mag_readings.iter().map(|r| r.norm()).collect()
    }

    /// Per-sample magnetometer heading observations against the calibrated
    /// reference (None where the field is unusable).
    pub fn mag_heading_observations(&self) -> Vec<Option<f64>> {
        use magshield_sensors::orientation::HeadingFilter;
        self.mag_readings
            .iter()
            .map(|&r| HeadingFilter::mag_heading(r, self.earth_reference))
            .collect()
    }

    /// Basic integrity check: non-empty streams, consistent rates.
    pub fn validate(&self) -> Result<(), SessionError> {
        if self.audio.is_empty() {
            return Err(SessionError::EmptyAudio);
        }
        if self.mag_readings.is_empty()
            || self.accel_readings.is_empty()
            || self.gyro_readings.is_empty()
        {
            return Err(SessionError::EmptySensorStream);
        }
        // NaN rates must fail validation too, hence the explicit checks.
        let rate_ok = |r: f64| r.is_finite() && r > 0.0;
        if !rate_ok(self.audio_rate) || !rate_ok(self.imu_rate) {
            return Err(SessionError::BadRate);
        }
        if self.pilot_hz <= 16_000.0 {
            return Err(SessionError::PilotTooLow(self.pilot_hz));
        }
        if self.sweep_start_s < 0.0 || self.sweep_start_s > self.duration() {
            return Err(SessionError::BadSweepMark);
        }
        if let Some(a2) = &self.audio2 {
            if a2.len() != self.audio.len() {
                return Err(SessionError::SecondMicMismatch);
            }
            if !a2.iter().all(|x| x.is_finite()) {
                return Err(SessionError::NonFiniteData);
            }
        }
        let finite = self.audio.iter().all(|x| x.is_finite())
            && self.mag_readings.iter().all(|v| v.is_finite())
            && self.accel_readings.iter().all(|v| v.is_finite())
            && self.gyro_readings.iter().all(|v| v.is_finite());
        if !finite {
            return Err(SessionError::NonFiniteData);
        }
        Ok(())
    }
}

/// Session integrity errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionError {
    /// No audio captured.
    EmptyAudio,
    /// A sensor stream is empty.
    EmptySensorStream,
    /// A sample rate is non-positive.
    BadRate,
    /// Pilot below the paper's 16 kHz floor.
    PilotTooLow(f64),
    /// Sweep marker outside the session.
    BadSweepMark,
    /// NaN/inf in the data.
    NonFiniteData,
    /// Secondary microphone stream length does not match the primary.
    SecondMicMismatch,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::EmptyAudio => write!(f, "session has no audio"),
            SessionError::EmptySensorStream => write!(f, "a sensor stream is empty"),
            SessionError::BadRate => write!(f, "non-positive sample rate"),
            SessionError::PilotTooLow(hz) => {
                write!(f, "pilot {hz} Hz is below the 16 kHz inaudibility floor")
            }
            SessionError::BadSweepMark => write!(f, "sweep marker outside the session"),
            SessionError::NonFiniteData => write!(f, "non-finite samples in session data"),
            SessionError::SecondMicMismatch => {
                write!(f, "secondary microphone stream length mismatch")
            }
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> SessionData {
        SessionData {
            claimed_speaker: 1,
            audio: vec![0.0; 480],
            audio2: None,
            audio_rate: 48_000.0,
            pilot_hz: 18_000.0,
            mag_readings: vec![Vec3::new(0.0, 28.0, -39.0); 10],
            accel_readings: vec![Vec3::ZERO; 10],
            gyro_readings: vec![Vec3::ZERO; 10],
            imu_rate: 100.0,
            sweep_start_s: 0.05,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
        }
    }

    #[test]
    fn valid_session_passes() {
        assert!(minimal().validate().is_ok());
    }

    #[test]
    fn rejects_empty_audio() {
        let mut s = minimal();
        s.audio.clear();
        assert_eq!(s.validate(), Err(SessionError::EmptyAudio));
    }

    #[test]
    fn rejects_low_pilot() {
        let mut s = minimal();
        s.pilot_hz = 12_000.0;
        assert!(matches!(s.validate(), Err(SessionError::PilotTooLow(_))));
    }

    #[test]
    fn rejects_nan() {
        let mut s = minimal();
        s.audio[3] = f64::NAN;
        assert_eq!(s.validate(), Err(SessionError::NonFiniteData));
    }

    #[test]
    fn rejects_bad_sweep_mark() {
        let mut s = minimal();
        s.sweep_start_s = 99.0;
        assert_eq!(s.validate(), Err(SessionError::BadSweepMark));
    }

    #[test]
    fn heading_observations_present_in_clean_field() {
        let s = minimal();
        let obs = s.mag_heading_observations();
        assert!(obs.iter().all(|o| o.is_some()));
        assert!(obs[0].unwrap().abs() < 1e-9);
    }

    #[test]
    fn sweep_index_conversion() {
        assert_eq!(minimal().sweep_start_index(), 5);
    }

    #[test]
    fn second_mic_length_checked() {
        let mut s = minimal();
        s.audio2 = Some(vec![0.0; 10]);
        assert_eq!(s.validate(), Err(SessionError::SecondMicMismatch));
        s.audio2 = Some(vec![0.0; s.audio.len()]);
        assert!(s.validate().is_ok());
    }
}

//! Batched, backpressured verification throughput engine.
//!
//! The ROADMAP north star is a service absorbing heavy traffic, and the
//! paper's defense runs per-authentication (§VII reports per-stage
//! runtimes) — so throughput and tail latency under load are first-class
//! correctness properties. This module layers a batch execution engine on
//! the PR-2 cascade:
//!
//! - **Stage-major execution** ([`Cascade::run_batch`]): a worker pulls a
//!   micro-batch off the queue and runs the *cheapest* cascade stages
//!   across the whole batch before the expensive ASV stage, so under
//!   [`ExecutionPolicy::ShortCircuit`] the loudspeaker/distance
//!   rejections prune the ASV workload. Decisions are bit-identical to
//!   sequential per-session runs (same per-stage code path; asserted by
//!   property tests below).
//! - **Admission control** ([`AdmissionGate`]): a bounded queue depth
//!   with a per-engine [`AdmissionPolicy`] — [`Backpressure`] blocks the
//!   submitter until there is room, [`Shed`] refuses immediately with
//!   [`ShedReason::QueueFull`]. Accounting is RAII ([`QueueSlot`] /
//!   [`InflightSlot`]), so the depth gauge cannot leak on any exit path,
//!   including unwinding.
//! - **Deadlines**: an optional per-batch deadline; sessions whose
//!   processing has not *started* by the deadline are shed with
//!   [`ShedReason::DeadlineExceeded`] instead of burning compute on an
//!   answer nobody is waiting for.
//! - **Graceful shutdown**: [`BatchEngine::shutdown`] stops admission
//!   (late submitters see [`ShedReason::ShuttingDown`]) and then drains —
//!   every session that was accepted still gets exactly one verdict.
//!   Nothing is ever silently dropped: every [`Ticket`] resolves.
//! - **Streaming admission** ([`BatchEngine::open_stream`]): chunk-fed
//!   verification ([`crate::stream`]) runs through the *same* admission
//!   gate as batch submissions — every chunk claims a queue slot, honors
//!   the per-chunk deadline, and is visible to [`BatchEngine::drain`] and
//!   shutdown, so a server mixing one-shot and streaming load gets one
//!   coherent backpressure story.
//!
//! Observability (shared registry with the
//! [`DefenseSystem`], see DESIGN.md §9):
//! `batch.size.sessions` and `batch.queue.wait.seconds` histograms,
//! `batch.queue.depth` / `batch.inflight` gauges, `batch.verdicts` and
//! `batch.shed` (+ per-reason) counters, `batch.compute.seconds` per
//! micro-batch.
//!
//! [`Backpressure`]: AdmissionPolicy::Backpressure
//! [`Shed`]: AdmissionPolicy::Shed
//! [`Cascade::run_batch`]: crate::cascade::Cascade::run_batch

use crate::cascade::ExecutionPolicy;
use crate::pipeline::DefenseSystem;
use crate::session::SessionData;
use crate::stream::{
    SessionChunk, StreamConfig, StreamEvent, StreamOpenInfo, StreamingVerification,
};
use crate::verdict::DefenseVerdict;
use crossbeam::channel::{unbounded, Receiver, Sender};
use magshield_obs::labels::Labels;
use magshield_obs::metrics::{Counter, Gauge, Histogram, Registry};
use magshield_obs::trace::PipelineTrace;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a submitter experiences when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until a queue slot frees up. No
    /// session is ever refused, at the price of submitter latency —
    /// the right default for in-process callers that can wait.
    #[default]
    Backpressure,
    /// Refuse immediately with [`ShedReason::QueueFull`]. The right
    /// policy for a server that must bound its own memory and tail
    /// latency under overload rather than queueing unboundedly.
    Shed,
}

/// Why a session was shed instead of verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedReason {
    /// The bounded queue was full under [`AdmissionPolicy::Shed`].
    QueueFull,
    /// Processing had not started by the batch deadline.
    DeadlineExceeded,
    /// The engine was shutting down (or already stopped) when the
    /// session was submitted.
    ShuttingDown,
}

impl ShedReason {
    /// Stable snake_case identifier (used in metric names and wire
    /// details).
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExceeded => "deadline",
            ShedReason::ShuttingDown => "shutdown",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one submitted session: a full verdict, or an explicit
/// shed. There is no silent third state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchOutcome {
    /// The session was verified.
    Verdict(DefenseVerdict),
    /// The session was shed without running the cascade.
    Shed(ShedReason),
}

impl BatchOutcome {
    /// The verdict, if the session was verified.
    pub fn verdict(&self) -> Option<&DefenseVerdict> {
        match self {
            BatchOutcome::Verdict(v) => Some(v),
            BatchOutcome::Shed(_) => None,
        }
    }

    /// Whether the session was shed.
    pub fn is_shed(&self) -> bool {
        matches!(self, BatchOutcome::Shed(_))
    }
}

/// Engine sizing and policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Worker threads sharing the trained system.
    pub workers: usize,
    /// Bound on sessions queued (admitted but not yet picked up by a
    /// worker). The admission policy decides what happens at the bound.
    pub queue_capacity: usize,
    /// Most sessions a worker folds into one stage-major micro-batch.
    pub max_batch: usize,
    /// Cascade execution policy. [`ExecutionPolicy::ShortCircuit`] is the
    /// point of stage-major batching (early stages prune the ASV stage),
    /// but [`ExecutionPolicy::FullEvaluation`] is supported for workloads
    /// that need re-thresholdable scores.
    pub policy: ExecutionPolicy,
    /// What happens to submitters when the queue is full.
    pub admission: AdmissionPolicy,
    /// Sessions whose processing has not started within this budget of
    /// their submission are shed with [`ShedReason::DeadlineExceeded`].
    /// For [`BatchEngine::verify_batch`] the budget is measured once from
    /// the start of the batch, making it a true per-batch deadline.
    pub batch_deadline: Option<Duration>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            max_batch: 16,
            policy: ExecutionPolicy::ShortCircuit,
            admission: AdmissionPolicy::Backpressure,
            batch_deadline: None,
        }
    }
}

// ---------- admission gate ----------

struct GateState {
    queued: usize,
    inflight: usize,
    closed: bool,
}

struct GateInner {
    state: Mutex<GateState>,
    changed: Condvar,
    capacity: usize,
    policy: AdmissionPolicy,
    depth: Gauge,
    inflight: Gauge,
}

/// A bounded admission gate with RAII slot accounting.
///
/// `admit` hands out a [`QueueSlot`] while the queued count is below
/// capacity; at capacity it blocks ([`AdmissionPolicy::Backpressure`]) or
/// refuses ([`AdmissionPolicy::Shed`]). Slots decrement their counts on
/// drop — on *any* exit path, including a panicking worker unwinding with
/// the slot in hand — so the depth gauge can never leak. Both the
/// [`BatchEngine`] and the
/// [`VerificationServer`](crate::server::VerificationServer) queue sit
/// behind one of these.
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

impl AdmissionGate {
    /// A gate bounding the queued count at `capacity`, reporting depth
    /// into `depth` and in-flight work into `inflight`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (nothing could ever be admitted).
    pub fn new(capacity: usize, policy: AdmissionPolicy, depth: Gauge, inflight: Gauge) -> Self {
        assert!(capacity > 0, "admission gate needs capacity > 0");
        Self {
            inner: Arc::new(GateInner {
                state: Mutex::new(GateState {
                    queued: 0,
                    inflight: 0,
                    closed: false,
                }),
                changed: Condvar::new(),
                capacity,
                policy,
                depth,
                inflight,
            }),
        }
    }

    /// Claims a queue slot, blocking or shedding at capacity per the
    /// gate's policy.
    pub fn admit(&self) -> Result<QueueSlot, ShedReason> {
        let mut st = self.inner.state.lock().expect("gate lock");
        loop {
            if st.closed {
                return Err(ShedReason::ShuttingDown);
            }
            if st.queued < self.inner.capacity {
                st.queued += 1;
                self.inner.depth.inc();
                return Ok(QueueSlot {
                    inner: Arc::clone(&self.inner),
                });
            }
            match self.inner.policy {
                AdmissionPolicy::Shed => return Err(ShedReason::QueueFull),
                AdmissionPolicy::Backpressure => {
                    st = self.inner.changed.wait(st).expect("gate lock");
                }
            }
        }
    }

    /// Closes the gate: every subsequent (and currently blocked) `admit`
    /// returns [`ShedReason::ShuttingDown`]. Idempotent.
    pub fn close(&self) {
        self.inner.state.lock().expect("gate lock").closed = true;
        self.inner.changed.notify_all();
    }

    /// Whether the gate has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().expect("gate lock").closed
    }

    /// Sessions admitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.inner.state.lock().expect("gate lock").queued
    }

    /// Blocks until no work is queued or in flight.
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().expect("gate lock");
        while st.queued > 0 || st.inflight > 0 {
            st = self.inner.changed.wait(st).expect("gate lock");
        }
    }
}

impl Clone for AdmissionGate {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// RAII claim on one queued slot. Dropping it releases the slot;
/// [`QueueSlot::start`] converts it into an [`InflightSlot`] when a
/// worker picks the work up.
pub struct QueueSlot {
    inner: Arc<GateInner>,
}

impl QueueSlot {
    /// Marks the work as picked up: the queue slot is released (freeing
    /// admission capacity) and an in-flight claim is taken in its place.
    pub fn start(self) -> InflightSlot {
        {
            let mut st = self.inner.state.lock().expect("gate lock");
            st.inflight += 1;
        }
        self.inner.inflight.inc();
        InflightSlot {
            inner: Arc::clone(&self.inner),
        }
        // `self` drops here, releasing the queued count and notifying
        // waiters — after the in-flight claim is registered, so
        // `wait_idle` never observes a gap.
    }
}

impl Drop for QueueSlot {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("gate lock");
        st.queued -= 1;
        self.inner.depth.dec();
        self.inner.changed.notify_all();
    }
}

/// RAII claim on one in-flight unit of work.
pub struct InflightSlot {
    inner: Arc<GateInner>,
}

impl Drop for InflightSlot {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("gate lock");
        st.inflight -= 1;
        self.inner.inflight.dec();
        self.inner.changed.notify_all();
    }
}

// ---------- engine ----------

struct WorkItem {
    session: Arc<SessionData>,
    reply: Sender<BatchOutcome>,
    enqueued: Instant,
    deadline: Option<Instant>,
    slot: Option<QueueSlot>,
}

struct EngineObs {
    registry: Registry,
    queue_wait: Histogram,
    batch_size: Histogram,
    compute: Histogram,
    verdicts: Counter,
    shed: Counter,
    /// Labeled twin of `verdicts`: `batch.verdicts{policy}`.
    verdicts_labeled: Counter,
    /// Labeled shed series, one handle per [`ShedReason`] so the shed
    /// path (already under pressure by definition) never re-interns:
    /// `batch.shed{policy,shed_reason}`.
    shed_labeled: [Counter; 3],
}

impl EngineObs {
    fn new(registry: Registry, policy: ExecutionPolicy) -> Self {
        let base = Labels::new().policy(policy.name());
        let shed_for = |reason: ShedReason| {
            registry.counter_with("batch.shed", &base.clone().shed_reason(reason.name()))
        };
        Self {
            queue_wait: registry.histogram("batch.queue.wait.seconds"),
            batch_size: registry.histogram("batch.size.sessions"),
            compute: registry.histogram("batch.compute.seconds"),
            verdicts: registry.counter("batch.verdicts"),
            shed: registry.counter("batch.shed"),
            verdicts_labeled: registry.counter_with("batch.verdicts", &base),
            shed_labeled: [
                shed_for(ShedReason::QueueFull),
                shed_for(ShedReason::DeadlineExceeded),
                shed_for(ShedReason::ShuttingDown),
            ],
            registry,
        }
    }

    fn record_shed(&self, reason: ShedReason) {
        self.shed.inc();
        self.registry
            .counter(&format!("batch.shed.{}", reason.name()))
            .inc();
        let idx = match reason {
            ShedReason::QueueFull => 0,
            ShedReason::DeadlineExceeded => 1,
            ShedReason::ShuttingDown => 2,
        };
        self.shed_labeled[idx].inc();
    }
}

/// A handle resolving to the [`BatchOutcome`] of one submitted session.
///
/// Every ticket resolves exactly once: with the verdict, with the shed
/// record, or — if the engine is torn down non-gracefully with the
/// session still queued — with [`ShedReason::ShuttingDown`]. It cannot
/// hang and it cannot be silently dropped.
pub struct Ticket {
    rx: Receiver<BatchOutcome>,
}

impl Ticket {
    /// Blocks until the session's outcome is known.
    pub fn wait(self) -> BatchOutcome {
        self.rx
            .recv()
            .unwrap_or(BatchOutcome::Shed(ShedReason::ShuttingDown))
    }
}

/// Why [`EngineStream::feed`] (or finalize) did not process a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFeedError {
    /// Admission control refused the chunk (queue full under
    /// [`AdmissionPolicy::Shed`], deadline expired before processing
    /// started, or the engine is shutting down). The stream itself is
    /// still open; under backpressure the caller may retry.
    Shed(ShedReason),
    /// The stream already produced its terminal verdict (it
    /// early-rejected on an earlier chunk).
    Closed,
}

impl std::fmt::Display for StreamFeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamFeedError::Shed(r) => write!(f, "chunk shed: {r}"),
            StreamFeedError::Closed => f.write_str("stream already terminated"),
        }
    }
}

impl std::error::Error for StreamFeedError {}

/// A chunk-fed verification stream admitted through a [`BatchEngine`].
///
/// Wraps a [`StreamingVerification`] so that every chunk passes the
/// engine's [`AdmissionGate`] (sharing capacity with batch submissions),
/// is deadline-checked like a batch item, and holds an in-flight claim
/// while computing — [`BatchEngine::drain`] and graceful shutdown see
/// streaming work exactly like batch work. The stream holds its own
/// handles, so it stays valid (and sheds cleanly with
/// [`ShedReason::ShuttingDown`]) even if the engine is torn down first.
pub struct EngineStream {
    inner: StreamingVerification,
    system: Arc<DefenseSystem>,
    gate: AdmissionGate,
    obs: EngineObs,
    chunk_deadline: Option<Duration>,
}

impl EngineStream {
    /// Feeds one chunk through admission control and the stream's stage
    /// machines. Terminal events ([`StreamEvent::EarlyReject`],
    /// [`StreamEvent::ReverifyReject`]) close the stream; later feeds
    /// return [`StreamFeedError::Closed`].
    pub fn feed(&mut self, chunk: &SessionChunk) -> Result<StreamEvent, StreamFeedError> {
        let deadline = self.chunk_deadline.map(|d| Instant::now() + d);
        let slot = self.gate.admit().map_err(|r| {
            self.obs.record_shed(r);
            StreamFeedError::Shed(r)
        })?;
        let _inflight = slot.start();
        if deadline.is_some_and(|d| Instant::now() > d) {
            self.obs.record_shed(ShedReason::DeadlineExceeded);
            return Err(StreamFeedError::Shed(ShedReason::DeadlineExceeded));
        }
        let t0 = Instant::now();
        let event = self
            .inner
            .ingest(chunk, &self.system.config, self.system.obs())
            .map_err(|_| StreamFeedError::Closed)?;
        self.obs
            .registry
            .histogram("batch.stream.compute.seconds")
            .record(t0.elapsed());
        if !matches!(event, StreamEvent::Progress(_)) {
            self.obs.verdicts.inc();
            self.obs.verdicts_labeled.inc();
        }
        Ok(event)
    }

    /// Closes the stream through admission control: runs the stock
    /// one-shot cascade over the accumulated session and returns the
    /// verdict plus its trace. Errors with [`StreamFeedError::Closed`]
    /// if the stream already terminated mid-stream.
    pub fn finalize(self) -> Result<(DefenseVerdict, PipelineTrace), StreamFeedError> {
        let slot = self.gate.admit().map_err(|r| {
            self.obs.record_shed(r);
            StreamFeedError::Shed(r)
        })?;
        let _inflight = slot.start();
        let t0 = Instant::now();
        let out = self
            .inner
            .finalize(&self.system.config, self.system.obs())
            .map_err(|_| StreamFeedError::Closed)?;
        self.obs
            .registry
            .histogram("batch.stream.compute.seconds")
            .record(t0.elapsed());
        self.obs.verdicts.inc();
        self.obs.verdicts_labeled.inc();
        Ok(out)
    }

    /// The wrapped stream state (chunk counts, termination, pinned
    /// generation, accumulated prefix).
    pub fn stream(&self) -> &StreamingVerification {
        &self.inner
    }
}

/// The batch verification engine: a worker pool pulling stage-major
/// micro-batches off a bounded, admission-controlled queue.
///
/// ```no_run
/// use magshield_core::batch::{BatchConfig, BatchEngine};
/// use magshield_core::scenario::{self, ScenarioBuilder};
/// use magshield_simkit::rng::SimRng;
///
/// let rng = SimRng::from_seed(7);
/// let (system, user) = scenario::bootstrap_system(&rng);
/// let engine = BatchEngine::spawn(system, BatchConfig::default());
/// let sessions: Vec<_> = (0..64)
///     .map(|i| ScenarioBuilder::genuine(&user).capture(&rng.fork_indexed("s", i)))
///     .collect();
/// for outcome in engine.verify_batch(sessions) {
///     println!("{:?}", outcome.verdict().map(|v| v.accepted()));
/// }
/// engine.shutdown();
/// ```
pub struct BatchEngine {
    tx: Mutex<Option<Sender<WorkItem>>>,
    /// Kept so a paused engine (tests) can hold queued items without the
    /// channel disconnecting; workers hold clones.
    _rx: Receiver<WorkItem>,
    workers: Vec<JoinHandle<()>>,
    gate: AdmissionGate,
    obs: EngineObs,
    batch_deadline: Option<Duration>,
    /// Shared with the workers; streaming chunks run against the same
    /// trained system on the submitting thread.
    system: Arc<DefenseSystem>,
}

impl BatchEngine {
    /// Spawns the engine with `cfg.workers` threads sharing `system`.
    ///
    /// Engine metrics are registered in `system`'s own registry, so one
    /// snapshot covers cascade stage histograms and batch queue behavior
    /// side by side.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers`, `cfg.queue_capacity` or `cfg.max_batch`
    /// is zero.
    pub fn spawn(system: DefenseSystem, cfg: BatchConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        Self::spawn_inner(system, cfg, cfg.workers)
    }

    /// An engine with a live queue but **no workers**: submissions are
    /// admitted (or shed) but never processed. Deterministic harness for
    /// queue-full and shutdown tests.
    #[doc(hidden)]
    pub fn spawn_paused(system: DefenseSystem, cfg: BatchConfig) -> Self {
        Self::spawn_inner(system, cfg, 0)
    }

    fn spawn_inner(system: DefenseSystem, cfg: BatchConfig, workers: usize) -> Self {
        assert!(cfg.queue_capacity > 0, "need queue capacity > 0");
        assert!(cfg.max_batch > 0, "need max_batch > 0");
        let registry = system.metrics().clone();
        let gate = AdmissionGate::new(
            cfg.queue_capacity,
            cfg.admission,
            registry.gauge("batch.queue.depth"),
            registry.gauge("batch.inflight"),
        );
        let obs = EngineObs::new(registry, cfg.policy);
        let system = Arc::new(system);
        let (tx, rx) = unbounded::<WorkItem>();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let system = Arc::clone(&system);
                let obs = EngineObs::new(system.metrics().clone(), cfg.policy);
                let policy = cfg.policy;
                let max_batch = cfg.max_batch;
                let workers = cfg.workers;
                std::thread::spawn(move || {
                    worker_loop(&rx, &system, &obs, policy, max_batch, workers)
                })
            })
            .collect();
        Self {
            tx: Mutex::new(Some(tx)),
            _rx: rx,
            workers: handles,
            gate,
            obs,
            batch_deadline: cfg.batch_deadline,
            system,
        }
    }

    /// Submits one session for verification, applying admission control.
    /// The per-item deadline (when configured) starts now; use
    /// [`BatchEngine::verify_batch`] for a shared per-batch deadline.
    ///
    /// Accepts either an owned [`SessionData`] or an `Arc<SessionData>`:
    /// the queue holds sessions behind an `Arc`, so callers replaying a
    /// shared pool (load generators, the server fan-out) enqueue a
    /// pointer clone instead of deep-copying megabytes of audio and IMU
    /// samples per submission.
    pub fn submit(&self, session: impl Into<Arc<SessionData>>) -> Result<Ticket, ShedReason> {
        let deadline = self.batch_deadline.map(|d| Instant::now() + d);
        self.submit_with_deadline(session.into(), deadline)
    }

    fn submit_with_deadline(
        &self,
        session: Arc<SessionData>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ShedReason> {
        let slot = self
            .gate
            .admit()
            .inspect_err(|&r| self.obs.record_shed(r))?;
        let sender = self.tx.lock().expect("engine sender lock").clone();
        let Some(sender) = sender else {
            // Shutdown raced the admit; the slot drops and frees itself.
            self.obs.record_shed(ShedReason::ShuttingDown);
            return Err(ShedReason::ShuttingDown);
        };
        let (reply_tx, reply_rx) = unbounded();
        let item = WorkItem {
            session,
            reply: reply_tx,
            enqueued: Instant::now(),
            deadline,
            slot: Some(slot),
        };
        match sender.send(item) {
            Ok(()) => Ok(Ticket { rx: reply_rx }),
            Err(_) => {
                // Channel closed under us; the item (and its slot) just
                // dropped, keeping the books straight.
                self.obs.record_shed(ShedReason::ShuttingDown);
                Err(ShedReason::ShuttingDown)
            }
        }
    }

    /// Verifies a whole batch, preserving input order. Sessions refused
    /// by admission appear as [`BatchOutcome::Shed`] in place; accepted
    /// sessions resolve to verdicts (or deadline sheds). When
    /// [`BatchConfig::batch_deadline`] is set, the deadline is anchored
    /// at the start of the call — one budget for the whole batch.
    pub fn verify_batch(&self, sessions: Vec<SessionData>) -> Vec<BatchOutcome> {
        let deadline = self.batch_deadline.map(|d| Instant::now() + d);
        let tickets: Vec<Result<Ticket, ShedReason>> = sessions
            .into_iter()
            .map(|s| self.submit_with_deadline(Arc::new(s), deadline))
            .collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(reason) => BatchOutcome::Shed(reason),
            })
            .collect()
    }

    /// Opens a chunk-fed verification stream whose ingestion shares this
    /// engine's admission control: every [`EngineStream::feed`] claims a
    /// queue slot (blocking or shedding at capacity per the engine's
    /// [`AdmissionPolicy`]), honors the configured per-chunk deadline,
    /// and registers as in-flight work so [`BatchEngine::drain`] and
    /// graceful shutdown account for mid-chunk compute. Refused with
    /// [`ShedReason::ShuttingDown`] once admission has closed.
    ///
    /// Chunks run synchronously on the feeding thread (a stream is a
    /// stateful pipeline — its chunks cannot be reordered across
    /// workers); the worker pool keeps serving batch traffic
    /// concurrently.
    pub fn open_stream(
        &self,
        info: &StreamOpenInfo,
        stream: StreamConfig,
    ) -> Result<EngineStream, ShedReason> {
        if self.gate.is_closed() {
            self.obs.record_shed(ShedReason::ShuttingDown);
            return Err(ShedReason::ShuttingDown);
        }
        let inner = self.system.open_stream(info, stream);
        Ok(EngineStream {
            inner,
            system: Arc::clone(&self.system),
            gate: self.gate.clone(),
            obs: EngineObs::new(self.system.metrics().clone(), stream.policy),
            chunk_deadline: self.batch_deadline,
        })
    }

    /// Blocks until every admitted session has its outcome delivered.
    pub fn drain(&self) {
        self.gate.wait_idle();
    }

    /// Stops admission without waiting: subsequent submits shed with
    /// [`ShedReason::ShuttingDown`]; already-admitted work keeps flowing
    /// to the workers. Idempotent.
    pub fn initiate_shutdown(&self) {
        self.gate.close();
        self.tx.lock().expect("engine sender lock").take();
    }

    /// Graceful shutdown: closes admission, drains every admitted
    /// session through the cascade, and joins the workers. Every
    /// accepted session gets exactly one verdict.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// The engine's admission gate (shared-state view for tests and
    /// monitoring).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The metrics registry (shared with the system's pipeline metrics).
    pub fn metrics(&self) -> &Registry {
        &self.obs.registry
    }

    fn stop_and_join(&mut self) {
        self.initiate_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Worker body: pull a micro-batch, shed the expired, run the rest
/// stage-major, reply to every item.
fn worker_loop(
    rx: &Receiver<WorkItem>,
    system: &DefenseSystem,
    obs: &EngineObs,
    policy: ExecutionPolicy,
    max_batch: usize,
    workers: usize,
) {
    let queue_depth = obs.registry.gauge("batch.queue.depth");
    loop {
        // Blocking for the first item; errors mean "closed and empty",
        // i.e. the drain is complete.
        let first = match rx.recv() {
            Ok(item) => item,
            Err(_) => break,
        };
        // Grab at most a fair share of the visible backlog on top of the
        // blocking item. A greedy drain up to `max_batch` would let one
        // worker swallow everything a light load has queued and process
        // it serially while its peers sit idle; dividing by the worker
        // count keeps micro-batching for deep queues (where amortization
        // pays) without starving parallelism for shallow ones. The depth
        // gauge still counts `first` (its slot converts below), hence the
        // `- 1`; the reading is racy, which a scheduling hint tolerates.
        let backlog = (queue_depth.get() - 1).max(0) as usize;
        let fair_extra = (backlog / workers.max(1)).min(max_batch - 1);
        let mut batch = vec![first];
        while batch.len() <= fair_extra {
            match rx.try_recv() {
                Ok(item) => batch.push(item),
                Err(_) => break,
            }
        }
        obs.batch_size.record_secs(batch.len() as f64);
        // Queue slots convert to in-flight claims before processing so
        // admission capacity frees up while `wait_idle` still sees the
        // work.
        let _inflight: Vec<InflightSlot> = batch
            .iter_mut()
            .filter_map(|item| item.slot.take())
            .map(QueueSlot::start)
            .collect();
        for item in &batch {
            obs.queue_wait.record(item.enqueued.elapsed());
        }
        let now = Instant::now();
        let (live, expired): (Vec<WorkItem>, Vec<WorkItem>) = batch
            .into_iter()
            .partition(|item| item.deadline.is_none_or(|d| now <= d));
        for item in expired {
            obs.record_shed(ShedReason::DeadlineExceeded);
            let _ = item
                .reply
                .send(BatchOutcome::Shed(ShedReason::DeadlineExceeded));
        }
        if live.is_empty() {
            continue;
        }
        let sessions: Vec<&SessionData> = live.iter().map(|item| &*item.session).collect();
        let t0 = Instant::now();
        let results =
            system
                .cascade()
                .with_policy(policy)
                .run_batch(&sessions, &system.config, system.obs());
        obs.compute.record(t0.elapsed());
        obs.verdicts.add(live.len() as u64);
        obs.verdicts_labeled.add(live.len() as u64);
        for (item, (verdict, _trace)) in live.into_iter().zip(results) {
            // The submitter may have given up; ignore send errors.
            let _ = item.reply.send(BatchOutcome::Verdict(verdict));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::attacks::AttackKind;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;
    use proptest::prelude::*;

    fn genuine(seed: u64) -> SessionData {
        let (_, user) = crate::test_support::shared_tiny_system();
        ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
    }

    fn replay(seed: u64) -> SessionData {
        let (_, user) = crate::test_support::shared_tiny_system();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(seed))
    }

    fn cfg() -> BatchConfig {
        BatchConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            ..BatchConfig::default()
        }
    }

    #[test]
    fn batch_verdicts_and_metrics() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let engine = BatchEngine::spawn(sys, cfg());
        let sessions: Vec<_> = (0..6).map(|i| genuine(700 + i)).collect();
        let outcomes = engine.verify_batch(sessions);
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| !o.is_shed()));
        // Replies land just before the in-flight slots release; drain to
        // observe the settled gauges.
        engine.drain();
        let m = engine.metrics().snapshot();
        assert_eq!(m.counters["batch.verdicts"], 6);
        assert_eq!(m.histograms["batch.queue.wait.seconds"].count, 6);
        assert!(m.histograms["batch.size.sessions"].count >= 1);
        assert_eq!(m.gauges["batch.queue.depth"], 0, "queue drained");
        assert_eq!(m.gauges["batch.inflight"], 0, "nothing left in flight");
        assert!(!m.counters.contains_key("batch.shed.queue_full"));
        engine.shutdown();
    }

    #[test]
    fn shed_policy_refuses_at_capacity_deterministically() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let engine = BatchEngine::spawn_paused(
            sys,
            BatchConfig {
                queue_capacity: 2,
                admission: AdmissionPolicy::Shed,
                ..cfg()
            },
        );
        let t1 = engine.submit(genuine(710)).expect("slot 1");
        let t2 = engine.submit(genuine(711)).expect("slot 2");
        assert_eq!(
            engine.submit(genuine(712)).err(),
            Some(ShedReason::QueueFull)
        );
        assert_eq!(engine.gate().queued(), 2);
        assert_eq!(engine.metrics().counter("batch.shed").get(), 1);
        assert_eq!(engine.metrics().counter("batch.shed.queue_full").get(), 1);
        assert_eq!(engine.metrics().gauge("batch.queue.depth").get(), 2);
        // Tearing the paused engine down still resolves every ticket —
        // never a silent drop.
        drop(engine);
        assert_eq!(t1.wait(), BatchOutcome::Shed(ShedReason::ShuttingDown));
        assert_eq!(t2.wait(), BatchOutcome::Shed(ShedReason::ShuttingDown));
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let engine = BatchEngine::spawn(sys.with_fresh_obs(), cfg());
        engine.initiate_shutdown();
        assert_eq!(
            engine.submit(genuine(720)).err(),
            Some(ShedReason::ShuttingDown)
        );
        assert_eq!(engine.metrics().counter("batch.shed.shutdown").get(), 1);
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_sheds_instead_of_computing() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let engine = BatchEngine::spawn(
            sys,
            BatchConfig {
                workers: 1,
                batch_deadline: Some(Duration::from_nanos(1)),
                ..cfg()
            },
        );
        let outcomes = engine.verify_batch((0..4).map(|i| genuine(730 + i)).collect());
        assert!(
            outcomes
                .iter()
                .all(|o| *o == BatchOutcome::Shed(ShedReason::DeadlineExceeded)),
            "a 1 ns budget must shed every session: {outcomes:?}"
        );
        assert_eq!(engine.metrics().counter("batch.verdicts").get(), 0);
        assert_eq!(engine.metrics().counter("batch.shed.deadline").get(), 4);
        engine.shutdown();
    }

    #[test]
    fn backpressure_completes_past_capacity_without_deadlock() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let engine = BatchEngine::spawn(
            sys.with_fresh_obs(),
            BatchConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 2,
                admission: AdmissionPolicy::Backpressure,
                ..BatchConfig::default()
            },
        );
        // 6 sessions through a 1-deep queue: submits must block, not shed.
        let outcomes = engine.verify_batch((0..6).map(|i| genuine(740 + i)).collect());
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| !o.is_shed()));
        assert_eq!(engine.metrics().counter("batch.shed").get(), 0);
        engine.shutdown();
    }

    #[test]
    fn engine_stream_matches_one_shot_decision() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let engine = BatchEngine::spawn(sys.with_fresh_obs(), cfg());
        let s = genuine(760);
        let expected = sys.verify(&s);
        let mut stream = engine
            .open_stream(&StreamOpenInfo::for_session(&s), StreamConfig::default())
            .expect("open stream");
        for chunk in crate::stream::chunk_session(&s, 9600) {
            match stream.feed(&chunk).expect("feed") {
                StreamEvent::Progress(_) => {}
                other => panic!("genuine stream terminated early: {other:?}"),
            }
        }
        let (verdict, _trace) = stream.finalize().expect("finalize");
        assert_eq!(verdict.decision, expected.decision);
        engine.drain();
        let m = engine.metrics().snapshot();
        assert_eq!(m.gauges["batch.queue.depth"], 0, "stream slots released");
        assert_eq!(m.gauges["batch.inflight"], 0, "stream inflight released");
        assert!(m.histograms["batch.stream.compute.seconds"].count >= 2);
        engine.shutdown();
    }

    #[test]
    fn engine_stream_early_rejects_replay_and_then_refuses_chunks() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let engine = BatchEngine::spawn(sys.with_fresh_obs(), cfg());
        let s = replay(761);
        let chunks = crate::stream::chunk_session(&s, 4800);
        let mut stream = engine
            .open_stream(&StreamOpenInfo::for_session(&s), StreamConfig::default())
            .expect("open stream");
        let mut rejected_at = None;
        for (i, chunk) in chunks.iter().enumerate() {
            match stream.feed(chunk) {
                Ok(StreamEvent::EarlyReject(v)) => {
                    assert!(!v.accepted());
                    rejected_at = Some(i);
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected feed error: {e}"),
            }
        }
        let at = rejected_at.expect("replay must early-reject through the engine");
        assert!(at + 1 < chunks.len(), "reject must land mid-stream");
        assert!(matches!(
            stream.feed(&chunks[0]),
            Err(StreamFeedError::Closed)
        ));
        assert!(stream.stream().terminated());
        assert_eq!(engine.metrics().counter("batch.verdicts").get(), 1);
        engine.shutdown();
    }

    #[test]
    fn engine_stream_sheds_after_shutdown() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let engine = BatchEngine::spawn(sys.with_fresh_obs(), cfg());
        let s = genuine(762);
        let mut stream = engine
            .open_stream(&StreamOpenInfo::for_session(&s), StreamConfig::default())
            .expect("open stream");
        engine.initiate_shutdown();
        let chunk = crate::stream::chunk_session(&s, 9600).remove(0);
        assert!(matches!(
            stream.feed(&chunk),
            Err(StreamFeedError::Shed(ShedReason::ShuttingDown))
        ));
        assert!(
            engine
                .open_stream(&StreamOpenInfo::for_session(&s), StreamConfig::default())
                .is_err(),
            "no new streams after shutdown"
        );
        assert!(engine.metrics().counter("batch.shed.shutdown").get() >= 2);
        engine.shutdown();
    }

    proptest! {
        // Each case runs the cascade over every session twice (batch +
        // sequential); keep the case count low, the fixture is shared.
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The acceptance property: batch-engine verdicts are identical —
        /// decisions, scores, skip records — to sequential per-session
        /// verdicts, under both execution policies.
        #[test]
        fn engine_matches_sequential_verdicts(
            seeds in prop::collection::vec(0u64..5000, 1..6),
            attack_mask in 0u32..64,
            short_circuit in 0u8..2,
        ) {
            let (sys, _) = crate::test_support::shared_tiny_system();
            let policy = if short_circuit == 1 {
                ExecutionPolicy::ShortCircuit
            } else {
                ExecutionPolicy::FullEvaluation
            };
            let sessions: Vec<SessionData> = seeds
                .iter()
                .enumerate()
                .map(|(i, &seed)| {
                    if attack_mask & (1 << i) != 0 {
                        replay(seed)
                    } else {
                        genuine(seed)
                    }
                })
                .collect();
            let sequential: Vec<DefenseVerdict> = sessions
                .iter()
                .map(|s| sys.verify_with_policy(s, policy))
                .collect();
            let engine = BatchEngine::spawn(
                sys.with_fresh_obs(),
                BatchConfig { policy, ..cfg() },
            );
            let outcomes = engine.verify_batch(sessions);
            engine.shutdown();
            prop_assert_eq!(outcomes.len(), sequential.len());
            for (outcome, expected) in outcomes.iter().zip(&sequential) {
                match outcome {
                    BatchOutcome::Verdict(v) => prop_assert_eq!(v, expected),
                    BatchOutcome::Shed(r) => prop_assert!(false, "unexpected shed: {}", r),
                }
            }
        }
    }
}

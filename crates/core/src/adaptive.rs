//! Adaptive thresholding — the §VII extension.
//!
//! "When encountering high environmental EMF radiation, we ask users to
//! calibrate the smartphone by monitoring the environment for a few
//! seconds; we calculate the average environmental magnetic interference
//! level and adjust the threshold for each verification component
//! adaptively."
//!
//! The calibration measures the ambient magnitude noise before the
//! session and scales the magnetometer thresholds (`Mt`, `βt`) so the
//! quiet-environment operating point is preserved. As the paper warns,
//! adaptation is clamped: an attacker must not be able to train the
//! system in a noisy place and then replay in a quiet one, so thresholds
//! only scale *up* to a bounded factor and never below the factory floor.

use crate::config::DefenseConfig;
use crate::verdict::Component;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Result of a pre-session environment calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentCalibration {
    /// RMS magnitude noise of the stationary magnetometer (µT).
    pub noise_rms_ut: f64,
    /// Peak-to-peak wander of the smoothed magnitude (µT).
    pub wander_ut: f64,
}

/// Measures the environment from a few seconds of stationary magnetometer
/// readings (body frame is irrelevant for magnitudes).
pub fn calibrate(stationary_readings: &[Vec3]) -> EnvironmentCalibration {
    if stationary_readings.len() < 4 {
        return EnvironmentCalibration {
            noise_rms_ut: 0.0,
            wander_ut: 0.0,
        };
    }
    let mags: Vec<f64> = stationary_readings.iter().map(|r| r.norm()).collect();
    let mean = mags.iter().sum::<f64>() / mags.len() as f64;
    let rms = (mags.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mags.len() as f64).sqrt();
    let smoothed = magshield_dsp::filter::moving_average(&mags, 5);
    let (lo, hi) = smoothed
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &m| {
            (l.min(m), h.max(m))
        });
    EnvironmentCalibration {
        noise_rms_ut: rms,
        wander_ut: hi - lo,
    }
}

/// Headroom factor between the ambient magnitude-noise RMS and the
/// deviation threshold: the detector takes a *maximum* over hundreds of
/// smoothed samples, whose expected extreme sits several sigma above the
/// RMS.
const NOISE_HEADROOM: f64 = 8.0;
/// Upper bound on adaptive scaling — the anti-gaming clamp.
const MAX_SCALE: f64 = 4.0;

/// Produces thresholds adapted to a measured environment.
///
/// Adaptation is expressed as a per-stage decision boundary on
/// [`Component::Loudspeaker`] (see
/// [`DefenseConfig::stage_boundaries`](crate::config::StageBoundaries)):
/// a boundary of `k` is exactly equivalent to scaling the physical
/// magnetometer thresholds `Mt` and `βt` by `k`, since the stage's raw
/// score is `max(dev/Mt, rate/βt)`. The boundary is raised so the
/// effective deviation threshold reaches `NOISE_HEADROOM ×` the measured
/// ambient noise RMS when that exceeds the factory value; scaling is
/// clamped to `MAX_SCALE` (the anti-gaming bound) and never drops below
/// the factory floor.
pub fn adapted_config(base: DefenseConfig, cal: EnvironmentCalibration) -> DefenseConfig {
    let target = cal.noise_rms_ut * NOISE_HEADROOM;
    let scale = (target / base.mag_deviation_ut).clamp(1.0, MAX_SCALE);
    base.with_stage_boundary(Component::Loudspeaker, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_physics::magnetics::interference::EmfEnvironment;
    use magshield_physics::magnetics::scene::MagneticScene;
    use magshield_simkit::rng::SimRng;

    fn stationary_readings(env: EmfEnvironment, seed: u64) -> Vec<Vec3> {
        let scene = MagneticScene::quiet().with_environment(env);
        let pos = vec![Vec3::new(0.05, 0.0, 0.0); 300];
        scene.sample_along(&pos, 100.0, &SimRng::from_seed(seed))
    }

    fn loudspeaker_boundary(cfg: &DefenseConfig) -> f64 {
        cfg.stage_boundaries.get(Component::Loudspeaker)
    }

    #[test]
    fn quiet_environment_keeps_factory_thresholds() {
        let cal = calibrate(&stationary_readings(EmfEnvironment::quiet(), 1));
        let cfg = adapted_config(DefenseConfig::default(), cal);
        assert!((loudspeaker_boundary(&cfg) - 1.0).abs() < 0.2);
    }

    #[test]
    fn car_environment_raises_thresholds() {
        let cal = calibrate(&stationary_readings(EmfEnvironment::in_car(), 2));
        assert!(cal.noise_rms_ut > 0.4, "car noise {}", cal.noise_rms_ut);
        let cfg = adapted_config(DefenseConfig::default(), cal);
        assert!(
            loudspeaker_boundary(&cfg) > 1.3,
            "boundary {}",
            loudspeaker_boundary(&cfg)
        );
    }

    #[test]
    fn adaptation_only_touches_the_loudspeaker_stage() {
        let cal = calibrate(&stationary_readings(EmfEnvironment::in_car(), 3));
        let cfg = adapted_config(DefenseConfig::default(), cal);
        // The physical thresholds stay at factory values; the knob is the
        // per-stage boundary.
        assert_eq!(
            cfg.mag_deviation_ut,
            DefenseConfig::default().mag_deviation_ut
        );
        for c in Component::all() {
            if c != Component::Loudspeaker {
                assert_eq!(cfg.stage_boundaries.get(c), 1.0, "{} widened", c.name());
            }
        }
    }

    #[test]
    fn adaptation_is_clamped() {
        let cal = EnvironmentCalibration {
            noise_rms_ut: 1e6,
            wander_ut: 1e6,
        };
        let cfg = adapted_config(DefenseConfig::default(), cal);
        assert!(loudspeaker_boundary(&cfg) <= MAX_SCALE + 1e-9);
    }

    #[test]
    fn never_adapts_below_factory() {
        let cal = EnvironmentCalibration {
            noise_rms_ut: 0.0,
            wander_ut: 0.0,
        };
        let cfg = adapted_config(DefenseConfig::default(), cal);
        assert_eq!(loudspeaker_boundary(&cfg), 1.0);
    }

    #[test]
    fn short_calibration_is_neutral() {
        let cal = calibrate(&[Vec3::ZERO; 2]);
        assert_eq!(cal.noise_rms_ut, 0.0);
    }
}

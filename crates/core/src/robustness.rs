//! Adversarial robustness matrix: attack corpus × environment sweep.
//!
//! Scenario diversity is the defense's least-developed axis (ROADMAP
//! item 4): a perf or refactor PR can quietly move FAR/FRR and nothing
//! notices. This module is the harness that closes that hole. It defines
//! a first-class taxonomy of attack *families* (each a deterministic
//! scenario generator) and *environments* (EMF conditions from the
//! paper's §VI evaluation), and runs the full
//! `family × environment × execution-policy` matrix through the
//! [`BatchEngine`] — the same admission-controlled path production
//! traffic takes — producing a per-cell FAR/FRR/EER table.
//!
//! The committed table (`results/robustness_matrix.jsonl`) plus the
//! CI smoke slice (`scripts/security_gate.py` over
//! `results/BENCH_robustness.json`) turn the matrix into a security
//! regression gate: any cell's EER drifting beyond tolerance, or any
//! attack family's FAR rising at all, fails the build.
//!
//! Everything here is deterministic under a fixed [`SimRng`] seed —
//! corpus generation twice with the same seed is bit-identical (see
//! `tests/robustness_corpus.rs`).

use crate::batch::{BatchConfig, BatchEngine};
use crate::cascade::ExecutionPolicy;
use crate::pipeline::DefenseSystem;
use crate::scenario::{ScenarioBuilder, SourceKind, UserContext};
use crate::session::SessionData;
use crate::verdict::DefenseVerdict;
use magshield_ml::metrics::equal_error_rate;
use magshield_physics::acoustics::tube::SoundTube;
use magshield_physics::magnetics::evasion::ActiveCompensation;
use magshield_physics::magnetics::interference::EmfEnvironment;
use magshield_simkit::rng::SimRng;
use magshield_simkit::vec3::Vec3;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::{table_iv_catalog, PlaybackDevice};
use magshield_voice::profile::SpeakerProfile;

/// One attack family of the robustness matrix — a deterministic scenario
/// generator covering a distinct corner of the threat model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackFamily {
    /// Stock loudspeaker replay (§III-A Type 1) through a class-diverse
    /// device rotation.
    Replay,
    /// Replay through a Mu-metal-shielded loudspeaker (Fig. 12b).
    ShieldedReplay,
    /// Replay through an earphone feeding a sound tube, parking the
    /// magnet a tube-length away from the phone (§VII).
    TubeReplay,
    /// Voice conversion (morphing, §III-A Type 2) through a loudspeaker.
    VoiceConversion,
    /// Text-to-speech synthesis (§III-A Type 3) through a loudspeaker.
    Synthesis,
    /// Synthesis trained only on SceneGuard-protected recordings —
    /// scene-consistent noise poisons the attacker's parameter
    /// estimation (PAPERS.md; `magshield_voice::sceneguard`).
    ProtectedSynthesis,
    /// Replay with a MagLive-style active compensation rig suppressing
    /// the loudspeaker's magnetic signature
    /// (`magshield_physics::magnetics::evasion`).
    MagneticEvasion,
    /// Live human mimicry — no loudspeaker, no magnet (§III-A2).
    Mimicry,
}

impl AttackFamily {
    /// Every family, in matrix row order.
    pub fn all() -> [AttackFamily; 8] {
        [
            AttackFamily::Replay,
            AttackFamily::ShieldedReplay,
            AttackFamily::TubeReplay,
            AttackFamily::VoiceConversion,
            AttackFamily::Synthesis,
            AttackFamily::ProtectedSynthesis,
            AttackFamily::MagneticEvasion,
            AttackFamily::Mimicry,
        ]
    }

    /// Stable snake_case name used in JSONL rows and the gate baseline.
    pub fn name(self) -> &'static str {
        match self {
            AttackFamily::Replay => "replay",
            AttackFamily::ShieldedReplay => "shielded_replay",
            AttackFamily::TubeReplay => "tube_replay",
            AttackFamily::VoiceConversion => "voice_conversion",
            AttackFamily::Synthesis => "synthesis",
            AttackFamily::ProtectedSynthesis => "protected_synthesis",
            AttackFamily::MagneticEvasion => "magnetic_evasion",
            AttackFamily::Mimicry => "mimicry",
        }
    }

    /// Builds the attack scenario for trial `trial` of this family.
    ///
    /// Deterministic in `(self, user, trial, rng seed)`: the playback
    /// device rotates through a class-diverse catalog subset and the
    /// attacker's own voice is sampled per trial.
    pub fn scenario(self, user: &UserContext, trial: usize, rng: &SimRng) -> ScenarioBuilder {
        let attacker = SpeakerProfile::sample(
            900 + trial as u32,
            &rng.fork_indexed("attacker", trial as u64),
        );
        let device = rotation_device(trial);
        match self {
            AttackFamily::Replay => {
                ScenarioBuilder::machine_attack(user, AttackKind::Replay, device, attacker)
            }
            AttackFamily::ShieldedReplay => {
                ScenarioBuilder::machine_attack(user, AttackKind::Replay, device, attacker)
                    .with_shielding()
            }
            AttackFamily::TubeReplay => {
                let mut s =
                    ScenarioBuilder::machine_attack(user, AttackKind::Replay, device, attacker);
                s.source = SourceKind::DeviceViaTube {
                    device: earphone_device(),
                    tube: SoundTube::new(0.30, 0.006),
                };
                s
            }
            AttackFamily::VoiceConversion => {
                ScenarioBuilder::machine_attack(user, AttackKind::Morphing, device, attacker)
            }
            AttackFamily::Synthesis => {
                ScenarioBuilder::machine_attack(user, AttackKind::Synthesis, device, attacker)
            }
            AttackFamily::ProtectedSynthesis => ScenarioBuilder::machine_attack(
                user,
                AttackKind::ProtectedSynthesis,
                device,
                attacker,
            ),
            AttackFamily::MagneticEvasion => {
                ScenarioBuilder::machine_attack(user, AttackKind::Replay, device, attacker)
                    .with_magnetic_evasion(ActiveCompensation::tuned())
            }
            AttackFamily::Mimicry => ScenarioBuilder::mimicry_attack(user, attacker),
        }
    }
}

/// EMF environments the matrix sweeps — the paper's quiet lab, Sonata
/// car cabin and iMac-adjacent desktop (§VI, Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// Quiet lab / living room.
    Quiet,
    /// Car front seat (Hyundai Sonata class) — hostile EMF floor.
    CarCabin,
    /// Desk next to a big all-in-one computer (iMac 27" class).
    Desktop,
}

impl EnvKind {
    /// Every environment, in matrix column order.
    pub fn all() -> [EnvKind; 3] {
        [EnvKind::Quiet, EnvKind::CarCabin, EnvKind::Desktop]
    }

    /// Stable snake_case name used in JSONL rows and the gate baseline.
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::Quiet => "quiet",
            EnvKind::CarCabin => "car_cabin",
            EnvKind::Desktop => "desktop",
        }
    }

    /// The interference model for this environment.
    pub fn emf(self) -> EmfEnvironment {
        match self {
            EnvKind::Quiet => EmfEnvironment::quiet(),
            EnvKind::CarCabin => EmfEnvironment::in_car(),
            // The screen sits ~35 cm past the sound source, off to the
            // side — close enough to raise the noise floor on approach.
            EnvKind::Desktop => EmfEnvironment::near_computer(Vec3::new(0.25, 0.35, 0.10)),
        }
    }
}

/// Stable name for an execution policy in rows and baselines.
pub fn policy_name(policy: ExecutionPolicy) -> &'static str {
    match policy {
        ExecutionPolicy::FullEvaluation => "full_evaluation",
        ExecutionPolicy::ShortCircuit => "short_circuit",
    }
}

/// Sizing and coverage of one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Families swept (rows).
    pub families: Vec<AttackFamily>,
    /// Environments swept (columns).
    pub environments: Vec<EnvKind>,
    /// Execution policies swept (planes).
    pub policies: Vec<ExecutionPolicy>,
    /// Genuine sessions captured per environment (shared by every family
    /// in that environment).
    pub genuine_per_env: usize,
    /// Attack sessions captured per `family × environment` cell.
    pub attacks_per_cell: usize,
}

impl MatrixSpec {
    /// The full committed matrix (`results/robustness_matrix.jsonl`).
    pub fn full() -> Self {
        Self {
            families: AttackFamily::all().to_vec(),
            environments: EnvKind::all().to_vec(),
            policies: vec![
                ExecutionPolicy::FullEvaluation,
                ExecutionPolicy::ShortCircuit,
            ],
            genuine_per_env: 20,
            attacks_per_cell: 12,
        }
    }

    /// The CI smoke slice: full family/environment/policy coverage,
    /// reduced trial counts — enough sessions for the FAR no-rise gate
    /// to be meaningful, small enough for a shared runner.
    pub fn smoke() -> Self {
        Self {
            genuine_per_env: 8,
            attacks_per_cell: 4,
            ..Self::full()
        }
    }

    /// Total cells this spec produces.
    pub fn cells(&self) -> usize {
        self.families.len() * self.environments.len() * self.policies.len()
    }
}

/// One cell of the robustness matrix.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Attack family name.
    pub family: &'static str,
    /// Environment name.
    pub environment: &'static str,
    /// Execution policy name.
    pub policy: &'static str,
    /// Attack sessions evaluated.
    pub attacks: usize,
    /// Genuine sessions evaluated.
    pub genuine: usize,
    /// False accepts / attacks, percent, at the nominal boundary.
    pub far_pct: f64,
    /// False rejects / genuine, percent, at the nominal boundary.
    pub frr_pct: f64,
    /// Equal error rate, percent, from sweeping the boundary over the
    /// combined scores.
    pub eer_pct: f64,
}

/// FAR/FRR at the nominal decision boundary plus EER from sweeping the
/// boundary multiplier over the combined scores, all in percent.
pub fn rates(genuine: &[DefenseVerdict], attacks: &[DefenseVerdict]) -> (f64, f64, f64) {
    let frr = if genuine.is_empty() {
        0.0
    } else {
        genuine.iter().filter(|v| !v.accepted()).count() as f64 / genuine.len() as f64
    };
    let far = if attacks.is_empty() {
        0.0
    } else {
        attacks.iter().filter(|v| v.accepted()).count() as f64 / attacks.len() as f64
    };
    // EER over "genuineness" scores = negative combined attack score.
    let g: Vec<f64> = genuine.iter().map(|v| -v.combined_score()).collect();
    let a: Vec<f64> = attacks.iter().map(|v| -v.combined_score()).collect();
    let eer = equal_error_rate(&g, &a);
    (far * 100.0, frr * 100.0, eer * 100.0)
}

/// Captures the genuine population for one environment.
pub fn genuine_sessions(
    user: &UserContext,
    env: EnvKind,
    n: usize,
    rng: &SimRng,
) -> Vec<SessionData> {
    let erng = rng.fork(env.name());
    (0..n)
        .map(|i| {
            ScenarioBuilder::genuine(user)
                .in_environment(env.emf())
                .capture(&erng.fork_indexed("genuine", i as u64))
        })
        .collect()
}

/// Captures the attack population for one `family × environment` cell.
pub fn attack_sessions(
    user: &UserContext,
    family: AttackFamily,
    env: EnvKind,
    n: usize,
    rng: &SimRng,
) -> Vec<SessionData> {
    let crng = rng.fork(env.name()).fork(family.name());
    (0..n)
        .map(|i| {
            family
                .scenario(user, i, &crng)
                .in_environment(env.emf())
                .capture(&crng.fork_indexed("capture", i as u64))
        })
        .collect()
}

/// Unwraps batch outcomes into verdicts, panicking on sheds — the matrix
/// runs with no deadline and backpressure admission, so every session
/// must resolve to a verdict.
fn verdicts(outcomes: Vec<crate::batch::BatchOutcome>) -> Vec<DefenseVerdict> {
    outcomes
        .into_iter()
        .map(|o| match o {
            crate::batch::BatchOutcome::Verdict(v) => v,
            crate::batch::BatchOutcome::Shed(r) => {
                panic!("robustness matrix session shed ({r}): engine misconfigured")
            }
        })
        .collect()
}

/// Runs the full matrix through batch engines (one per policy and
/// environment) and returns one [`CellResult`] per
/// `family × environment × policy`, in spec order.
///
/// Captures are shared across policies: each environment's corpus is
/// generated once, so a policy comparison sees identical sessions.
pub fn run_matrix(
    system: &DefenseSystem,
    user: &UserContext,
    spec: &MatrixSpec,
    rng: &SimRng,
) -> Vec<CellResult> {
    let mut cells = Vec::with_capacity(spec.cells());
    for &env in &spec.environments {
        let genuine = genuine_sessions(user, env, spec.genuine_per_env, rng);
        let attacks: Vec<(AttackFamily, Vec<SessionData>)> = spec
            .families
            .iter()
            .map(|&f| (f, attack_sessions(user, f, env, spec.attacks_per_cell, rng)))
            .collect();
        for &policy in &spec.policies {
            let engine = BatchEngine::spawn(
                system.with_fresh_obs(),
                BatchConfig {
                    policy,
                    ..BatchConfig::default()
                },
            );
            let genuine_verdicts = verdicts(engine.verify_batch(genuine.clone()));
            for (family, sessions) in &attacks {
                let attack_verdicts = verdicts(engine.verify_batch(sessions.clone()));
                let (far, frr, eer) = rates(&genuine_verdicts, &attack_verdicts);
                cells.push(CellResult {
                    family: family.name(),
                    environment: env.name(),
                    policy: policy_name(policy),
                    attacks: attack_verdicts.len(),
                    genuine: genuine_verdicts.len(),
                    far_pct: far,
                    frr_pct: frr,
                    eer_pct: eer,
                });
            }
            engine.shutdown();
        }
    }
    cells
}

/// Aggregates per-family FAR (percent) over every cell of that family —
/// the number the security gate refuses to let rise.
pub fn family_far(cells: &[CellResult]) -> Vec<(&'static str, f64)> {
    let mut out: Vec<(&'static str, f64, usize)> = Vec::new();
    for c in cells {
        let accepts = c.far_pct / 100.0 * c.attacks as f64;
        match out.iter_mut().find(|(name, ..)| *name == c.family) {
            Some((_, acc, n)) => {
                *acc += accepts;
                *n += c.attacks;
            }
            None => out.push((c.family, accepts, c.attacks)),
        }
    }
    out.into_iter()
        .map(|(name, accepts, n)| {
            (
                name,
                if n == 0 {
                    0.0
                } else {
                    accepts / n as f64 * 100.0
                },
            )
        })
        .collect()
}

/// The class-diverse loudspeaker rotation machine-based families draw
/// from, indexed by trial (same subset as `exp_fig12`).
fn rotation_device(trial: usize) -> PlaybackDevice {
    const PICKS: [usize; 6] = [0, 3, 7, 12, 18, 23];
    let catalog = table_iv_catalog();
    catalog[PICKS[trial % PICKS.len()]].clone()
}

/// The earphone driving the sound-tube family.
fn earphone_device() -> PlaybackDevice {
    table_iv_catalog()
        .into_iter()
        .find(|d| d.name.contains("EarPods"))
        .expect("catalog has EarPods")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = AttackFamily::all().iter().map(|f| f.name()).collect();
        names.extend(EnvKind::all().iter().map(|e| e.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "names must be unique");
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "snake_case only: {n}"
            );
        }
    }

    #[test]
    fn full_spec_meets_the_acceptance_floor() {
        let spec = MatrixSpec::full();
        assert!(spec.families.len() >= 5);
        assert!(spec.environments.len() >= 3);
        assert_eq!(spec.policies.len(), 2);
        assert_eq!(spec.cells(), spec.families.len() * 3 * 2);
    }

    #[test]
    fn smoke_spec_keeps_full_coverage() {
        let smoke = MatrixSpec::smoke();
        let full = MatrixSpec::full();
        assert_eq!(smoke.families, full.families);
        assert_eq!(smoke.environments, full.environments);
        assert_eq!(smoke.policies, full.policies);
        assert!(smoke.attacks_per_cell < full.attacks_per_cell);
    }

    #[test]
    fn family_far_aggregates_weighted_by_session_count() {
        let cell = |family, far_pct, attacks| CellResult {
            family,
            environment: "quiet",
            policy: "short_circuit",
            attacks,
            genuine: 4,
            far_pct,
            frr_pct: 0.0,
            eer_pct: 0.0,
        };
        let cells = vec![
            cell("replay", 50.0, 2),
            cell("replay", 0.0, 6),
            cell("mimicry", 25.0, 4),
        ];
        let fars = family_far(&cells);
        let replay = fars.iter().find(|(n, _)| *n == "replay").unwrap().1;
        let mimicry = fars.iter().find(|(n, _)| *n == "mimicry").unwrap().1;
        assert!(
            (replay - 12.5).abs() < 1e-9,
            "1 accept / 8 sessions: {replay}"
        );
        assert!((mimicry - 25.0).abs() < 1e-9);
    }

    #[test]
    fn every_family_builds_a_capturable_scenario() {
        let rng = SimRng::from_seed(11);
        let user = UserContext::sample(&rng.fork("user"));
        for family in AttackFamily::all() {
            let s = family
                .scenario(&user, 0, &rng.fork(family.name()))
                .in_environment(EnvKind::Desktop.emf())
                .capture(&rng.fork_indexed("cap", family as u64));
            assert!(s.validate().is_ok(), "{family:?} session must validate");
        }
    }
}

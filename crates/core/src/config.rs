//! Defense thresholds and tuning.

use serde::{Deserialize, Serialize};

/// All tunable thresholds of the four verification components.
///
/// Each component produces a normalized *attack score* where 1.0 marks its
/// decision boundary; the cascade accepts when every score is below the
/// boundary. Sweeping a global multiplier over the boundaries generates
/// the FAR/FRR trade-off curves of Figs. 12 and 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Sound-source distance threshold `Dt` (m). Paper: 6 cm.
    pub distance_threshold_m: f64,
    /// Multiplicative slack on `Dt` absorbing the trajectory estimator's
    /// ~2 cm error (the gate rejects when the *estimate* exceeds
    /// `Dt × distance_tolerance`).
    pub distance_tolerance: f64,
    /// Minimum approach displacement (m) the pilot phase must confirm
    /// (the user really moved the phone in).
    pub min_approach_m: f64,
    /// Pilot amplitude-ranging calibration `K` (m·amplitude): the phone
    /// emits the pilot at a factory-known level, so the received sweep
    /// amplitude maps to absolute distance as `d ≈ K / amp`. Calibrated
    /// per device model at manufacture.
    pub pilot_ranging_gain_m: f64,
    /// Maximum pilot distance-ripple during the sweep (m) before the
    /// session is flagged as an off-center (attack-geometry) source.
    pub max_sweep_ripple_m: f64,
    /// Magnetometer magnitude-deviation threshold `Mt` (µT above the
    /// session baseline).
    pub mag_deviation_ut: f64,
    /// Magnetometer changing-rate threshold `βt` (µT/s on the smoothed
    /// magnitude).
    pub mag_rate_ut_per_s: f64,
    /// ASV acceptance threshold in Z-norm units (standard deviations
    /// above the model's impostor-cohort score distribution).
    pub asv_threshold: f64,
    /// Scale for mapping ASV score margins into normalized attack scores.
    pub asv_scale: f64,
    /// Number of angle bins in the sound-field feature vector.
    pub sound_field_bins: usize,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            distance_threshold_m: 0.06,
            distance_tolerance: 1.5,
            min_approach_m: 0.05,
            pilot_ranging_gain_m: 0.0068,
            max_sweep_ripple_m: 0.012,
            mag_deviation_ut: 2.5,
            mag_rate_ut_per_s: 25.0,
            asv_threshold: 1.5,
            asv_scale: 1.5,
            sound_field_bins: 12,
        }
    }
}

impl DefenseConfig {
    /// Returns a copy with the magnetometer thresholds scaled by `k` —
    /// the knob the adaptive-thresholding extension (§VII) turns.
    pub fn with_mag_scale(mut self, k: f64) -> Self {
        self.mag_deviation_ut *= k;
        self.mag_rate_ut_per_s *= k;
        self
    }

    /// Sanity-checks threshold values.
    pub fn validate(&self) -> Result<(), String> {
        if self.distance_threshold_m <= 0.0 {
            return Err("distance threshold must be positive".into());
        }
        if self.mag_deviation_ut <= 0.0 || self.mag_rate_ut_per_s <= 0.0 {
            return Err("magnetometer thresholds must be positive".into());
        }
        if self.sound_field_bins < 4 {
            return Err("need at least 4 sound-field bins".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DefenseConfig::default();
        assert!((c.distance_threshold_m - 0.06).abs() < 1e-12, "Dt = 6 cm");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn mag_scale_scales_both_thresholds() {
        let c = DefenseConfig::default().with_mag_scale(2.0);
        assert!((c.mag_deviation_ut - 5.0).abs() < 1e-12);
        assert!((c.mag_rate_ut_per_s - 50.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = DefenseConfig {
            distance_threshold_m: 0.0,
            ..DefenseConfig::default()
        };
        assert!(c.validate().is_err());
        let c2 = DefenseConfig {
            sound_field_bins: 1,
            ..DefenseConfig::default()
        };
        assert!(c2.validate().is_err());
    }
}

//! Defense thresholds and tuning.

use crate::verdict::Component;
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed rejection from [`DefenseConfig::validate`] and
/// [`ModelBundle::validate`](crate::artifact::ModelBundle::validate) —
/// every way a threshold set or a trained bundle can be unusable for
/// serving.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `distance_threshold_m` (`Dt`) must be strictly positive.
    NonPositiveDistanceThreshold {
        /// The offending threshold (m).
        value: f64,
    },
    /// `mag_deviation_ut` (`Mt`) and `mag_rate_ut_per_s` (`βt`) must both
    /// be strictly positive.
    NonPositiveMagThresholds {
        /// The configured magnitude-deviation threshold (µT).
        deviation_ut: f64,
        /// The configured changing-rate threshold (µT/s).
        rate_ut_per_s: f64,
    },
    /// `sound_field_bins` is below the minimum of 4 angle bins.
    TooFewSoundFieldBins {
        /// The configured bin count.
        bins: usize,
    },
    /// A per-stage decision-boundary multiplier is non-finite or
    /// non-positive.
    BadStageBoundary {
        /// The stage with the offending boundary.
        stage: Component,
        /// The offending boundary value.
        value: f64,
    },
    /// A model bundle enrolls the same speaker id more than once.
    DuplicateSpeaker {
        /// The repeated speaker id.
        speaker_id: u32,
    },
    /// A bundle's sound-field model was trained with a different angle-bin
    /// count than its config requests at verification time, so the
    /// feature vectors would disagree with the classifier.
    MismatchedSoundFieldBins {
        /// Bins requested by the bundle's [`DefenseConfig`].
        config: usize,
        /// Bins the bundled sound-field model was trained with.
        model: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveDistanceThreshold { value } => {
                write!(f, "distance threshold must be positive (got {value})")
            }
            Self::NonPositiveMagThresholds {
                deviation_ut,
                rate_ut_per_s,
            } => write!(
                f,
                "magnetometer thresholds must be positive (got Mt = {deviation_ut} µT, \
                 βt = {rate_ut_per_s} µT/s)"
            ),
            Self::TooFewSoundFieldBins { bins } => {
                write!(f, "need at least 4 sound-field bins (got {bins})")
            }
            Self::BadStageBoundary { stage, value } => write!(
                f,
                "stage boundary for {} must be positive (got {value})",
                stage.name()
            ),
            Self::DuplicateSpeaker { speaker_id } => {
                write!(f, "bundle enrolls speaker {speaker_id} more than once")
            }
            Self::MismatchedSoundFieldBins { config, model } => write!(
                f,
                "config asks for {config} sound-field bins but the bundled model \
                 was trained with {model}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Per-stage decision-boundary multipliers, indexed by
/// [`Component::index`].
///
/// Every stage emits a raw attack score normalized so 1.0 is its factory
/// decision boundary; the cascade executor divides each raw score by that
/// stage's boundary before comparing against 1.0. A boundary of 2.0 for
/// [`Component::Loudspeaker`] therefore doubles the magnetometer
/// tolerance (`Mt`, `βt`) without touching the physical threshold fields
/// — this is the per-stage knob the §VII adaptive-thresholding extension
/// turns (see [`crate::adaptive::adapted_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageBoundaries([f64; Component::COUNT]);

impl Default for StageBoundaries {
    fn default() -> Self {
        Self([1.0; Component::COUNT])
    }
}

impl StageBoundaries {
    /// The same boundary for every stage.
    pub fn uniform(boundary: f64) -> Self {
        Self([boundary; Component::COUNT])
    }

    /// The boundary multiplier of one stage.
    pub fn get(&self, c: Component) -> f64 {
        self.0[c.index()]
    }

    /// Sets one stage's boundary multiplier.
    pub fn set(&mut self, c: Component, boundary: f64) {
        self.0[c.index()] = boundary;
    }

    /// Returns a copy with one stage's boundary scaled by `k`.
    #[must_use]
    pub fn scaled(mut self, c: Component, k: f64) -> Self {
        self.0[c.index()] *= k;
        self
    }
}

/// All tunable thresholds of the verification components.
///
/// Each component produces a normalized *attack score* where 1.0 marks its
/// decision boundary; the cascade accepts when every score is below the
/// boundary. Sweeping a global multiplier over the boundaries generates
/// the FAR/FRR trade-off curves of Figs. 12 and 14, and the per-stage
/// [`StageBoundaries`] let adaptive thresholding widen a single stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Sound-source distance threshold `Dt` (m). Paper: 6 cm.
    pub distance_threshold_m: f64,
    /// Multiplicative slack on `Dt` absorbing the trajectory estimator's
    /// ~2 cm error (the gate rejects when the *estimate* exceeds
    /// `Dt × distance_tolerance`).
    pub distance_tolerance: f64,
    /// Minimum approach displacement (m) the pilot phase must confirm
    /// (the user really moved the phone in).
    pub min_approach_m: f64,
    /// Pilot amplitude-ranging calibration `K` (m·amplitude): the phone
    /// emits the pilot at a factory-known level, so the received sweep
    /// amplitude maps to absolute distance as `d ≈ K / amp`. Calibrated
    /// per device model at manufacture.
    pub pilot_ranging_gain_m: f64,
    /// Maximum pilot distance-ripple during the sweep (m) before the
    /// session is flagged as an off-center (attack-geometry) source.
    pub max_sweep_ripple_m: f64,
    /// Magnetometer magnitude-deviation threshold `Mt` (µT above the
    /// session baseline).
    pub mag_deviation_ut: f64,
    /// Magnetometer changing-rate threshold `βt` (µT/s on the smoothed
    /// magnitude).
    pub mag_rate_ut_per_s: f64,
    /// ASV acceptance threshold in Z-norm units (standard deviations
    /// above the model's impostor-cohort score distribution).
    pub asv_threshold: f64,
    /// Scale for mapping ASV score margins into normalized attack scores.
    pub asv_scale: f64,
    /// Top-C Gaussian pruning for ASV scoring: per frame, the speaker
    /// model is evaluated only on the C UBM components with the highest
    /// weighted log-density (the UBM term stays exact). `0` disables
    /// pruning. The pruned score is a lower bound on the exact score, so
    /// pruning can only make the accept decision stricter.
    #[serde(default = "default_asv_top_c")]
    pub asv_top_c: usize,
    /// Score the ASV stage on the i16-mean quantized GMM pair
    /// (`QuantizedGmm`) instead of the exact `PreparedGmm` pair. The
    /// quantized models are derived deterministically from the exact
    /// ones at load time (no extra artifact); the LLR drift is bounded
    /// analytically (`magshield_ml::gmm::llr_drift_bound`) and the
    /// decision identity is property-tested, so flipping this on trades
    /// a few ULPs of score for a ~2× smaller hot working set.
    #[serde(default)]
    pub asv_quantized: bool,
    /// Number of angle bins in the sound-field feature vector.
    pub sound_field_bins: usize,
    /// Per-stage decision-boundary multipliers (1.0 = factory boundary).
    pub stage_boundaries: StageBoundaries,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            distance_threshold_m: 0.06,
            distance_tolerance: 1.5,
            min_approach_m: 0.05,
            pilot_ranging_gain_m: 0.0068,
            max_sweep_ripple_m: 0.012,
            mag_deviation_ut: 2.5,
            mag_rate_ut_per_s: 25.0,
            asv_threshold: 1.5,
            asv_scale: 1.5,
            asv_top_c: default_asv_top_c(),
            asv_quantized: false,
            sound_field_bins: 12,
            stage_boundaries: StageBoundaries::default(),
        }
    }
}

/// Default top-C: Reynolds-style GMM–UBM systems concentrate nearly all
/// of a frame's likelihood in a handful of components; 8 is conservative
/// for the 16–64-component mixtures used here.
fn default_asv_top_c() -> usize {
    8
}

impl DefenseConfig {
    /// Returns a copy with one stage's decision boundary set to
    /// `boundary` — the per-stage knob the adaptive-thresholding
    /// extension (§VII) turns. A boundary of `k` is equivalent to
    /// scaling that stage's physical thresholds by `k` (e.g. `Mt` and
    /// `βt` for [`Component::Loudspeaker`]).
    #[must_use]
    pub fn with_stage_boundary(mut self, c: Component, boundary: f64) -> Self {
        self.stage_boundaries.set(c, boundary);
        self
    }

    /// Sanity-checks threshold values.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.distance_threshold_m <= 0.0 {
            return Err(ConfigError::NonPositiveDistanceThreshold {
                value: self.distance_threshold_m,
            });
        }
        if self.mag_deviation_ut <= 0.0 || self.mag_rate_ut_per_s <= 0.0 {
            return Err(ConfigError::NonPositiveMagThresholds {
                deviation_ut: self.mag_deviation_ut,
                rate_ut_per_s: self.mag_rate_ut_per_s,
            });
        }
        if self.sound_field_bins < 4 {
            return Err(ConfigError::TooFewSoundFieldBins {
                bins: self.sound_field_bins,
            });
        }
        for c in Component::all() {
            let b = self.stage_boundaries.get(c);
            if !b.is_finite() || b <= 0.0 {
                return Err(ConfigError::BadStageBoundary { stage: c, value: b });
            }
        }
        Ok(())
    }
}

/// Version 2 appends the `asv_quantized` flag byte; version-1 artifacts
/// (the committed golden bundle among them) still decode, defaulting the
/// flag to `false` — exactly the serde story for the same field.
impl BinaryCodec for DefenseConfig {
    const MAGIC: u32 = codec::magic(b"MCFG");
    const VERSION: u8 = 2;
    const MIN_VERSION: u8 = 1;
    const NAME: &'static str = "DefenseConfig";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_f64(self.distance_threshold_m);
        w.put_f64(self.distance_tolerance);
        w.put_f64(self.min_approach_m);
        w.put_f64(self.pilot_ranging_gain_m);
        w.put_f64(self.max_sweep_ripple_m);
        w.put_f64(self.mag_deviation_ut);
        w.put_f64(self.mag_rate_ut_per_s);
        w.put_f64(self.asv_threshold);
        w.put_f64(self.asv_scale);
        w.put_len(self.asv_top_c);
        w.put_len(self.sound_field_bins);
        for c in Component::all() {
            w.put_f64(self.stage_boundaries.get(c));
        }
        w.put_u8(self.asv_quantized as u8);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Self::decode_versioned_payload(Self::VERSION, r)
    }

    fn decode_versioned_payload(version: u8, r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let distance_threshold_m = r.get_f64()?;
        let distance_tolerance = r.get_f64()?;
        let min_approach_m = r.get_f64()?;
        let pilot_ranging_gain_m = r.get_f64()?;
        let max_sweep_ripple_m = r.get_f64()?;
        let mag_deviation_ut = r.get_f64()?;
        let mag_rate_ut_per_s = r.get_f64()?;
        let asv_threshold = r.get_f64()?;
        let asv_scale = r.get_f64()?;
        let asv_top_c = r.get_len()?;
        let sound_field_bins = r.get_len()?;
        let mut stage_boundaries = StageBoundaries::default();
        for c in Component::all() {
            stage_boundaries.set(c, r.get_f64()?);
        }
        let asv_quantized = if version >= 2 {
            match r.get_u8()? {
                0 => false,
                1 => true,
                found => {
                    return Err(CodecError::BadTag {
                        what: "asv_quantized flag",
                        found,
                    })
                }
            }
        } else {
            false
        };
        let cfg = Self {
            distance_threshold_m,
            distance_tolerance,
            min_approach_m,
            pilot_ranging_gain_m,
            max_sweep_ripple_m,
            mag_deviation_ut,
            mag_rate_ut_per_s,
            asv_threshold,
            asv_scale,
            asv_top_c,
            asv_quantized,
            sound_field_bins,
            stage_boundaries,
        };
        let scalars = [
            cfg.distance_threshold_m,
            cfg.distance_tolerance,
            cfg.min_approach_m,
            cfg.pilot_ranging_gain_m,
            cfg.max_sweep_ripple_m,
            cfg.mag_deviation_ut,
            cfg.mag_rate_ut_per_s,
            cfg.asv_threshold,
            cfg.asv_scale,
        ];
        if scalars.iter().any(|v| !v.is_finite()) {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "all thresholds must be finite".to_string(),
            });
        }
        cfg.validate().map_err(|e| CodecError::Invalid {
            artifact: Self::NAME,
            reason: e.to_string(),
        })?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DefenseConfig::default();
        assert!((c.distance_threshold_m - 0.06).abs() < 1e-12, "Dt = 6 cm");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn stage_boundaries_default_to_factory() {
        let c = DefenseConfig::default();
        for comp in Component::all() {
            assert_eq!(c.stage_boundaries.get(comp), 1.0);
        }
    }

    #[test]
    fn with_stage_boundary_touches_only_that_stage() {
        let c = DefenseConfig::default().with_stage_boundary(Component::Loudspeaker, 2.0);
        assert!((c.stage_boundaries.get(Component::Loudspeaker) - 2.0).abs() < 1e-12);
        for comp in Component::all() {
            if comp != Component::Loudspeaker {
                assert_eq!(c.stage_boundaries.get(comp), 1.0);
            }
        }
        // The physical thresholds are untouched — the boundary is the knob.
        assert_eq!(
            c.mag_deviation_ut,
            DefenseConfig::default().mag_deviation_ut
        );
    }

    #[test]
    fn scaled_boundaries_compose() {
        let b = StageBoundaries::uniform(1.0)
            .scaled(Component::Sld, 3.0)
            .scaled(Component::Sld, 0.5);
        assert!((b.get(Component::Sld) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn asv_top_c_defaults_to_conservative_pruning() {
        let c = DefenseConfig::default();
        assert_eq!(c.asv_top_c, 8);
        assert!(c.validate().is_ok());
        // Exact scoring stays expressible.
        let exact = DefenseConfig {
            asv_top_c: 0,
            ..DefenseConfig::default()
        };
        assert!(exact.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = DefenseConfig {
            distance_threshold_m: 0.0,
            ..DefenseConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveDistanceThreshold { value: 0.0 })
        );
        let c2 = DefenseConfig {
            sound_field_bins: 1,
            ..DefenseConfig::default()
        };
        assert_eq!(
            c2.validate(),
            Err(ConfigError::TooFewSoundFieldBins { bins: 1 })
        );
        let c3 = DefenseConfig::default().with_stage_boundary(Component::Distance, 0.0);
        assert_eq!(
            c3.validate(),
            Err(ConfigError::BadStageBoundary {
                stage: Component::Distance,
                value: 0.0
            })
        );
        let c4 = DefenseConfig::default().with_stage_boundary(Component::Distance, f64::NAN);
        assert!(matches!(
            c4.validate(),
            Err(ConfigError::BadStageBoundary {
                stage: Component::Distance,
                ..
            })
        ));
        let c5 = DefenseConfig {
            mag_deviation_ut: -1.0,
            ..DefenseConfig::default()
        };
        assert!(matches!(
            c5.validate(),
            Err(ConfigError::NonPositiveMagThresholds { .. })
        ));
    }

    #[test]
    fn config_errors_display_the_failed_invariant() {
        let err = DefenseConfig {
            distance_threshold_m: -0.5,
            ..DefenseConfig::default()
        }
        .validate()
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("distance threshold"), "{msg}");
        assert!(msg.contains("-0.5"), "{msg}");
        // It is a real std error.
        let _: &dyn std::error::Error = &err;
    }

    mod codec_round_trip {
        use super::*;
        use magshield_ml::codec::assert_hostile_input_fails;

        #[test]
        fn default_config_round_trips_exactly() {
            let cfg = DefenseConfig::default();
            assert_eq!(DefenseConfig::from_bytes(&cfg.to_bytes()).unwrap(), cfg);
        }

        #[test]
        fn tuned_config_round_trips_exactly() {
            let cfg = DefenseConfig {
                distance_threshold_m: 0.08,
                asv_top_c: 0,
                sound_field_bins: 24,
                ..DefenseConfig::default()
            }
            .with_stage_boundary(Component::Loudspeaker, 2.5)
            .with_stage_boundary(Component::Sld, 0.75);
            assert_eq!(DefenseConfig::from_bytes(&cfg.to_bytes()).unwrap(), cfg);
        }

        #[test]
        fn quantized_flag_round_trips() {
            let cfg = DefenseConfig {
                asv_quantized: true,
                ..DefenseConfig::default()
            };
            assert_eq!(DefenseConfig::from_bytes(&cfg.to_bytes()).unwrap(), cfg);
        }

        #[test]
        fn version_1_artifacts_still_decode() {
            // A v1 frame is the v2 frame with the version byte set to 1
            // and the trailing `asv_quantized` payload byte dropped.
            let cfg = DefenseConfig::default();
            let mut payload = ByteWriter::new();
            cfg.encode_payload(&mut payload);
            let mut payload = payload.into_bytes();
            assert_eq!(payload.pop(), Some(0));
            let mut w = ByteWriter::new();
            w.put_u32(DefenseConfig::MAGIC);
            w.put_u8(1);
            w.put_len(payload.len());
            let mut frame = w.into_bytes();
            frame.extend_from_slice(&payload);
            let checksum = codec::fnv1a_64(&frame).to_le_bytes();
            frame.extend_from_slice(&checksum);
            let back = DefenseConfig::from_bytes(&frame).unwrap();
            assert_eq!(back, cfg);
            assert!(!back.asv_quantized);
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            assert_hostile_input_fails::<DefenseConfig>(&DefenseConfig::default().to_bytes());
        }

        #[test]
        fn invalid_thresholds_are_rejected_on_decode() {
            let bad = DefenseConfig {
                sound_field_bins: 1,
                ..DefenseConfig::default()
            };
            assert!(matches!(
                DefenseConfig::from_bytes(&bad.to_bytes()),
                Err(CodecError::Invalid { .. })
            ));
            let nan = DefenseConfig {
                distance_tolerance: f64::NAN,
                ..DefenseConfig::default()
            };
            assert!(matches!(
                DefenseConfig::from_bytes(&nan.to_bytes()),
                Err(CodecError::Invalid { .. })
            ));
        }
    }
}

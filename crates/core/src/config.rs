//! Defense thresholds and tuning.

use crate::verdict::Component;
use serde::{Deserialize, Serialize};

/// Per-stage decision-boundary multipliers, indexed by
/// [`Component::index`].
///
/// Every stage emits a raw attack score normalized so 1.0 is its factory
/// decision boundary; the cascade executor divides each raw score by that
/// stage's boundary before comparing against 1.0. A boundary of 2.0 for
/// [`Component::Loudspeaker`] therefore doubles the magnetometer
/// tolerance (`Mt`, `βt`) without touching the physical threshold fields
/// — this is the per-stage knob the §VII adaptive-thresholding extension
/// turns (see [`crate::adaptive::adapted_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageBoundaries([f64; Component::COUNT]);

impl Default for StageBoundaries {
    fn default() -> Self {
        Self([1.0; Component::COUNT])
    }
}

impl StageBoundaries {
    /// The same boundary for every stage.
    pub fn uniform(boundary: f64) -> Self {
        Self([boundary; Component::COUNT])
    }

    /// The boundary multiplier of one stage.
    pub fn get(&self, c: Component) -> f64 {
        self.0[c.index()]
    }

    /// Sets one stage's boundary multiplier.
    pub fn set(&mut self, c: Component, boundary: f64) {
        self.0[c.index()] = boundary;
    }

    /// Returns a copy with one stage's boundary scaled by `k`.
    #[must_use]
    pub fn scaled(mut self, c: Component, k: f64) -> Self {
        self.0[c.index()] *= k;
        self
    }
}

/// All tunable thresholds of the verification components.
///
/// Each component produces a normalized *attack score* where 1.0 marks its
/// decision boundary; the cascade accepts when every score is below the
/// boundary. Sweeping a global multiplier over the boundaries generates
/// the FAR/FRR trade-off curves of Figs. 12 and 14, and the per-stage
/// [`StageBoundaries`] let adaptive thresholding widen a single stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Sound-source distance threshold `Dt` (m). Paper: 6 cm.
    pub distance_threshold_m: f64,
    /// Multiplicative slack on `Dt` absorbing the trajectory estimator's
    /// ~2 cm error (the gate rejects when the *estimate* exceeds
    /// `Dt × distance_tolerance`).
    pub distance_tolerance: f64,
    /// Minimum approach displacement (m) the pilot phase must confirm
    /// (the user really moved the phone in).
    pub min_approach_m: f64,
    /// Pilot amplitude-ranging calibration `K` (m·amplitude): the phone
    /// emits the pilot at a factory-known level, so the received sweep
    /// amplitude maps to absolute distance as `d ≈ K / amp`. Calibrated
    /// per device model at manufacture.
    pub pilot_ranging_gain_m: f64,
    /// Maximum pilot distance-ripple during the sweep (m) before the
    /// session is flagged as an off-center (attack-geometry) source.
    pub max_sweep_ripple_m: f64,
    /// Magnetometer magnitude-deviation threshold `Mt` (µT above the
    /// session baseline).
    pub mag_deviation_ut: f64,
    /// Magnetometer changing-rate threshold `βt` (µT/s on the smoothed
    /// magnitude).
    pub mag_rate_ut_per_s: f64,
    /// ASV acceptance threshold in Z-norm units (standard deviations
    /// above the model's impostor-cohort score distribution).
    pub asv_threshold: f64,
    /// Scale for mapping ASV score margins into normalized attack scores.
    pub asv_scale: f64,
    /// Top-C Gaussian pruning for ASV scoring: per frame, the speaker
    /// model is evaluated only on the C UBM components with the highest
    /// weighted log-density (the UBM term stays exact). `0` disables
    /// pruning. The pruned score is a lower bound on the exact score, so
    /// pruning can only make the accept decision stricter.
    #[serde(default = "default_asv_top_c")]
    pub asv_top_c: usize,
    /// Number of angle bins in the sound-field feature vector.
    pub sound_field_bins: usize,
    /// Per-stage decision-boundary multipliers (1.0 = factory boundary).
    pub stage_boundaries: StageBoundaries,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            distance_threshold_m: 0.06,
            distance_tolerance: 1.5,
            min_approach_m: 0.05,
            pilot_ranging_gain_m: 0.0068,
            max_sweep_ripple_m: 0.012,
            mag_deviation_ut: 2.5,
            mag_rate_ut_per_s: 25.0,
            asv_threshold: 1.5,
            asv_scale: 1.5,
            asv_top_c: default_asv_top_c(),
            sound_field_bins: 12,
            stage_boundaries: StageBoundaries::default(),
        }
    }
}

/// Default top-C: Reynolds-style GMM–UBM systems concentrate nearly all
/// of a frame's likelihood in a handful of components; 8 is conservative
/// for the 16–64-component mixtures used here.
fn default_asv_top_c() -> usize {
    8
}

impl DefenseConfig {
    /// Returns a copy with one stage's decision boundary set to
    /// `boundary` — the per-stage knob the adaptive-thresholding
    /// extension (§VII) turns. A boundary of `k` is equivalent to
    /// scaling that stage's physical thresholds by `k` (e.g. `Mt` and
    /// `βt` for [`Component::Loudspeaker`]).
    #[must_use]
    pub fn with_stage_boundary(mut self, c: Component, boundary: f64) -> Self {
        self.stage_boundaries.set(c, boundary);
        self
    }

    /// Sanity-checks threshold values.
    pub fn validate(&self) -> Result<(), String> {
        if self.distance_threshold_m <= 0.0 {
            return Err("distance threshold must be positive".into());
        }
        if self.mag_deviation_ut <= 0.0 || self.mag_rate_ut_per_s <= 0.0 {
            return Err("magnetometer thresholds must be positive".into());
        }
        if self.sound_field_bins < 4 {
            return Err("need at least 4 sound-field bins".into());
        }
        for c in Component::all() {
            let b = self.stage_boundaries.get(c);
            if !b.is_finite() || b <= 0.0 {
                return Err(format!("stage boundary for {} must be positive", c.name()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DefenseConfig::default();
        assert!((c.distance_threshold_m - 0.06).abs() < 1e-12, "Dt = 6 cm");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn stage_boundaries_default_to_factory() {
        let c = DefenseConfig::default();
        for comp in Component::all() {
            assert_eq!(c.stage_boundaries.get(comp), 1.0);
        }
    }

    #[test]
    fn with_stage_boundary_touches_only_that_stage() {
        let c = DefenseConfig::default().with_stage_boundary(Component::Loudspeaker, 2.0);
        assert!((c.stage_boundaries.get(Component::Loudspeaker) - 2.0).abs() < 1e-12);
        for comp in Component::all() {
            if comp != Component::Loudspeaker {
                assert_eq!(c.stage_boundaries.get(comp), 1.0);
            }
        }
        // The physical thresholds are untouched — the boundary is the knob.
        assert_eq!(
            c.mag_deviation_ut,
            DefenseConfig::default().mag_deviation_ut
        );
    }

    #[test]
    fn scaled_boundaries_compose() {
        let b = StageBoundaries::uniform(1.0)
            .scaled(Component::Sld, 3.0)
            .scaled(Component::Sld, 0.5);
        assert!((b.get(Component::Sld) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn asv_top_c_defaults_to_conservative_pruning() {
        let c = DefenseConfig::default();
        assert_eq!(c.asv_top_c, 8);
        assert!(c.validate().is_ok());
        // Exact scoring stays expressible.
        let exact = DefenseConfig {
            asv_top_c: 0,
            ..DefenseConfig::default()
        };
        assert!(exact.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = DefenseConfig {
            distance_threshold_m: 0.0,
            ..DefenseConfig::default()
        };
        assert!(c.validate().is_err());
        let c2 = DefenseConfig {
            sound_field_bins: 1,
            ..DefenseConfig::default()
        };
        assert!(c2.validate().is_err());
        let c3 = DefenseConfig::default().with_stage_boundary(Component::Distance, 0.0);
        assert!(c3.validate().is_err());
        let c4 = DefenseConfig::default().with_stage_boundary(Component::Distance, f64::NAN);
        assert!(c4.validate().is_err());
    }
}

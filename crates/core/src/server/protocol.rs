//! Binary wire protocol between client and server.
//!
//! Frames are `[magic u16][version u8][type u8][payload …]`; all integers
//! little-endian, floats IEEE-754 bits. The format is hand-rolled on the
//! `bytes` crate so the session payload (hundreds of kilobytes of sensor
//! samples) serializes without intermediate allocations or text overhead.

use crate::batch::{BatchOutcome, ShedReason};
use crate::cascade::ExecutionPolicy;
use crate::server::ServerStatsSnapshot;
use crate::session::SessionData;
use crate::stream::{SessionChunk, StreamConfig, StreamOpenInfo};
use crate::verdict::{
    Component, ComponentResult, Decision, DefenseVerdict, SkippedStage, StageOutcome,
};
use bytes::{Buf, BufMut, BytesMut};
use magshield_obs::metrics::{Exemplar, HistogramSnapshot, MetricsSnapshot};
use magshield_obs::slo::{BurnRate, HealthReport, HealthState, SloStatus};
use magshield_simkit::vec3::Vec3;

/// Frame magic.
const MAGIC: u16 = 0x4D53; // "MS"
/// Protocol version — the single source of truth for what this build
/// speaks (the frame header, every encoder and the decoder all read it
/// from here). v2 added the `Sld` component tag, per-stage
/// outcomes (ran vs short-circuited) and the invalid-session reason to
/// verify responses. v3 added batch verification
/// ([`Message::BatchRequest`] / [`Message::BatchResponse`]) with
/// per-session shed outcomes. v4 added the model-generation stamp to
/// every verdict plus online enrollment ([`Message::Enroll`]) and
/// whole-bundle hot-swap ([`Message::SwapBundle`]). v5 added the
/// telemetry plane: full labeled-metrics scrape
/// ([`Message::MetricsRequest`] / [`Message::MetricsResponse`]), SLO
/// health ([`Message::HealthRequest`] / [`Message::HealthResponse`]),
/// and exemplars inside every histogram snapshot — superseding the
/// scalar `StatsRequest` view, which remains served for old tooling.
/// v6 added streaming continuous verification: chunk-fed sessions over
/// [`Message::StreamOpen`] / [`Message::StreamChunk`] /
/// [`Message::StreamVerdict`] / [`Message::StreamClose`], with
/// mid-stream early-reject verdicts.
pub const PROTOCOL_VERSION: u8 = 6;

/// Message type tags.
const T_VERIFY_REQUEST: u8 = 1;
const T_VERIFY_RESPONSE: u8 = 2;
const T_ERROR: u8 = 3;
const T_STATS_REQUEST: u8 = 4;
const T_STATS_RESPONSE: u8 = 5;
const T_BATCH_REQUEST: u8 = 6;
const T_BATCH_RESPONSE: u8 = 7;
const T_ENROLL: u8 = 8;
const T_ENROLL_RESPONSE: u8 = 9;
const T_SWAP_BUNDLE: u8 = 10;
const T_SWAP_BUNDLE_RESPONSE: u8 = 11;
const T_METRICS_REQUEST: u8 = 12;
const T_METRICS_RESPONSE: u8 = 13;
const T_HEALTH_REQUEST: u8 = 14;
const T_HEALTH_RESPONSE: u8 = 15;
const T_STREAM_OPEN: u8 = 16;
const T_STREAM_CHUNK: u8 = 17;
const T_STREAM_VERDICT: u8 = 18;
const T_STREAM_CLOSE: u8 = 19;

/// Upper bound on vector lengths (guards against hostile frames).
const MAX_LEN: usize = 16 << 20;

/// Upper bound on histogram bucket counts in stats frames.
const MAX_HIST_BUCKETS: usize = 4096;

/// Upper bound on sessions in one batch frame (guards against hostile
/// frames; a real batch this size would be a ~GB frame anyway).
const MAX_BATCH_SESSIONS: usize = 4096;

/// Upper bound on utterances in one enrollment frame.
const MAX_ENROLL_UTTERANCES: usize = 64;

/// Upper bound on metric series per section of a metrics frame. The
/// registry's own per-family cardinality cap keeps real snapshots far
/// below this; the wire guard exists for hostile frames.
const MAX_METRIC_SERIES: usize = 65_536;

/// Upper bound on exemplars per histogram on the wire (the registry
/// retains at most `MAX_EXEMPLARS` = 8; the slack tolerates merged
/// snapshots from forward-versioned peers).
const MAX_WIRE_EXEMPLARS: usize = 64;

/// Upper bound on SLO statuses / notes in one health frame.
const MAX_HEALTH_ENTRIES: usize = 1024;

/// Upper bound on samples per vector in one stream chunk (guards
/// against hostile v6 frames; real chunks are tens of milliseconds —
/// a million samples is already ~20 s of 48 kHz audio in *one* chunk).
const MAX_CHUNK_SAMPLES: usize = 1 << 20;

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: verify a session.
    VerifyRequest {
        /// Request correlation id.
        request_id: u64,
        /// The captured session.
        session: SessionData,
    },
    /// Server → client: the verdict.
    VerifyResponse {
        /// Request correlation id.
        request_id: u64,
        /// The verdict.
        verdict: DefenseVerdict,
    },
    /// Server → client: protocol failure.
    Error {
        /// Request correlation id (0 if unknown).
        request_id: u64,
        /// Description.
        message: String,
    },
    /// Client → server: request a statistics snapshot.
    StatsRequest {
        /// Request correlation id.
        request_id: u64,
    },
    /// Server → client: the statistics snapshot.
    StatsResponse {
        /// Request correlation id.
        request_id: u64,
        /// Scalar counters plus queue-wait/compute histograms.
        stats: ServerStatsSnapshot,
    },
    /// Client → server: verify a whole batch of sessions (added in v3).
    BatchRequest {
        /// Request correlation id.
        request_id: u64,
        /// The captured sessions, verified stage-major server-side.
        sessions: Vec<SessionData>,
    },
    /// Server → client: one outcome per batched session, in request
    /// order (added in v3).
    BatchResponse {
        /// Request correlation id.
        request_id: u64,
        /// Verdict or explicit shed per session — never a silent gap.
        outcomes: Vec<BatchOutcome>,
    },
    /// Client → server: enroll a new speaker online (added in v4).
    Enroll {
        /// Request correlation id.
        request_id: u64,
        /// Speaker id the utterances enroll.
        speaker_id: u32,
        /// Channel-matched enrollment utterances (ASV-ready audio).
        utterances: Vec<Vec<f64>>,
    },
    /// Server → client: the enrollment landed (added in v4).
    EnrollResponse {
        /// Request correlation id.
        request_id: u64,
        /// The speaker that was enrolled.
        speaker_id: u32,
        /// Registry generation the enrollment published.
        generation: u64,
    },
    /// Client → server: atomically replace the served models with a
    /// serialized [`ModelBundle`](crate::artifact::ModelBundle) (added
    /// in v4). The payload is the bundle's own checksummed encoding —
    /// the server revalidates it before swapping.
    SwapBundle {
        /// Request correlation id.
        request_id: u64,
        /// `ModelBundle::to_bytes` output.
        bundle_bytes: Vec<u8>,
    },
    /// Server → client: the swap landed (added in v4).
    SwapBundleResponse {
        /// Request correlation id.
        request_id: u64,
        /// Registry generation the swap published.
        generation: u64,
    },
    /// Client → server: request the full labeled-metrics snapshot
    /// (added in v5). Supersedes [`Message::StatsRequest`]'s scalar
    /// view; the old request is still served for old tooling.
    MetricsRequest {
        /// Request correlation id.
        request_id: u64,
    },
    /// Server → client: every counter, gauge and histogram series —
    /// labeled keys included — plus the text exposition rendering of
    /// the same snapshot (added in v5). The scrape is non-draining:
    /// exemplar windows are left intact for the trace-log flusher.
    MetricsResponse {
        /// Request correlation id.
        request_id: u64,
        /// Full labeled snapshot, exemplars included.
        snapshot: MetricsSnapshot,
        /// `render_text` exposition of the same snapshot.
        exposition: String,
    },
    /// Client → server: request the SLO engine's health verdict
    /// (added in v5).
    HealthRequest {
        /// Request correlation id.
        request_id: u64,
    },
    /// Server → client: the health verdict with per-spec burn-rate
    /// evidence (added in v5).
    HealthResponse {
        /// Request correlation id.
        request_id: u64,
        /// Overall state, per-spec statuses, guard notes.
        report: HealthReport,
    },
    /// Client → server: open a chunk-fed verification stream (added in
    /// v6). The server pins the currently served model generation for
    /// the stream's lifetime.
    StreamOpen {
        /// Request correlation id.
        request_id: u64,
        /// Client-chosen stream id carried by every subsequent chunk and
        /// close frame. Opening an id that is already open is a protocol
        /// error.
        stream_id: u64,
        /// Stream-constant capture metadata (rates, geometry, claimed
        /// speaker).
        info: StreamOpenInfo,
        /// Per-stream policy knobs (re-verification cadence, execution
        /// policy).
        stream: StreamConfig,
    },
    /// Client → server: one chunk of sensor data for an open stream
    /// (added in v6).
    StreamChunk {
        /// Request correlation id.
        request_id: u64,
        /// The stream the chunk belongs to.
        stream_id: u64,
        /// Interleaved sensor samples since the previous chunk.
        chunk: SessionChunk,
    },
    /// Server → client: the stream's state after an open, chunk or
    /// close frame (added in v6). [`StreamVerdictKind::Pending`] means
    /// keep streaming; every other kind is terminal and carries the
    /// verdict.
    StreamVerdict {
        /// Request correlation id.
        request_id: u64,
        /// The stream this verdict describes.
        stream_id: u64,
        /// Pending, early-reject, re-verification reject, or final.
        kind: StreamVerdictKind,
        /// Chunks the server has ingested for this stream.
        chunks: u32,
        /// The verdict (present for every terminal kind).
        verdict: Option<DefenseVerdict>,
    },
    /// Client → server: close a stream, requesting the final verdict
    /// over the full accumulated session (added in v6).
    StreamClose {
        /// Request correlation id.
        request_id: u64,
        /// The stream to finalize.
        stream_id: u64,
    },
}

/// What a [`Message::StreamVerdict`] reports (added in v6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamVerdictKind {
    /// The frame was processed and the stream stays open; no verdict
    /// yet.
    Pending,
    /// A stage's monotone bound condemned the stream mid-chunk; the
    /// stream is terminated.
    EarlyReject,
    /// A re-verification pass rejected the accumulated prefix and the
    /// stream was configured to terminate on it.
    ReverifyReject,
    /// The stream was closed and the full accumulated session verified.
    Final,
}

impl Message {
    /// The correlation id of any message kind.
    pub fn request_id(&self) -> u64 {
        match self {
            Message::VerifyRequest { request_id, .. }
            | Message::VerifyResponse { request_id, .. }
            | Message::Error { request_id, .. }
            | Message::StatsRequest { request_id }
            | Message::StatsResponse { request_id, .. }
            | Message::BatchRequest { request_id, .. }
            | Message::BatchResponse { request_id, .. }
            | Message::Enroll { request_id, .. }
            | Message::EnrollResponse { request_id, .. }
            | Message::SwapBundle { request_id, .. }
            | Message::SwapBundleResponse { request_id, .. }
            | Message::MetricsRequest { request_id }
            | Message::MetricsResponse { request_id, .. }
            | Message::HealthRequest { request_id }
            | Message::HealthResponse { request_id, .. }
            | Message::StreamOpen { request_id, .. }
            | Message::StreamChunk { request_id, .. }
            | Message::StreamVerdict { request_id, .. }
            | Message::StreamClose { request_id, .. } => *request_id,
        }
    }
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than a header.
    Truncated,
    /// Magic mismatch.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown message type tag.
    BadType(u8),
    /// A declared length exceeds limits or the remaining bytes.
    BadLength,
    /// String payload not UTF-8.
    BadString,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadType(t) => write!(f, "unknown message type {t}"),
            DecodeError::BadLength => write!(f, "invalid length field"),
            DecodeError::BadString => write!(f, "invalid UTF-8 in string"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a verify request.
pub fn encode_request(request_id: u64, session: &SessionData) -> Vec<u8> {
    let mut b = header(T_VERIFY_REQUEST);
    b.put_u64_le(request_id);
    put_session(&mut b, session);
    b.to_vec()
}

/// Stage-outcome tags inside a verify response.
const OUTCOME_SKIPPED: u8 = 0;
const OUTCOME_RAN: u8 = 1;

/// Encodes a verify response.
///
/// Layout after the request id: decision byte, invalid flag (+ reason
/// string when set), stage count, then per stage a component tag, an
/// outcome tag, and either `(score f64, detail string)` for a stage that
/// ran or the causing component's tag for a short-circuited one.
pub fn encode_response(request_id: u64, verdict: &DefenseVerdict) -> Vec<u8> {
    let mut b = header(T_VERIFY_RESPONSE);
    b.put_u64_le(request_id);
    put_verdict(&mut b, verdict);
    b.to_vec()
}

/// Per-session outcome tags inside a batch response.
const BATCH_SHED: u8 = 0;
const BATCH_VERDICT: u8 = 1;

/// Shed-reason tags inside a batch response.
const SHED_QUEUE_FULL: u8 = 0;
const SHED_DEADLINE: u8 = 1;
const SHED_SHUTDOWN: u8 = 2;

fn shed_tag(r: ShedReason) -> u8 {
    match r {
        ShedReason::QueueFull => SHED_QUEUE_FULL,
        ShedReason::DeadlineExceeded => SHED_DEADLINE,
        ShedReason::ShuttingDown => SHED_SHUTDOWN,
    }
}

fn shed_from_tag(t: u8) -> Result<ShedReason, DecodeError> {
    Ok(match t {
        SHED_QUEUE_FULL => ShedReason::QueueFull,
        SHED_DEADLINE => ShedReason::DeadlineExceeded,
        SHED_SHUTDOWN => ShedReason::ShuttingDown,
        other => return Err(DecodeError::BadType(other)),
    })
}

/// Encodes a batch verify request (protocol v3).
pub fn encode_batch_request(request_id: u64, sessions: &[SessionData]) -> Vec<u8> {
    let mut b = header(T_BATCH_REQUEST);
    b.put_u64_le(request_id);
    b.put_u32_le(sessions.len() as u32);
    for s in sessions {
        put_session(&mut b, s);
    }
    b.to_vec()
}

/// Encodes a batch verify response (protocol v3): one tagged outcome per
/// session — a full verdict (tag `BATCH_VERDICT`, same layout as a verify
/// response) or an explicit shed reason (tag `BATCH_SHED`).
pub fn encode_batch_response(request_id: u64, outcomes: &[BatchOutcome]) -> Vec<u8> {
    let mut b = header(T_BATCH_RESPONSE);
    b.put_u64_le(request_id);
    b.put_u32_le(outcomes.len() as u32);
    for outcome in outcomes {
        match outcome {
            BatchOutcome::Verdict(v) => {
                b.put_u8(BATCH_VERDICT);
                put_verdict(&mut b, v);
            }
            BatchOutcome::Shed(r) => {
                b.put_u8(BATCH_SHED);
                b.put_u8(shed_tag(*r));
            }
        }
    }
    b.to_vec()
}

/// Encodes an online enrollment request (protocol v4).
pub fn encode_enroll(request_id: u64, speaker_id: u32, utterances: &[Vec<f64>]) -> Vec<u8> {
    let mut b = header(T_ENROLL);
    b.put_u64_le(request_id);
    b.put_u32_le(speaker_id);
    b.put_u32_le(utterances.len() as u32);
    for u in utterances {
        put_f64s(&mut b, u);
    }
    b.to_vec()
}

/// Encodes an enrollment acknowledgement (protocol v4).
pub fn encode_enroll_response(request_id: u64, speaker_id: u32, generation: u64) -> Vec<u8> {
    let mut b = header(T_ENROLL_RESPONSE);
    b.put_u64_le(request_id);
    b.put_u32_le(speaker_id);
    b.put_u64_le(generation);
    b.to_vec()
}

/// Encodes a bundle hot-swap request (protocol v4). `bundle_bytes` is
/// a serialized `ModelBundle` carried opaquely — its own magic,
/// version and checksum travel inside the frame.
pub fn encode_swap_bundle(request_id: u64, bundle_bytes: &[u8]) -> Vec<u8> {
    let mut b = header(T_SWAP_BUNDLE);
    b.put_u64_le(request_id);
    b.put_u32_le(bundle_bytes.len() as u32);
    b.put_slice(bundle_bytes);
    b.to_vec()
}

/// Encodes a hot-swap acknowledgement (protocol v4).
pub fn encode_swap_bundle_response(request_id: u64, generation: u64) -> Vec<u8> {
    let mut b = header(T_SWAP_BUNDLE_RESPONSE);
    b.put_u64_le(request_id);
    b.put_u64_le(generation);
    b.to_vec()
}

/// Encodes a protocol error.
pub fn encode_error(request_id: u64, message: &str) -> Vec<u8> {
    let mut b = header(T_ERROR);
    b.put_u64_le(request_id);
    put_string(&mut b, message);
    b.to_vec()
}

/// Encodes a statistics request.
pub fn encode_stats_request(request_id: u64) -> Vec<u8> {
    let mut b = header(T_STATS_REQUEST);
    b.put_u64_le(request_id);
    b.to_vec()
}

/// Encodes a statistics response.
pub fn encode_stats_response(request_id: u64, stats: &ServerStatsSnapshot) -> Vec<u8> {
    let mut b = header(T_STATS_RESPONSE);
    b.put_u64_le(request_id);
    b.put_u64_le(stats.processed);
    b.put_u64_le(stats.protocol_errors);
    b.put_i64_le(stats.queue_depth);
    b.put_u32_le(stats.per_worker_processed.len() as u32);
    for &n in &stats.per_worker_processed {
        b.put_u64_le(n);
    }
    put_histogram(&mut b, &stats.queue_wait);
    put_histogram(&mut b, &stats.compute);
    b.to_vec()
}

/// Encodes a labeled-metrics scrape request (protocol v5).
pub fn encode_metrics_request(request_id: u64) -> Vec<u8> {
    let mut b = header(T_METRICS_REQUEST);
    b.put_u64_le(request_id);
    b.to_vec()
}

/// Encodes a labeled-metrics scrape response (protocol v5).
///
/// Layout after the request id: three sections — counters
/// `(key string, u64)`, gauges `(key string, i64)`, histograms
/// `(key string, histogram)` — each prefixed by a u32 series count,
/// followed by the text exposition string. Keys are canonical
/// `name{k="v",…}` series keys; unlabeled series are bare names.
pub fn encode_metrics_response(
    request_id: u64,
    snapshot: &MetricsSnapshot,
    exposition: &str,
) -> Vec<u8> {
    let mut b = header(T_METRICS_RESPONSE);
    b.put_u64_le(request_id);
    b.put_u32_le(snapshot.counters.len() as u32);
    for (key, &value) in &snapshot.counters {
        put_string(&mut b, key);
        b.put_u64_le(value);
    }
    b.put_u32_le(snapshot.gauges.len() as u32);
    for (key, &value) in &snapshot.gauges {
        put_string(&mut b, key);
        b.put_i64_le(value);
    }
    b.put_u32_le(snapshot.histograms.len() as u32);
    for (key, hist) in &snapshot.histograms {
        put_string(&mut b, key);
        put_histogram(&mut b, hist);
    }
    put_string(&mut b, exposition);
    b.to_vec()
}

/// Encodes a health request (protocol v5).
pub fn encode_health_request(request_id: u64) -> Vec<u8> {
    let mut b = header(T_HEALTH_REQUEST);
    b.put_u64_le(request_id);
    b.to_vec()
}

/// Encodes a health response (protocol v5).
///
/// Layout after the request id: overall state byte, u32 status count
/// then per status `(name string, short f64, long f64, state byte)`,
/// u32 note count then note strings.
pub fn encode_health_response(request_id: u64, report: &HealthReport) -> Vec<u8> {
    let mut b = header(T_HEALTH_RESPONSE);
    b.put_u64_le(request_id);
    b.put_u8(report.state.code());
    b.put_u32_le(report.statuses.len() as u32);
    for status in &report.statuses {
        put_string(&mut b, &status.name);
        b.put_f64_le(status.burn.short);
        b.put_f64_le(status.burn.long);
        b.put_u8(status.state.code());
    }
    b.put_u32_le(report.notes.len() as u32);
    for note in &report.notes {
        put_string(&mut b, note);
    }
    b.to_vec()
}

/// Execution-policy bytes inside a stream-open frame (protocol v6).
const POLICY_FULL: u8 = 0;
const POLICY_SHORT_CIRCUIT: u8 = 1;

fn policy_tag(p: ExecutionPolicy) -> u8 {
    match p {
        ExecutionPolicy::FullEvaluation => POLICY_FULL,
        ExecutionPolicy::ShortCircuit => POLICY_SHORT_CIRCUIT,
    }
}

fn policy_from_tag(t: u8) -> Result<ExecutionPolicy, DecodeError> {
    Ok(match t {
        POLICY_FULL => ExecutionPolicy::FullEvaluation,
        POLICY_SHORT_CIRCUIT => ExecutionPolicy::ShortCircuit,
        other => return Err(DecodeError::BadType(other)),
    })
}

/// Stream-verdict kind bytes (protocol v6).
const STREAM_PENDING: u8 = 0;
const STREAM_EARLY_REJECT: u8 = 1;
const STREAM_REVERIFY_REJECT: u8 = 2;
const STREAM_FINAL: u8 = 3;

fn stream_kind_tag(k: StreamVerdictKind) -> u8 {
    match k {
        StreamVerdictKind::Pending => STREAM_PENDING,
        StreamVerdictKind::EarlyReject => STREAM_EARLY_REJECT,
        StreamVerdictKind::ReverifyReject => STREAM_REVERIFY_REJECT,
        StreamVerdictKind::Final => STREAM_FINAL,
    }
}

fn stream_kind_from_tag(t: u8) -> Result<StreamVerdictKind, DecodeError> {
    Ok(match t {
        STREAM_PENDING => StreamVerdictKind::Pending,
        STREAM_EARLY_REJECT => StreamVerdictKind::EarlyReject,
        STREAM_REVERIFY_REJECT => StreamVerdictKind::ReverifyReject,
        STREAM_FINAL => StreamVerdictKind::Final,
        other => return Err(DecodeError::BadType(other)),
    })
}

/// Encodes a stream-open request (protocol v6).
pub fn encode_stream_open(
    request_id: u64,
    stream_id: u64,
    info: &StreamOpenInfo,
    stream: StreamConfig,
) -> Vec<u8> {
    let mut b = header(T_STREAM_OPEN);
    b.put_u64_le(request_id);
    b.put_u64_le(stream_id);
    b.put_u32_le(info.claimed_speaker);
    b.put_f64_le(info.audio_rate);
    b.put_f64_le(info.imu_rate);
    b.put_f64_le(info.pilot_hz);
    b.put_f64_le(info.sweep_start_s);
    b.put_f64_le(info.earth_reference.x);
    b.put_f64_le(info.earth_reference.y);
    b.put_f64_le(info.earth_reference.z);
    b.put_u8(info.dual_mic as u8);
    b.put_u32_le(stream.reverify_every_chunks);
    b.put_u8(stream.terminate_on_reverify as u8);
    b.put_u8(policy_tag(stream.policy));
    b.to_vec()
}

/// Encodes a stream chunk (protocol v6). Every sample vector is
/// length-prefixed and bounded by `MAX_CHUNK_SAMPLES` on decode.
pub fn encode_stream_chunk(request_id: u64, stream_id: u64, chunk: &SessionChunk) -> Vec<u8> {
    let mut b = header(T_STREAM_CHUNK);
    b.put_u64_le(request_id);
    b.put_u64_le(stream_id);
    put_f64s(&mut b, &chunk.audio);
    put_f64s(&mut b, &chunk.audio2);
    put_vec3s(&mut b, &chunk.mag);
    put_vec3s(&mut b, &chunk.accel);
    put_vec3s(&mut b, &chunk.gyro);
    b.to_vec()
}

/// Encodes a stream-verdict response (protocol v6): kind byte, ingested
/// chunk count, then an optional verdict (same layout as a verify
/// response body).
pub fn encode_stream_verdict(
    request_id: u64,
    stream_id: u64,
    kind: StreamVerdictKind,
    chunks: u32,
    verdict: Option<&DefenseVerdict>,
) -> Vec<u8> {
    let mut b = header(T_STREAM_VERDICT);
    b.put_u64_le(request_id);
    b.put_u64_le(stream_id);
    b.put_u8(stream_kind_tag(kind));
    b.put_u32_le(chunks);
    match verdict {
        Some(v) => {
            b.put_u8(1);
            put_verdict(&mut b, v);
        }
        None => b.put_u8(0),
    }
    b.to_vec()
}

/// Encodes a stream-close request (protocol v6).
pub fn encode_stream_close(request_id: u64, stream_id: u64) -> Vec<u8> {
    let mut b = header(T_STREAM_CLOSE);
    b.put_u64_le(request_id);
    b.put_u64_le(stream_id);
    b.to_vec()
}

/// Decodes any frame.
pub fn decode_frame(frame: &[u8]) -> Result<Message, DecodeError> {
    let mut buf = frame;
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    if buf.get_u16_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let ty = buf.get_u8();
    match ty {
        T_VERIFY_REQUEST => {
            let request_id = get_u64(&mut buf)?;
            let session = get_session(&mut buf)?;
            Ok(Message::VerifyRequest {
                request_id,
                session,
            })
        }
        T_VERIFY_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            let verdict = get_verdict(&mut buf)?;
            Ok(Message::VerifyResponse {
                request_id,
                verdict,
            })
        }
        T_BATCH_REQUEST => {
            let request_id = get_u64(&mut buf)?;
            let n = get_len(&mut buf)?;
            if n > MAX_BATCH_SESSIONS {
                return Err(DecodeError::BadLength);
            }
            let mut sessions = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                sessions.push(get_session(&mut buf)?);
            }
            Ok(Message::BatchRequest {
                request_id,
                sessions,
            })
        }
        T_BATCH_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            let n = get_len(&mut buf)?;
            if n > MAX_BATCH_SESSIONS {
                return Err(DecodeError::BadLength);
            }
            let mut outcomes = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                outcomes.push(match buf.get_u8() {
                    BATCH_VERDICT => BatchOutcome::Verdict(get_verdict(&mut buf)?),
                    BATCH_SHED => {
                        if buf.remaining() < 1 {
                            return Err(DecodeError::Truncated);
                        }
                        BatchOutcome::Shed(shed_from_tag(buf.get_u8())?)
                    }
                    other => return Err(DecodeError::BadType(other)),
                });
            }
            Ok(Message::BatchResponse {
                request_id,
                outcomes,
            })
        }
        T_ENROLL => {
            let request_id = get_u64(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let speaker_id = buf.get_u32_le();
            let n = get_len(&mut buf)?;
            if n > MAX_ENROLL_UTTERANCES {
                return Err(DecodeError::BadLength);
            }
            let mut utterances = Vec::with_capacity(n.min(16));
            for _ in 0..n {
                utterances.push(get_f64s(&mut buf)?);
            }
            Ok(Message::Enroll {
                request_id,
                speaker_id,
                utterances,
            })
        }
        T_ENROLL_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let speaker_id = buf.get_u32_le();
            let generation = get_u64(&mut buf)?;
            Ok(Message::EnrollResponse {
                request_id,
                speaker_id,
                generation,
            })
        }
        T_SWAP_BUNDLE => {
            let request_id = get_u64(&mut buf)?;
            let n = get_len(&mut buf)?;
            if buf.remaining() < n {
                return Err(DecodeError::Truncated);
            }
            let bundle_bytes = buf[..n].to_vec();
            buf.advance(n);
            Ok(Message::SwapBundle {
                request_id,
                bundle_bytes,
            })
        }
        T_SWAP_BUNDLE_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            let generation = get_u64(&mut buf)?;
            Ok(Message::SwapBundleResponse {
                request_id,
                generation,
            })
        }
        T_ERROR => {
            let request_id = get_u64(&mut buf)?;
            let message = get_string(&mut buf)?;
            Ok(Message::Error {
                request_id,
                message,
            })
        }
        T_STATS_REQUEST => {
            let request_id = get_u64(&mut buf)?;
            Ok(Message::StatsRequest { request_id })
        }
        T_STATS_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            let processed = get_u64(&mut buf)?;
            let protocol_errors = get_u64(&mut buf)?;
            let queue_depth = get_i64(&mut buf)?;
            let n = get_len(&mut buf)?;
            if n > MAX_HIST_BUCKETS || buf.remaining() < n * 8 {
                return Err(DecodeError::BadLength);
            }
            let per_worker_processed = (0..n).map(|_| buf.get_u64_le()).collect();
            let queue_wait = get_histogram(&mut buf)?;
            let compute = get_histogram(&mut buf)?;
            Ok(Message::StatsResponse {
                request_id,
                stats: ServerStatsSnapshot {
                    processed,
                    protocol_errors,
                    queue_depth,
                    per_worker_processed,
                    queue_wait,
                    compute,
                },
            })
        }
        T_METRICS_REQUEST => {
            let request_id = get_u64(&mut buf)?;
            Ok(Message::MetricsRequest { request_id })
        }
        T_METRICS_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            let n = get_len(&mut buf)?;
            if n > MAX_METRIC_SERIES {
                return Err(DecodeError::BadLength);
            }
            let mut counters = std::collections::BTreeMap::new();
            for _ in 0..n {
                let key = get_string(&mut buf)?;
                counters.insert(key, get_u64(&mut buf)?);
            }
            let n = get_len(&mut buf)?;
            if n > MAX_METRIC_SERIES {
                return Err(DecodeError::BadLength);
            }
            let mut gauges = std::collections::BTreeMap::new();
            for _ in 0..n {
                let key = get_string(&mut buf)?;
                gauges.insert(key, get_i64(&mut buf)?);
            }
            let n = get_len(&mut buf)?;
            if n > MAX_METRIC_SERIES {
                return Err(DecodeError::BadLength);
            }
            let mut histograms = std::collections::BTreeMap::new();
            for _ in 0..n {
                let key = get_string(&mut buf)?;
                histograms.insert(key, get_histogram(&mut buf)?);
            }
            let exposition = get_string(&mut buf)?;
            Ok(Message::MetricsResponse {
                request_id,
                snapshot: MetricsSnapshot {
                    counters,
                    gauges,
                    histograms,
                },
                exposition,
            })
        }
        T_HEALTH_REQUEST => {
            let request_id = get_u64(&mut buf)?;
            Ok(Message::HealthRequest { request_id })
        }
        T_HEALTH_RESPONSE => {
            let request_id = get_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let state = health_state_from_wire(buf.get_u8())?;
            let n = get_len(&mut buf)?;
            if n > MAX_HEALTH_ENTRIES {
                return Err(DecodeError::BadLength);
            }
            let mut statuses = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let name = get_string(&mut buf)?;
                let short = get_f64(&mut buf)?;
                let long = get_f64(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let state = health_state_from_wire(buf.get_u8())?;
                statuses.push(SloStatus {
                    name,
                    burn: BurnRate { short, long },
                    state,
                });
            }
            let n = get_len(&mut buf)?;
            if n > MAX_HEALTH_ENTRIES {
                return Err(DecodeError::BadLength);
            }
            let mut notes = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                notes.push(get_string(&mut buf)?);
            }
            Ok(Message::HealthResponse {
                request_id,
                report: HealthReport {
                    state,
                    statuses,
                    notes,
                },
            })
        }
        T_STREAM_OPEN => {
            let request_id = get_u64(&mut buf)?;
            let stream_id = get_u64(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let claimed_speaker = buf.get_u32_le();
            let audio_rate = get_f64(&mut buf)?;
            let imu_rate = get_f64(&mut buf)?;
            let pilot_hz = get_f64(&mut buf)?;
            let sweep_start_s = get_f64(&mut buf)?;
            let earth_reference =
                Vec3::new(get_f64(&mut buf)?, get_f64(&mut buf)?, get_f64(&mut buf)?);
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let dual_mic = match buf.get_u8() {
                0 => false,
                1 => true,
                other => return Err(DecodeError::BadType(other)),
            };
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let reverify_every_chunks = buf.get_u32_le();
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let terminate_on_reverify = match buf.get_u8() {
                0 => false,
                1 => true,
                other => return Err(DecodeError::BadType(other)),
            };
            let policy = policy_from_tag(buf.get_u8())?;
            Ok(Message::StreamOpen {
                request_id,
                stream_id,
                info: StreamOpenInfo {
                    claimed_speaker,
                    audio_rate,
                    imu_rate,
                    pilot_hz,
                    sweep_start_s,
                    earth_reference,
                    dual_mic,
                },
                stream: StreamConfig {
                    reverify_every_chunks,
                    terminate_on_reverify,
                    policy,
                },
            })
        }
        T_STREAM_CHUNK => {
            let request_id = get_u64(&mut buf)?;
            let stream_id = get_u64(&mut buf)?;
            let audio = get_f64s_capped(&mut buf, MAX_CHUNK_SAMPLES)?;
            let audio2 = get_f64s_capped(&mut buf, MAX_CHUNK_SAMPLES)?;
            let mag = get_vec3s_capped(&mut buf, MAX_CHUNK_SAMPLES)?;
            let accel = get_vec3s_capped(&mut buf, MAX_CHUNK_SAMPLES)?;
            let gyro = get_vec3s_capped(&mut buf, MAX_CHUNK_SAMPLES)?;
            Ok(Message::StreamChunk {
                request_id,
                stream_id,
                chunk: SessionChunk {
                    audio,
                    audio2,
                    mag,
                    accel,
                    gyro,
                },
            })
        }
        T_STREAM_VERDICT => {
            let request_id = get_u64(&mut buf)?;
            let stream_id = get_u64(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let kind = stream_kind_from_tag(buf.get_u8())?;
            if buf.remaining() < 5 {
                return Err(DecodeError::Truncated);
            }
            let chunks = buf.get_u32_le();
            let verdict = match buf.get_u8() {
                0 => None,
                1 => Some(get_verdict(&mut buf)?),
                other => return Err(DecodeError::BadType(other)),
            };
            Ok(Message::StreamVerdict {
                request_id,
                stream_id,
                kind,
                chunks,
                verdict,
            })
        }
        T_STREAM_CLOSE => {
            let request_id = get_u64(&mut buf)?;
            let stream_id = get_u64(&mut buf)?;
            Ok(Message::StreamClose {
                request_id,
                stream_id,
            })
        }
        other => Err(DecodeError::BadType(other)),
    }
}

/// Strict wire mapping for health-state bytes: unlike
/// [`HealthState::from_code`]'s lenient fallback, an unknown byte in a
/// frame is a protocol error, not an `Unhealthy` verdict.
fn health_state_from_wire(code: u8) -> Result<HealthState, DecodeError> {
    if code > 2 {
        return Err(DecodeError::BadType(code));
    }
    Ok(HealthState::from_code(code))
}

// ---------- helpers ----------

fn header(ty: u8) -> BytesMut {
    let mut b = BytesMut::with_capacity(64);
    b.put_u16_le(MAGIC);
    b.put_u8(PROTOCOL_VERSION);
    b.put_u8(ty);
    b
}

fn component_tag(c: Component) -> u8 {
    match c {
        Component::Distance => 0,
        Component::SoundField => 1,
        Component::Loudspeaker => 2,
        Component::SpeakerIdentity => 3,
        Component::Sld => 4, // added in protocol v2
    }
}

fn component_from_tag(t: u8) -> Result<Component, DecodeError> {
    Ok(match t {
        0 => Component::Distance,
        1 => Component::SoundField,
        2 => Component::Loudspeaker,
        3 => Component::SpeakerIdentity,
        4 => Component::Sld,
        other => return Err(DecodeError::BadType(other)),
    })
}

/// Verdict body shared by verify responses and batch-response entries:
/// decision byte, invalid flag (+ reason string when set), generation
/// flag (+ generation u64 when stamped, added in v4), stage count, then
/// per stage a component tag, an outcome tag, and either
/// `(score f64, detail string)` for a stage that ran or the causing
/// component's tag for a short-circuited one.
fn put_verdict(b: &mut BytesMut, verdict: &DefenseVerdict) {
    b.put_u8(match verdict.decision {
        Decision::Accept => 1,
        Decision::Reject => 0,
    });
    match &verdict.invalid {
        Some(reason) => {
            b.put_u8(1);
            put_string(b, reason);
        }
        None => b.put_u8(0),
    }
    match verdict.generation {
        Some(generation) => {
            b.put_u8(1);
            b.put_u64_le(generation);
        }
        None => b.put_u8(0),
    }
    b.put_u32_le(verdict.stages.len() as u32);
    for stage in &verdict.stages {
        b.put_u8(component_tag(stage.component()));
        match stage {
            StageOutcome::Ran(r) => {
                b.put_u8(OUTCOME_RAN);
                b.put_f64_le(r.attack_score);
                put_string(b, &r.detail);
            }
            StageOutcome::Skipped(s) => {
                b.put_u8(OUTCOME_SKIPPED);
                b.put_u8(component_tag(s.cause));
            }
        }
    }
}

fn get_verdict(buf: &mut &[u8]) -> Result<DefenseVerdict, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let accepted = buf.get_u8() == 1;
    let invalid = match buf.get_u8() {
        0 => None,
        1 => Some(get_string(buf)?),
        other => return Err(DecodeError::BadType(other)),
    };
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let generation = match buf.get_u8() {
        0 => None,
        1 => Some(get_u64(buf)?),
        other => return Err(DecodeError::BadType(other)),
    };
    let n = get_len(buf)?;
    let mut stages = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        if buf.remaining() < 2 {
            return Err(DecodeError::Truncated);
        }
        let component = component_from_tag(buf.get_u8())?;
        match buf.get_u8() {
            OUTCOME_RAN => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                let attack_score = buf.get_f64_le();
                let detail = get_string(buf)?;
                stages.push(StageOutcome::Ran(ComponentResult {
                    component,
                    attack_score,
                    detail,
                }));
            }
            OUTCOME_SKIPPED => {
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let cause = component_from_tag(buf.get_u8())?;
                stages.push(StageOutcome::Skipped(SkippedStage { component, cause }));
            }
            other => return Err(DecodeError::BadType(other)),
        }
    }
    Ok(DefenseVerdict {
        stages,
        decision: if accepted {
            Decision::Accept
        } else {
            Decision::Reject
        },
        invalid,
        generation,
    })
}

fn put_string(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn put_f64s(b: &mut BytesMut, v: &[f64]) {
    b.put_u32_le(v.len() as u32);
    for &x in v {
        b.put_f64_le(x);
    }
}

fn put_vec3s(b: &mut BytesMut, v: &[Vec3]) {
    b.put_u32_le(v.len() as u32);
    for x in v {
        b.put_f64_le(x.x);
        b.put_f64_le(x.y);
        b.put_f64_le(x.z);
    }
}

fn put_histogram(b: &mut BytesMut, h: &HistogramSnapshot) {
    b.put_u64_le(h.count);
    b.put_u64_le(h.sum_ns);
    b.put_u64_le(h.max_ns);
    b.put_u32_le(h.buckets.len() as u32);
    for &n in &h.buckets {
        b.put_u64_le(n);
    }
    b.put_u32_le(h.exemplars.len() as u32);
    for ex in &h.exemplars {
        put_string(b, &ex.trace_id);
        b.put_u64_le(ex.value_ns);
        b.put_u32_le(ex.bucket);
    }
}

fn get_histogram(buf: &mut &[u8]) -> Result<HistogramSnapshot, DecodeError> {
    let count = get_u64(buf)?;
    let sum_ns = get_u64(buf)?;
    let max_ns = get_u64(buf)?;
    let n = get_len(buf)?;
    if n > MAX_HIST_BUCKETS || buf.remaining() < n * 8 {
        return Err(DecodeError::BadLength);
    }
    let buckets = (0..n).map(|_| buf.get_u64_le()).collect();
    let n_ex = get_len(buf)?;
    if n_ex > MAX_WIRE_EXEMPLARS {
        return Err(DecodeError::BadLength);
    }
    let mut exemplars = Vec::with_capacity(n_ex);
    for _ in 0..n_ex {
        let trace_id = get_string(buf)?;
        let value_ns = get_u64(buf)?;
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let bucket = buf.get_u32_le();
        exemplars.push(Exemplar {
            trace_id,
            value_ns,
            bucket,
        });
    }
    Ok(HistogramSnapshot {
        buckets,
        count,
        sum_ns,
        max_ns,
        exemplars,
    })
}

fn put_session(b: &mut BytesMut, s: &SessionData) {
    b.put_u32_le(s.claimed_speaker);
    b.put_f64_le(s.audio_rate);
    b.put_f64_le(s.pilot_hz);
    b.put_f64_le(s.imu_rate);
    b.put_f64_le(s.sweep_start_s);
    b.put_f64_le(s.earth_reference.x);
    b.put_f64_le(s.earth_reference.y);
    b.put_f64_le(s.earth_reference.z);
    put_f64s(b, &s.audio);
    match &s.audio2 {
        Some(a2) => {
            b.put_u8(1);
            put_f64s(b, a2);
        }
        None => b.put_u8(0),
    }
    put_vec3s(b, &s.mag_readings);
    put_vec3s(b, &s.accel_readings);
    put_vec3s(b, &s.gyro_readings);
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_i64_le())
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_f64_le())
}

fn get_len(buf: &mut &[u8]) -> Result<usize, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if n > MAX_LEN {
        return Err(DecodeError::BadLength);
    }
    Ok(n)
}

fn get_string(buf: &mut &[u8]) -> Result<String, DecodeError> {
    let n = get_len(buf)?;
    if buf.remaining() < n {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf[..n].to_vec();
    buf.advance(n);
    String::from_utf8(bytes).map_err(|_| DecodeError::BadString)
}

fn get_f64s(buf: &mut &[u8]) -> Result<Vec<f64>, DecodeError> {
    let n = get_len(buf)?;
    if buf.remaining() < n * 8 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

fn get_vec3s(buf: &mut &[u8]) -> Result<Vec<Vec3>, DecodeError> {
    let n = get_len(buf)?;
    if buf.remaining() < n * 24 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..n)
        .map(|_| Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le()))
        .collect())
}

/// Like [`get_f64s`] but with a tighter declared-length cap, checked
/// *before* any allocation or read — a hostile count is rejected as
/// [`DecodeError::BadLength`] even when the frame is otherwise short.
fn get_f64s_capped(buf: &mut &[u8], cap: usize) -> Result<Vec<f64>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if n > cap {
        return Err(DecodeError::BadLength);
    }
    if buf.remaining() < n * 8 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

/// Like [`get_vec3s`] but with a tighter declared-length cap (see
/// [`get_f64s_capped`]).
fn get_vec3s_capped(buf: &mut &[u8], cap: usize) -> Result<Vec<Vec3>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if n > cap {
        return Err(DecodeError::BadLength);
    }
    if buf.remaining() < n * 24 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..n)
        .map(|_| Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le()))
        .collect())
}

fn get_session(buf: &mut &[u8]) -> Result<SessionData, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let claimed_speaker = buf.get_u32_le();
    let audio_rate = get_f64(buf)?;
    let pilot_hz = get_f64(buf)?;
    let imu_rate = get_f64(buf)?;
    let sweep_start_s = get_f64(buf)?;
    let earth_reference = Vec3::new(get_f64(buf)?, get_f64(buf)?, get_f64(buf)?);
    let audio = get_f64s(buf)?;
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let audio2 = match buf.get_u8() {
        0 => None,
        1 => Some(get_f64s(buf)?),
        other => return Err(DecodeError::BadType(other)),
    };
    let mag_readings = get_vec3s(buf)?;
    let accel_readings = get_vec3s(buf)?;
    let gyro_readings = get_vec3s(buf)?;
    Ok(SessionData {
        claimed_speaker,
        audio,
        audio2,
        audio_rate,
        pilot_hz,
        mag_readings,
        accel_readings,
        gyro_readings,
        imu_rate,
        sweep_start_s,
        earth_reference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> SessionData {
        SessionData {
            claimed_speaker: 7,
            audio: vec![0.25, -0.5, 0.125],
            audio2: Some(vec![0.1, 0.0, -0.1]),
            audio_rate: 48_000.0,
            pilot_hz: 18_500.0,
            mag_readings: vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.5, 2.5)],
            accel_readings: vec![Vec3::new(0.1, 0.2, 0.3)],
            gyro_readings: vec![Vec3::new(0.0, 0.0, 0.7)],
            imu_rate: 100.0,
            sweep_start_s: 1.0,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
        }
    }

    #[test]
    fn request_round_trip() {
        let s = sample_session();
        let frame = encode_request(42, &s);
        match decode_frame(&frame).unwrap() {
            Message::VerifyRequest {
                request_id,
                session,
            } => {
                assert_eq!(request_id, 42);
                assert_eq!(session, s);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn response_round_trip() {
        let verdict = DefenseVerdict::from_results(vec![
            ComponentResult {
                component: Component::Loudspeaker,
                attack_score: 1.25,
                detail: "deviation 40 µT".into(),
            },
            ComponentResult {
                component: Component::SpeakerIdentity,
                attack_score: 0.5,
                detail: "LLR 0.25".into(),
            },
        ]);
        let frame = encode_response(9, &verdict);
        match decode_frame(&frame).unwrap() {
            Message::VerifyResponse {
                request_id,
                verdict: v,
            } => {
                assert_eq!(request_id, 9);
                assert_eq!(v, verdict);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn sld_tag_round_trips() {
        // The v2 tag (4) must survive the wire and decode back to Sld,
        // distinct from Distance.
        assert_eq!(component_tag(Component::Sld), 4);
        let verdict = DefenseVerdict::from_results(vec![ComponentResult {
            component: Component::Sld,
            attack_score: 0.7,
            detail: "SLD 8.1 dB".into(),
        }]);
        let frame = encode_response(11, &verdict);
        match decode_frame(&frame).unwrap() {
            Message::VerifyResponse { verdict: v, .. } => {
                assert_eq!(v.results().next().unwrap().component, Component::Sld);
                assert_eq!(v, verdict);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn short_circuited_verdict_round_trips() {
        let verdict = DefenseVerdict::from_stages(vec![
            StageOutcome::Ran(ComponentResult {
                component: Component::Loudspeaker,
                attack_score: 3.0,
                detail: "deviation 40 µT".into(),
            }),
            StageOutcome::Skipped(SkippedStage {
                component: Component::SpeakerIdentity,
                cause: Component::Loudspeaker,
            }),
        ]);
        let frame = encode_response(12, &verdict);
        match decode_frame(&frame).unwrap() {
            Message::VerifyResponse { verdict: v, .. } => {
                assert_eq!(v, verdict);
                let sk = v.skipped_of(Component::SpeakerIdentity).unwrap();
                assert_eq!(sk.cause, Component::Loudspeaker);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn invalid_verdict_round_trips() {
        let verdict = DefenseVerdict::rejected_invalid("empty audio".into());
        let frame = encode_response(13, &verdict);
        match decode_frame(&frame).unwrap() {
            Message::VerifyResponse { verdict: v, .. } => assert_eq!(v, verdict),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn response_rejects_truncation_everywhere() {
        let verdict = DefenseVerdict::from_stages(vec![
            StageOutcome::Ran(ComponentResult {
                component: Component::Sld,
                attack_score: 2.0,
                detail: "x".into(),
            }),
            StageOutcome::Skipped(SkippedStage {
                component: Component::SpeakerIdentity,
                cause: Component::Sld,
            }),
        ]);
        let frame = encode_response(1, &verdict);
        for cut in 0..frame.len() {
            let r = decode_frame(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
    }

    #[test]
    fn response_rejects_bad_outcome_tag() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_VERIFY_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u8(0); // reject
        b.put_u8(0); // not invalid
        b.put_u8(0); // no generation stamp
        b.put_u32_le(1); // one stage
        b.put_u8(component_tag(Component::Distance));
        b.put_u8(9); // neither RAN nor SKIPPED
        assert_eq!(decode_frame(&b), Err(DecodeError::BadType(9)));
    }

    #[test]
    fn batch_request_round_trip() {
        let sessions = vec![sample_session(), sample_session()];
        let frame = encode_batch_request(21, &sessions);
        match decode_frame(&frame).unwrap() {
            Message::BatchRequest {
                request_id,
                sessions: s,
            } => {
                assert_eq!(request_id, 21);
                assert_eq!(s, sessions);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn batch_response_round_trips_verdicts_and_sheds() {
        let verdict = DefenseVerdict::from_stages(vec![
            StageOutcome::Ran(ComponentResult {
                component: Component::Loudspeaker,
                attack_score: 2.0,
                detail: "deviation 40 µT".into(),
            }),
            StageOutcome::Skipped(SkippedStage {
                component: Component::SpeakerIdentity,
                cause: Component::Loudspeaker,
            }),
        ]);
        let outcomes = vec![
            BatchOutcome::Verdict(verdict),
            BatchOutcome::Shed(ShedReason::QueueFull),
            BatchOutcome::Shed(ShedReason::DeadlineExceeded),
            BatchOutcome::Shed(ShedReason::ShuttingDown),
            BatchOutcome::Verdict(DefenseVerdict::rejected_invalid("empty audio".into())),
        ];
        let frame = encode_batch_response(22, &outcomes);
        match decode_frame(&frame).unwrap() {
            Message::BatchResponse {
                request_id,
                outcomes: o,
            } => {
                assert_eq!(request_id, 22);
                assert_eq!(o, outcomes);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let frame = encode_batch_request(23, &[]);
        match decode_frame(&frame).unwrap() {
            Message::BatchRequest { sessions, .. } => assert!(sessions.is_empty()),
            other => panic!("wrong message: {other:?}"),
        }
        let frame = encode_batch_response(24, &[]);
        match decode_frame(&frame).unwrap() {
            Message::BatchResponse { outcomes, .. } => assert!(outcomes.is_empty()),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn batch_frames_reject_truncation_everywhere() {
        let req = encode_batch_request(1, &[sample_session()]);
        let resp = encode_batch_response(
            2,
            &[
                BatchOutcome::Shed(ShedReason::QueueFull),
                BatchOutcome::Verdict(DefenseVerdict::from_results(vec![ComponentResult {
                    component: Component::Sld,
                    attack_score: 0.5,
                    detail: "x".into(),
                }])),
            ],
        );
        for frame in [req, resp] {
            for cut in 0..frame.len() {
                let r = decode_frame(&frame[..cut]);
                assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
            }
        }
    }

    #[test]
    fn batch_request_rejects_hostile_session_count() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_BATCH_REQUEST);
        b.put_u64_le(1); // request id
        b.put_u32_le((MAX_BATCH_SESSIONS + 1) as u32); // over the cap
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    #[test]
    fn batch_response_rejects_bad_shed_tag() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_BATCH_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u32_le(1); // one outcome
        b.put_u8(BATCH_SHED);
        b.put_u8(9); // no such shed reason
        assert_eq!(decode_frame(&b), Err(DecodeError::BadType(9)));
    }

    #[test]
    fn generation_stamp_round_trips() {
        // v4: a served verdict carries the registry generation that
        // produced it; an unstamped verdict stays None on the wire.
        let stamped = DefenseVerdict::from_results(vec![ComponentResult {
            component: Component::Loudspeaker,
            attack_score: 0.25,
            detail: "ok".into(),
        }])
        .with_generation(7);
        let frame = encode_response(30, &stamped);
        match decode_frame(&frame).unwrap() {
            Message::VerifyResponse { verdict: v, .. } => {
                assert_eq!(v.generation, Some(7));
                assert_eq!(v, stamped);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn enroll_round_trip() {
        let utterances = vec![vec![0.5, -0.25, 0.125], vec![], vec![1.0]];
        let frame = encode_enroll(31, 4040, &utterances);
        match decode_frame(&frame).unwrap() {
            Message::Enroll {
                request_id,
                speaker_id,
                utterances: u,
            } => {
                assert_eq!(request_id, 31);
                assert_eq!(speaker_id, 4040);
                assert_eq!(u, utterances);
            }
            other => panic!("wrong message: {other:?}"),
        }
        let frame = encode_enroll_response(31, 4040, 2);
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::EnrollResponse {
                request_id: 31,
                speaker_id: 4040,
                generation: 2
            }
        );
    }

    #[test]
    fn enroll_rejects_hostile_utterance_count() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_ENROLL);
        b.put_u64_le(1); // request id
        b.put_u32_le(9); // speaker
        b.put_u32_le((MAX_ENROLL_UTTERANCES + 1) as u32);
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    #[test]
    fn swap_bundle_round_trip() {
        // The bundle payload travels opaquely — arbitrary bytes survive.
        let payload: Vec<u8> = (0..=255).collect();
        let frame = encode_swap_bundle(32, &payload);
        match decode_frame(&frame).unwrap() {
            Message::SwapBundle {
                request_id,
                bundle_bytes,
            } => {
                assert_eq!(request_id, 32);
                assert_eq!(bundle_bytes, payload);
            }
            other => panic!("wrong message: {other:?}"),
        }
        let frame = encode_swap_bundle_response(32, 5);
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::SwapBundleResponse {
                request_id: 32,
                generation: 5
            }
        );
    }

    #[test]
    fn v4_frames_reject_truncation_everywhere() {
        let frames = [
            encode_enroll(1, 9, &[vec![0.5, 1.5], vec![-0.25]]),
            encode_enroll_response(2, 9, 3),
            encode_swap_bundle(3, &[1, 2, 3, 4, 5]),
            encode_swap_bundle_response(4, 6),
            encode_response(
                5,
                &DefenseVerdict::from_results(vec![ComponentResult {
                    component: Component::Distance,
                    attack_score: 0.5,
                    detail: "d".into(),
                }])
                .with_generation(9),
            ),
        ];
        for frame in frames {
            for cut in 0..frame.len() {
                let r = decode_frame(&frame[..cut]);
                assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
            }
        }
    }

    fn sample_stats() -> ServerStatsSnapshot {
        let wait = magshield_obs::metrics::Histogram::default();
        let compute = magshield_obs::metrics::Histogram::default();
        wait.record_secs(0.0001);
        wait.record_secs(0.002);
        compute.record_secs(0.03);
        ServerStatsSnapshot {
            processed: 12,
            protocol_errors: 3,
            queue_depth: -1, // transient negatives must survive the wire
            per_worker_processed: vec![5, 0, 7],
            queue_wait: wait.snapshot(),
            compute: compute.snapshot(),
        }
    }

    #[test]
    fn stats_request_round_trip() {
        let frame = encode_stats_request(77);
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::StatsRequest { request_id: 77 }
        );
    }

    #[test]
    fn stats_response_round_trip() {
        let stats = sample_stats();
        let frame = encode_stats_response(8, &stats);
        match decode_frame(&frame).unwrap() {
            Message::StatsResponse {
                request_id,
                stats: s,
            } => {
                assert_eq!(request_id, 8);
                assert_eq!(s, stats);
                // Quantiles survive serialization (same buckets → same
                // estimates).
                assert_eq!(s.compute.p99(), stats.compute.p99());
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn stats_response_rejects_truncation_everywhere() {
        let frame = encode_stats_response(1, &sample_stats());
        for cut in 0..frame.len() {
            let r = decode_frame(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
    }

    #[test]
    fn stats_response_rejects_hostile_bucket_count() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_STATS_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u64_le(0); // processed
        b.put_u64_le(0); // protocol errors
        b.put_i64_le(0); // queue depth
        b.put_u32_le(u32::MAX); // absurd worker count
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    #[test]
    fn error_round_trip() {
        let frame = encode_error(3, "boom");
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::Error {
                request_id: 3,
                message: "boom".into()
            }
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = encode_error(1, "x");
        frame[0] = 0xFF;
        assert_eq!(decode_frame(&frame), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut frame = encode_error(1, "x");
        frame[2] = 99;
        assert_eq!(decode_frame(&frame), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let frame = encode_request(1, &sample_session());
        // Every prefix must fail cleanly, never panic.
        for cut in 0..frame.len() {
            let r = decode_frame(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
    }

    #[test]
    fn rejects_hostile_length() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_ERROR);
        b.put_u64_le(1);
        b.put_u32_le(u32::MAX); // absurd string length
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    #[test]
    fn rejects_unknown_type() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(200);
        assert_eq!(decode_frame(&b), Err(DecodeError::BadType(200)));
    }

    // ---------- telemetry plane (protocol v5) ----------

    fn sample_snapshot() -> MetricsSnapshot {
        use magshield_obs::labels::Labels;
        let registry = magshield_obs::metrics::Registry::default();
        registry.counter("batch.verdicts").add(12);
        registry
            .counter_with("batch.shed", &Labels::new().shed_reason("queue_full"))
            .add(3);
        registry
            .gauge_with("batch.queue.depth", &Labels::new().tenant("acme"))
            .set(7);
        let hist = registry.histogram_with(
            "pipeline.stage.seconds",
            &Labels::new().stage("distance").policy("full"),
        );
        hist.record_secs_with_exemplar(0.004, "speaker-7");
        hist.record_secs_with_exemplar(0.250, "speaker-9");
        registry.snapshot()
    }

    #[test]
    fn metrics_request_round_trip() {
        let frame = encode_metrics_request(88);
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::MetricsRequest { request_id: 88 }
        );
    }

    #[test]
    fn metrics_response_round_trips_labels_and_exemplars() {
        let snap = sample_snapshot();
        let exposition = magshield_obs::export::render_text(&snap);
        let frame = encode_metrics_response(6, &snap, &exposition);
        match decode_frame(&frame).unwrap() {
            Message::MetricsResponse {
                request_id,
                snapshot,
                exposition: expo,
            } => {
                assert_eq!(request_id, 6);
                assert_eq!(snapshot, snap);
                assert_eq!(expo, exposition);
                // Labeled series keys survive verbatim…
                assert!(snapshot
                    .counters
                    .contains_key("batch.shed{shed_reason=\"queue_full\"}"));
                // …and so do the exemplars inside the histogram.
                let hist = snapshot
                    .histograms
                    .get("pipeline.stage.seconds{policy=\"full\",stage=\"distance\"}")
                    .expect("labeled histogram survives");
                assert_eq!(hist.exemplars.len(), 2);
                assert!(hist.exemplars.iter().any(|e| e.trace_id == "speaker-9"));
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn metrics_response_rejects_truncation_everywhere() {
        let snap = sample_snapshot();
        let frame = encode_metrics_response(1, &snap, "expo");
        for cut in 0..frame.len() {
            let r = decode_frame(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
    }

    #[test]
    fn metrics_response_rejects_hostile_series_count() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_METRICS_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u32_le((MAX_METRIC_SERIES + 1) as u32); // absurd counter count
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    #[test]
    fn histogram_rejects_hostile_exemplar_count() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_METRICS_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u32_le(0); // no counters
        b.put_u32_le(0); // no gauges
        b.put_u32_le(1); // one histogram
        put_string(&mut b, "h");
        b.put_u64_le(0); // count
        b.put_u64_le(0); // sum_ns
        b.put_u64_le(0); // max_ns
        b.put_u32_le(0); // no buckets
        b.put_u32_le((MAX_WIRE_EXEMPLARS + 1) as u32); // absurd exemplars
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    fn sample_report() -> HealthReport {
        HealthReport {
            state: HealthState::Degraded,
            statuses: vec![
                SloStatus {
                    name: "verify-latency".into(),
                    burn: BurnRate {
                        short: 7.25,
                        long: 6.5,
                    },
                    state: HealthState::Degraded,
                },
                SloStatus {
                    name: "tenant-acme-availability".into(),
                    burn: BurnRate {
                        short: 0.0,
                        long: 0.1,
                    },
                    state: HealthState::Healthy,
                },
            ],
            notes: vec!["shed ratio 0.08 over 300s".into()],
        }
    }

    #[test]
    fn health_round_trip() {
        let frame = encode_health_request(55);
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::HealthRequest { request_id: 55 }
        );
        let report = sample_report();
        let frame = encode_health_response(55, &report);
        match decode_frame(&frame).unwrap() {
            Message::HealthResponse {
                request_id,
                report: r,
            } => {
                assert_eq!(request_id, 55);
                assert_eq!(r, report);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn health_response_rejects_truncation_everywhere() {
        let frame = encode_health_response(1, &sample_report());
        for cut in 0..frame.len() {
            let r = decode_frame(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
    }

    #[test]
    fn health_response_rejects_unknown_state_byte() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_HEALTH_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u8(9); // no such health state
        assert_eq!(decode_frame(&b), Err(DecodeError::BadType(9)));
    }

    // ---------- streaming (protocol v6) ----------

    fn sample_open_info() -> StreamOpenInfo {
        StreamOpenInfo {
            claimed_speaker: 7,
            audio_rate: 48_000.0,
            imu_rate: 100.0,
            pilot_hz: 18_500.0,
            sweep_start_s: 1.0,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
            dual_mic: true,
        }
    }

    fn sample_chunk() -> SessionChunk {
        SessionChunk {
            audio: vec![0.25, -0.5, 0.125],
            audio2: vec![0.1, 0.0],
            mag: vec![Vec3::new(1.0, 2.0, 3.0)],
            accel: vec![Vec3::new(0.1, 0.2, 0.3)],
            gyro: vec![],
        }
    }

    #[test]
    fn stream_open_round_trip() {
        let info = sample_open_info();
        let stream = StreamConfig {
            reverify_every_chunks: 8,
            terminate_on_reverify: true,
            policy: ExecutionPolicy::ShortCircuit,
        };
        let frame = encode_stream_open(90, 5, &info, stream);
        match decode_frame(&frame).unwrap() {
            Message::StreamOpen {
                request_id,
                stream_id,
                info: i,
                stream: s,
            } => {
                assert_eq!(request_id, 90);
                assert_eq!(stream_id, 5);
                assert_eq!(i, info);
                assert_eq!(s, stream);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn stream_chunk_round_trip() {
        let chunk = sample_chunk();
        let frame = encode_stream_chunk(91, 5, &chunk);
        match decode_frame(&frame).unwrap() {
            Message::StreamChunk {
                request_id,
                stream_id,
                chunk: c,
            } => {
                assert_eq!(request_id, 91);
                assert_eq!(stream_id, 5);
                assert_eq!(c, chunk);
            }
            other => panic!("wrong message: {other:?}"),
        }
        // An all-empty chunk survives too (pure keep-alive).
        let frame = encode_stream_chunk(92, 5, &SessionChunk::default());
        match decode_frame(&frame).unwrap() {
            Message::StreamChunk { chunk, .. } => assert!(chunk.is_empty()),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn stream_verdict_round_trips_every_kind() {
        let verdict = DefenseVerdict::from_stages(vec![
            StageOutcome::Ran(ComponentResult {
                component: Component::Loudspeaker,
                attack_score: 3.4,
                detail: "mid-stream deviation".into(),
            }),
            StageOutcome::Skipped(SkippedStage {
                component: Component::SpeakerIdentity,
                cause: Component::Loudspeaker,
            }),
        ])
        .with_generation(4);
        for (kind, v) in [
            (StreamVerdictKind::Pending, None),
            (StreamVerdictKind::EarlyReject, Some(&verdict)),
            (StreamVerdictKind::ReverifyReject, Some(&verdict)),
            (StreamVerdictKind::Final, Some(&verdict)),
        ] {
            let frame = encode_stream_verdict(93, 6, kind, 11, v);
            match decode_frame(&frame).unwrap() {
                Message::StreamVerdict {
                    request_id,
                    stream_id,
                    kind: k,
                    chunks,
                    verdict: dv,
                } => {
                    assert_eq!(request_id, 93);
                    assert_eq!(stream_id, 6);
                    assert_eq!(k, kind);
                    assert_eq!(chunks, 11);
                    assert_eq!(dv.as_ref(), v);
                }
                other => panic!("wrong message: {other:?}"),
            }
        }
    }

    #[test]
    fn stream_close_round_trip() {
        let frame = encode_stream_close(94, 6);
        assert_eq!(
            decode_frame(&frame).unwrap(),
            Message::StreamClose {
                request_id: 94,
                stream_id: 6
            }
        );
    }

    #[test]
    fn v6_stream_frames_reject_truncation_everywhere() {
        let verdict = DefenseVerdict::from_results(vec![ComponentResult {
            component: Component::Loudspeaker,
            attack_score: 3.4,
            detail: "x".into(),
        }])
        .with_generation(2);
        let frames = [
            encode_stream_open(1, 2, &sample_open_info(), StreamConfig::default()),
            encode_stream_chunk(3, 2, &sample_chunk()),
            encode_stream_verdict(4, 2, StreamVerdictKind::EarlyReject, 3, Some(&verdict)),
            encode_stream_verdict(5, 2, StreamVerdictKind::Pending, 3, None),
            encode_stream_close(6, 2),
        ];
        for frame in frames {
            for cut in 0..frame.len() {
                let r = decode_frame(&frame[..cut]);
                assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
            }
        }
    }

    #[test]
    fn stream_chunk_rejects_hostile_sample_counts() {
        // An oversized declared audio count is refused before any
        // allocation, even though the frame itself is tiny.
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_STREAM_CHUNK);
        b.put_u64_le(1); // request id
        b.put_u64_le(2); // stream id
        b.put_u32_le((MAX_CHUNK_SAMPLES + 1) as u32); // absurd audio count
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));

        // Same for the IMU vectors deeper in the frame.
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_STREAM_CHUNK);
        b.put_u64_le(1);
        b.put_u64_le(2);
        b.put_u32_le(0); // no audio
        b.put_u32_le(0); // no audio2
        b.put_u32_le(u32::MAX); // absurd magnetometer count
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }

    #[test]
    fn stream_verdict_rejects_bad_kind_tag() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_STREAM_VERDICT);
        b.put_u64_le(1); // request id
        b.put_u64_le(2); // stream id
        b.put_u8(9); // no such kind
        assert_eq!(decode_frame(&b), Err(DecodeError::BadType(9)));
    }

    #[test]
    fn stream_open_rejects_bad_flag_and_policy_bytes() {
        let good = encode_stream_open(1, 2, &sample_open_info(), StreamConfig::default());
        // dual_mic byte lives right after the 8 header/id bytes + 4 + 7×8.
        let dual_mic_at = 4 + 8 + 8 + 4 + 7 * 8;
        let mut bad = good.clone();
        bad[dual_mic_at] = 7;
        assert_eq!(decode_frame(&bad), Err(DecodeError::BadType(7)));
        // The policy byte is the last byte of the frame.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() = 9;
        assert_eq!(decode_frame(&bad), Err(DecodeError::BadType(9)));
        // The terminate_on_reverify flag sits just before it.
        let n = good.len();
        let mut bad = good;
        bad[n - 2] = 3;
        assert_eq!(decode_frame(&bad), Err(DecodeError::BadType(3)));
    }

    #[test]
    fn health_response_rejects_hostile_status_count() {
        let mut b = BytesMut::new();
        b.put_u16_le(MAGIC);
        b.put_u8(PROTOCOL_VERSION);
        b.put_u8(T_HEALTH_RESPONSE);
        b.put_u64_le(1); // request id
        b.put_u8(0); // healthy
        b.put_u32_le((MAX_HEALTH_ENTRIES + 1) as u32); // absurd status count
        assert_eq!(decode_frame(&b), Err(DecodeError::BadLength));
    }
}

//! Client–server deployment (§V of the paper).
//!
//! The paper's prototype splits into an Android client that captures
//! sensor data and a Tornado server backend that runs the verification
//! pipeline over a secure socket. This module reproduces that
//! decomposition in-process: [`protocol`] defines the binary wire format
//! (length-prefixed frames), and [`VerificationServer`] runs a worker pool
//! that decodes, verifies and replies — concurrency via `crossbeam`
//! channels, shared state via `parking_lot`.

pub mod protocol;

use crate::pipeline::DefenseSystem;
use crate::session::SessionData;
use crate::verdict::DefenseVerdict;
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use protocol::{decode_frame, encode_response, Message};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Work item flowing to the pool.
struct Job {
    frame: Vec<u8>,
    reply: Sender<Vec<u8>>,
}

/// Aggregate server statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Requests fully processed.
    pub processed: u64,
    /// Requests rejected at the protocol layer.
    pub protocol_errors: u64,
    /// Total verification compute time.
    pub total_latency: Duration,
}

impl ServerStats {
    /// Mean verification latency.
    pub fn mean_latency(&self) -> Duration {
        if self.processed == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.processed as u32
        }
    }
}

/// A running verification server with a worker pool.
pub struct VerificationServer {
    tx: Option<Sender<Job>>,
    /// Dropping this closes the shutdown channel the workers select on.
    /// (Clients hold clones of `tx`, so closing `tx` alone would not stop
    /// the pool.)
    shutdown_tx: Option<Sender<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<ServerStats>>,
}

impl VerificationServer {
    /// Spawns the server with `workers` threads sharing `system`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn(system: DefenseSystem, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let system = Arc::new(system);
        let stats = Arc::new(Mutex::new(ServerStats::default()));
        let (tx, rx) = unbounded::<Job>();
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let shutdown_rx = shutdown_rx.clone();
                let system = Arc::clone(&system);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    loop {
                        let job = crossbeam::channel::select! {
                            recv(rx) -> job => match job {
                                Ok(job) => job,
                                Err(_) => break,
                            },
                            recv(shutdown_rx) -> _ => break,
                        };
                        let response = match decode_frame(&job.frame) {
                            Ok(Message::VerifyRequest {
                                request_id,
                                session,
                            }) => {
                                let start = Instant::now();
                                let verdict = system.verify(&session);
                                let elapsed = start.elapsed();
                                {
                                    let mut s = stats.lock();
                                    s.processed += 1;
                                    s.total_latency += elapsed;
                                }
                                encode_response(request_id, &verdict)
                            }
                            Ok(other) => {
                                stats.lock().protocol_errors += 1;
                                protocol::encode_error(
                                    other.request_id(),
                                    "unexpected message type",
                                )
                            }
                            Err(e) => {
                                stats.lock().protocol_errors += 1;
                                protocol::encode_error(0, &format!("decode error: {e}"))
                            }
                        };
                        // The client may have given up; ignore send errors.
                        let _ = job.reply.send(response);
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            shutdown_tx: Some(shutdown_tx),
            workers: handles,
            stats,
        }
    }

    /// A client handle for submitting sessions.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.as_ref().expect("server running").clone(),
            next_id: Arc::new(Mutex::new(1)),
        }
    }

    /// Snapshot of server statistics.
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// Stops the workers and waits for them to drain. In-flight requests
    /// complete; queued-but-unstarted requests are dropped (their clients
    /// see [`ClientError::Disconnected`]).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown_tx.take(); // closing the shutdown channel stops the pool
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for VerificationServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A client handle (cheaply cloneable).
#[derive(Clone)]
pub struct Client {
    tx: Sender<Job>,
    next_id: Arc<Mutex<u64>>,
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Server is gone.
    Disconnected,
    /// Server replied with a protocol-level error.
    Server(String),
    /// Reply could not be decoded.
    BadReply(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected => write!(f, "server disconnected"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::BadReply(m) => write!(f, "bad reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// Sends a session for verification and waits for the verdict,
    /// exercising the full encode → wire → decode path.
    pub fn verify(&self, session: &SessionData) -> Result<DefenseVerdict, ClientError> {
        let id = {
            let mut n = self.next_id.lock();
            let id = *n;
            *n += 1;
            id
        };
        let frame = protocol::encode_request(id, session);
        let raw = self.send_raw(frame)?;
        match decode_frame(&raw) {
            Ok(Message::VerifyResponse {
                request_id,
                verdict,
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                Ok(verdict)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Sends a raw frame (tests use this for failure injection).
    pub fn send_raw(&self, frame: Vec<u8>) -> Result<Vec<u8>, ClientError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Job {
                frame,
                reply: reply_tx,
            })
            .map_err(|_| ClientError::Disconnected)?;
        reply_rx.recv().map_err(|_| ClientError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use magshield_simkit::rng::SimRng;

    fn server() -> (VerificationServer, crate::scenario::UserContext) {
        let (system, user) = crate::test_support::shared_tiny_system();
        (VerificationServer::spawn(system.clone(), 2), user.clone())
    }

    #[test]
    fn round_trip_verification() {
        let (srv, user) = server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(51));
        let verdict = client.verify(&session).expect("verdict");
        assert!(verdict.accepted());
        assert_eq!(srv.stats().processed, 1);
        srv.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (srv, user) = server();
        let sessions: Vec<_> = (0..6)
            .map(|i| ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(60 + i)))
            .collect();
        let mut joins = Vec::new();
        for s in sessions {
            let c = srv.client();
            joins.push(std::thread::spawn(move || c.verify(&s).unwrap().accepted()));
        }
        for j in joins {
            assert!(j.join().unwrap());
        }
        assert_eq!(srv.stats().processed, 6);
        assert!(srv.stats().mean_latency() > Duration::ZERO);
        srv.shutdown();
    }

    #[test]
    fn malformed_frame_yields_protocol_error() {
        let (srv, _user) = server();
        let client = srv.client();
        let raw = client.send_raw(vec![1, 2, 3]).expect("reply");
        match decode_frame(&raw) {
            Ok(Message::Error { .. }) => {}
            other => panic!("expected protocol error, got {other:?}"),
        }
        assert_eq!(srv.stats().protocol_errors, 1);
        srv.shutdown();
    }

    #[test]
    fn shutdown_disconnects_clients() {
        let (srv, user) = server();
        let client = srv.client();
        srv.shutdown();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(52));
        assert_eq!(client.verify(&session), Err(ClientError::Disconnected));
    }
}

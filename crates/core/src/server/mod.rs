//! Client–server deployment (§V of the paper).
//!
//! The paper's prototype splits into an Android client that captures
//! sensor data and a Tornado server backend that runs the verification
//! pipeline over a secure socket. This module reproduces that
//! decomposition in-process: [`protocol`] defines the binary wire format
//! (length-prefixed frames), and [`VerificationServer`] runs a worker pool
//! that decodes, verifies and replies — concurrency via `crossbeam`
//! channels, shared state via `parking_lot`.
//!
//! Protocol v3 adds batch verification: a `Message::BatchRequest`
//! carries many sessions in one frame; workers verify each micro-batch
//! stage-major via [`DefenseSystem::verify_batch_with_policy`] (so under
//! [`ExecutionPolicy::ShortCircuit`] cheap rejections prune the ASV
//! workload) under an optional per-batch deadline
//! ([`ServerConfig::batch_deadline`]) — sessions whose processing cannot
//! start in budget come back as explicit
//! [`BatchOutcome::Shed`](crate::batch::BatchOutcome) entries, never a
//! silent gap. [`Client::submit`] / [`PendingVerdict::wait`] provide the
//! streaming client path, [`Client::verify_batch`] the one-frame path.
//!
//! Protocol v4 adds the model-lifecycle operations of the
//! training/serving split: `Message::Enroll` enrolls a new speaker into
//! the server's live [`ModelRegistry`](crate::registry::ModelRegistry)
//! without a restart, and `Message::SwapBundle` atomically replaces the
//! whole served [`ModelBundle`] —
//! in-flight verifications finish on the snapshot they pinned, and every
//! verdict returns the registry generation that produced it.
//!
//! The server is instrumented against `magshield-obs` (DESIGN.md §7):
//! `server.queue.wait.seconds` (enqueue→dequeue) and
//! `server.compute.seconds` histograms, a `server.queue.depth` gauge
//! (decremented via an RAII guard so a panicking worker cannot leak it),
//! a `server.worker.panics` counter, `server.batch.size.sessions` /
//! `server.batch.shed` for the batch path, and per-worker
//! `server.worker.<i>.processed` counters, all sharing the
//! [`DefenseSystem`]'s registry so one snapshot covers pipeline and
//! server alike. Clients can fetch a [`ServerStatsSnapshot`] over the
//! wire via [`Client::stats`] (`Message::StatsRequest`).
//!
//! Protocol v5 adds the telemetry plane (DESIGN.md §12):
//! [`Client::metrics`] scrapes the full labeled snapshot — every
//! counter/gauge/histogram series with exemplars — plus its text
//! exposition (`Message::MetricsRequest`), and [`Client::health`]
//! fetches the verdict of an in-server [`SloEngine`] evaluating
//! declarative [`SloSpec`]s by multi-window burn rate, with built-in
//! guards on `server.worker.panics` and the admission shed ratio
//! (`Message::HealthRequest`). Both supersede the scalar
//! `StatsRequest` view, which remains served.
//!
//! Protocol v6 adds streaming continuous verification (DESIGN.md §13):
//! [`Client::open_stream`] opens a server-side
//! [`StreamingVerification`] keyed by a client-chosen stream id,
//! [`ClientStream::send_chunk`] feeds capture chunks through the
//! incremental cascade — a provably monotone bound can settle the
//! session mid-stream with a `StreamVerdictKind::EarlyReject` reply
//! long before the utterance ends — and [`ClientStream::close`]
//! finalizes the genuine path with a verdict decision-identical to a
//! one-shot verification of the same samples. Open-stream count and
//! accumulated samples are capped ([`ServerConfig::max_open_streams`],
//! [`ServerConfig::max_stream_samples`]); unknown ids, duplicate opens
//! and chunks after a terminal verdict are protocol errors. First-chunk
//! → terminal-verdict latency feeds the
//! `server.stream.first_verdict.seconds` histogram, guarded by the
//! `stream-verdict-latency` SLO in
//! [`VerificationServer::default_slos`].

pub mod protocol;

use crate::artifact::ModelBundle;
use crate::batch::{BatchOutcome, ShedReason};
use crate::cascade::ExecutionPolicy;
use crate::pipeline::DefenseSystem;
use crate::session::SessionData;
use crate::stream::{
    SessionChunk, StreamConfig, StreamEvent, StreamOpenInfo, StreamingVerification,
};
use crate::verdict::DefenseVerdict;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use magshield_ml::codec::BinaryCodec;
use magshield_obs::export::render_text;
use magshield_obs::metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
use magshield_obs::slo::{HealthReport, SloEngine, SloSpec};
use parking_lot::Mutex;
use protocol::{decode_frame, encode_response, Message, StreamVerdictKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Work item flowing to the pool.
struct Job {
    frame: Vec<u8>,
    reply: Sender<Vec<u8>>,
    /// When the client enqueued the frame (queue-wait attribution).
    enqueued: Instant,
    /// Claim on the queue-depth gauge; the worker releases it at pickup,
    /// and a job dropped undelivered (send failure, shutdown with frames
    /// still queued) releases it on drop.
    depth: Option<DepthGuard>,
}

/// A frame that makes the receiving worker panic mid-job. Exists so
/// failure-injection tests can prove the panic path cannot leak the
/// queue-depth gauge or kill the pool; it can never collide with a real
/// frame (wrong magic).
#[doc(hidden)]
pub const PANIC_FRAME: &[u8] = b"\xDE\xAD\xBE\xEFpanic-injection";

/// RAII claim on the queue-depth gauge: increments on construction,
/// decrements on drop. Carried inside the [`Job`] itself, so the gauge
/// is restored on *every* path a job can take — worker pickup, a failed
/// send, a panic unwinding through the worker loop, or the job being
/// dropped in the channel at shutdown — instead of relying on a `dec()`
/// statement that must be reached.
struct DepthGuard(Gauge);

impl DepthGuard {
    fn new(gauge: Gauge) -> Self {
        gauge.inc();
        Self(gauge)
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Server sizing and policy, consumed by
/// [`VerificationServer::spawn_with_config`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads sharing the trained system.
    pub workers: usize,
    /// Cascade execution policy for the whole pool.
    pub policy: ExecutionPolicy,
    /// Most sessions of a batch request verified in one stage-major
    /// micro-batch (bounds per-chunk latency and memory).
    pub max_batch: usize,
    /// Batch-request sessions whose chunk has not started processing
    /// within this budget of the request's enqueue are shed with
    /// [`ShedReason::DeadlineExceeded`].
    pub batch_deadline: Option<Duration>,
    /// Most concurrently open verification streams (protocol v6); a
    /// `StreamOpen` past the cap is refused with a protocol error, so a
    /// hostile client cannot grow server memory one open frame at a
    /// time.
    pub max_open_streams: usize,
    /// Most accumulated samples (audio + IMU) one stream may hold; a
    /// chunk that would exceed it terminates the stream with a protocol
    /// error. Bounds per-stream memory against endless hostile chunking.
    pub max_stream_samples: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            policy: ExecutionPolicy::FullEvaluation,
            max_batch: 16,
            batch_deadline: None,
            max_open_streams: 1024,
            // ~5.8 minutes of 48 kHz audio — far beyond any
            // authentication utterance, tight enough to bound memory.
            max_stream_samples: 16 << 20,
        }
    }
}

/// Aggregate server statistics (legacy scalar view).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Requests fully processed.
    pub processed: u64,
    /// Requests rejected at the protocol layer.
    pub protocol_errors: u64,
    /// Total verification compute time.
    pub total_latency: Duration,
}

/// A point-in-time copy of the server's observable state, servable over
/// the wire protocol (`Message::StatsResponse`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Requests fully processed.
    pub processed: u64,
    /// Requests rejected at the protocol layer.
    pub protocol_errors: u64,
    /// Frames currently enqueued and not yet picked up by a worker.
    pub queue_depth: i64,
    /// Requests processed per worker, indexed by worker id.
    pub per_worker_processed: Vec<u64>,
    /// Enqueue→dequeue wait-time histogram.
    pub queue_wait: HistogramSnapshot,
    /// Verification compute-time histogram.
    pub compute: HistogramSnapshot,
}

/// One server-side verification stream. The outer map lock is held only
/// to look up / insert / remove entries; the per-stream lock serializes
/// chunk ingestion for that stream while other streams (and batch
/// traffic) proceed in parallel on other workers. `None` marks a stream
/// whose terminal verdict is being produced by another worker.
type StreamSlot = Arc<Mutex<Option<StreamingVerification>>>;

/// State shared between workers, clients and the server handle.
struct Shared {
    stats: Mutex<ServerStats>,
    registry: Registry,
    queue_depth: Gauge,
    queue_wait: Histogram,
    compute: Histogram,
    batch_size: Histogram,
    batch_shed: Counter,
    worker_panics: Counter,
    worker_processed: Vec<Counter>,
    /// Open verification streams keyed by client-chosen stream id
    /// (protocol v6).
    streams: Mutex<HashMap<u64, StreamSlot>>,
    /// Gauge mirror of `streams.len()`.
    streams_open: Gauge,
    /// First chunk → terminal verdict latency, the streaming SLO's
    /// source series.
    stream_first_verdict: Histogram,
    /// The SLO burn-rate engine, evaluated on demand by health
    /// requests against the live registry snapshot.
    slo: Mutex<SloEngine>,
    /// Spawn instant — the monotonic time base the SLO engine's burn
    /// windows are anchored to.
    started: Instant,
}

impl Shared {
    fn snapshot(&self) -> ServerStatsSnapshot {
        let stats = *self.stats.lock();
        ServerStatsSnapshot {
            processed: stats.processed,
            protocol_errors: stats.protocol_errors,
            queue_depth: self.queue_depth.get(),
            per_worker_processed: self.worker_processed.iter().map(|c| c.get()).collect(),
            queue_wait: self.queue_wait.snapshot(),
            compute: self.compute.snapshot(),
        }
    }
}

/// A running verification server with a worker pool.
pub struct VerificationServer {
    tx: Option<Sender<Job>>,
    /// Dropping this closes the shutdown channel the workers select on.
    /// (Clients hold clones of `tx`, so closing `tx` alone would not stop
    /// the pool.)
    shutdown_tx: Option<Sender<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl VerificationServer {
    /// Spawns the server with `workers` threads sharing `system`, under
    /// [`ExecutionPolicy::FullEvaluation`] (every stage always runs).
    ///
    /// Server metrics are registered in `system`'s own registry, so
    /// [`VerificationServer::metrics`] exposes pipeline stage histograms
    /// and server queue/compute histograms side by side.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn(system: DefenseSystem, workers: usize) -> Self {
        Self::spawn_with_policy(system, workers, ExecutionPolicy::FullEvaluation)
    }

    /// Recover-then-serve: opens the durable store at `dir`
    /// ([`DefenseSystem::open_durable`] — golden base + bit-exact WAL
    /// replay, truncating a torn tail), then spawns the worker pool on
    /// the recovered system. Returns the server together with the
    /// [`RecoveredState`](crate::store::RecoveredState) so operators can
    /// log what replay did. `Enroll` / `SwapBundle` requests against this
    /// server are journaled before they are acked.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn_durable(
        dir: &std::path::Path,
        workers: usize,
    ) -> Result<(Self, crate::store::RecoveredState), crate::store::StoreError> {
        let (system, recovered) = DefenseSystem::open_durable(dir)?;
        Ok((Self::spawn(system, workers), recovered))
    }

    /// Spawns the server with an explicit cascade execution policy,
    /// selected once at spawn time for the whole worker pool.
    /// [`ExecutionPolicy::ShortCircuit`] spares the ASV back end sessions
    /// an earlier (cheaper) stage already condemned; clients then see
    /// verdicts whose skipped stages round-trip over the wire as
    /// [`StageOutcome::Skipped`](crate::verdict::StageOutcome) entries.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn_with_policy(
        system: DefenseSystem,
        workers: usize,
        policy: ExecutionPolicy,
    ) -> Self {
        Self::spawn_with_config(
            system,
            ServerConfig {
                workers,
                policy,
                ..ServerConfig::default()
            },
        )
    }

    /// Spawns the server under a full [`ServerConfig`] (worker count,
    /// execution policy, batch chunking, batch deadline), guarding
    /// health with [`VerificationServer::default_slos`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers == 0` or `cfg.max_batch == 0`.
    pub fn spawn_with_config(system: DefenseSystem, cfg: ServerConfig) -> Self {
        Self::spawn_with_slos(system, cfg, Self::default_slos())
    }

    /// The stock SLO objectives every server evaluates unless
    /// [`VerificationServer::spawn_with_slos`] overrides them: 99% of
    /// end-to-end verifications within 500 ms, and 99% of streaming
    /// sessions reaching a terminal verdict within 500 ms of server
    /// compute after their first chunk. The engine's built-in guards
    /// (worker panics, admission shed ratio) apply regardless.
    pub fn default_slos() -> Vec<SloSpec> {
        vec![
            SloSpec::latency("verify-latency", "pipeline.verify.seconds", 0.5, 0.99),
            SloSpec::latency(
                "stream-verdict-latency",
                "server.stream.first_verdict.seconds",
                0.5,
                0.99,
            ),
        ]
    }

    /// Spawns the server with explicit SLO objectives for the health
    /// endpoint (`ServerConfig` stays `Copy`; objectives ride
    /// separately).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers == 0` or `cfg.max_batch == 0`.
    pub fn spawn_with_slos(system: DefenseSystem, cfg: ServerConfig, slos: Vec<SloSpec>) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.max_batch > 0, "need max_batch > 0");
        let registry = system.metrics().clone();
        let shared = Arc::new(Shared {
            stats: Mutex::new(ServerStats::default()),
            queue_depth: registry.gauge("server.queue.depth"),
            queue_wait: registry.histogram("server.queue.wait.seconds"),
            compute: registry.histogram("server.compute.seconds"),
            batch_size: registry.histogram("server.batch.size.sessions"),
            batch_shed: registry.counter("server.batch.shed"),
            worker_panics: registry.counter("server.worker.panics"),
            worker_processed: (0..cfg.workers)
                .map(|i| registry.counter(&format!("server.worker.{i}.processed")))
                .collect(),
            streams: Mutex::new(HashMap::new()),
            streams_open: registry.gauge("server.stream.open"),
            stream_first_verdict: registry.histogram("server.stream.first_verdict.seconds"),
            slo: Mutex::new(SloEngine::new(slos)),
            started: Instant::now(),
            registry,
        });
        let system = Arc::new(system);
        let (tx, rx) = unbounded::<Job>();
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let handles = (0..cfg.workers)
            .map(|worker_id| {
                let rx = rx.clone();
                let shutdown_rx = shutdown_rx.clone();
                let system = Arc::clone(&system);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    loop {
                        let mut job = crossbeam::channel::select! {
                            recv(rx) -> job => match job {
                                Ok(job) => job,
                                Err(_) => break,
                            },
                            recv(shutdown_rx) -> _ => break,
                        };
                        // Picked up: release the queue-depth claim (the
                        // gauge counts enqueued-not-yet-started frames).
                        drop(job.depth.take());
                        shared.queue_wait.record(job.enqueued.elapsed());
                        let reply = job.reply.clone();
                        // A panic in decoding or verification is
                        // contained to the job: the client gets an error
                        // reply and the worker lives on.
                        let response = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            handle_job(&job, &system, &shared, worker_id, &cfg)
                        }))
                        .unwrap_or_else(|_| {
                            shared.worker_panics.inc();
                            protocol::encode_error(0, "internal error: worker panicked")
                        });
                        // The client may have given up; ignore send errors.
                        let _ = reply.send(response);
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            shutdown_tx: Some(shutdown_tx),
            workers: handles,
            shared,
        }
    }

    /// A client handle for submitting sessions.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.as_ref().expect("server running").clone(),
            next_id: Arc::new(Mutex::new(1)),
            queue_depth: self.shared.queue_depth.clone(),
        }
    }

    /// Snapshot of the legacy scalar statistics.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock()
    }

    /// Full observable state: scalar counters plus queue-wait and compute
    /// histograms and per-worker processed counts.
    pub fn stats_snapshot(&self) -> ServerStatsSnapshot {
        self.shared.snapshot()
    }

    /// The metrics registry (shared with the [`DefenseSystem`], so it
    /// also carries the `pipeline.<stage>.seconds` histograms).
    pub fn metrics(&self) -> &Registry {
        &self.shared.registry
    }

    /// Evaluates the SLO engine against the live registry in-process
    /// (the wire path is [`Client::health`]). Each call advances the
    /// engine's burn-window state.
    pub fn health(&self) -> HealthReport {
        let snap = self.shared.registry.snapshot();
        let now_s = self.shared.started.elapsed().as_secs_f64();
        self.shared.slo.lock().observe(now_s, &snap)
    }

    /// Stops the workers and waits for them to drain. In-flight requests
    /// complete; queued-but-unstarted requests are dropped (their clients
    /// see [`ClientError::Disconnected`]).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown_tx.take(); // closing the shutdown channel stops the pool
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for VerificationServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Decodes and executes one job, returning the reply frame. Runs inside
/// the worker's `catch_unwind`, so a panic anywhere in here is contained
/// to the job.
fn handle_job(
    job: &Job,
    system: &DefenseSystem,
    shared: &Shared,
    worker_id: usize,
    cfg: &ServerConfig,
) -> Vec<u8> {
    if job.frame == PANIC_FRAME {
        panic!("injected worker panic");
    }
    match decode_frame(&job.frame) {
        Ok(Message::VerifyRequest {
            request_id,
            session,
        }) => {
            let start = Instant::now();
            let verdict = system.verify_with_policy(&session, cfg.policy);
            let elapsed = start.elapsed();
            shared.compute.record(elapsed);
            shared.worker_processed[worker_id].inc();
            {
                let mut s = shared.stats.lock();
                s.processed += 1;
                s.total_latency += elapsed;
            }
            encode_response(request_id, &verdict)
        }
        Ok(Message::BatchRequest {
            request_id,
            sessions,
        }) => {
            shared.batch_size.record_secs(sessions.len() as f64);
            // The deadline is anchored at enqueue time: time spent
            // waiting in the queue counts against the batch's budget.
            let deadline = cfg.batch_deadline.map(|d| job.enqueued + d);
            let start = Instant::now();
            let mut outcomes: Vec<BatchOutcome> = Vec::with_capacity(sessions.len());
            for chunk in sessions.chunks(cfg.max_batch) {
                // Checked per chunk, before its stage-major run starts:
                // an expired budget sheds the remaining sessions instead
                // of burning ASV compute on answers nobody awaits.
                if deadline.is_some_and(|d| Instant::now() > d) {
                    shared.batch_shed.add(chunk.len() as u64);
                    outcomes.extend(
                        chunk
                            .iter()
                            .map(|_| BatchOutcome::Shed(ShedReason::DeadlineExceeded)),
                    );
                    continue;
                }
                let refs: Vec<&SessionData> = chunk.iter().collect();
                let verdicts = system.verify_batch_with_policy(&refs, cfg.policy);
                outcomes.extend(verdicts.into_iter().map(BatchOutcome::Verdict));
            }
            let elapsed = start.elapsed();
            shared.compute.record(elapsed);
            let verified = outcomes.iter().filter(|o| !o.is_shed()).count() as u64;
            shared.worker_processed[worker_id].add(verified);
            {
                let mut s = shared.stats.lock();
                s.processed += verified;
                s.total_latency += elapsed;
            }
            protocol::encode_batch_response(request_id, &outcomes)
        }
        Ok(Message::StatsRequest { request_id }) => {
            protocol::encode_stats_response(request_id, &shared.snapshot())
        }
        Ok(Message::MetricsRequest { request_id }) => {
            // Non-draining scrape: exemplar windows stay intact for the
            // trace-log flusher (DESIGN.md §12).
            let snap = shared.registry.snapshot();
            let exposition = render_text(&snap);
            protocol::encode_metrics_response(request_id, &snap, &exposition)
        }
        Ok(Message::HealthRequest { request_id }) => {
            let snap = shared.registry.snapshot();
            let now_s = shared.started.elapsed().as_secs_f64();
            let report = shared.slo.lock().observe(now_s, &snap);
            protocol::encode_health_response(request_id, &report)
        }
        Ok(Message::Enroll {
            request_id,
            speaker_id,
            utterances,
        }) => {
            // Reject degenerate enrollments before touching the registry:
            // an empty enrollment would publish a generation serving a
            // model trained on nothing.
            if utterances.is_empty() || utterances.iter().any(|u| u.is_empty()) {
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    "enrollment needs at least one utterance, all non-empty",
                );
            }
            let refs: Vec<&[f64]> = utterances.iter().map(|u| u.as_slice()).collect();
            // Journaled when the system has a durable store attached
            // (Server::spawn_durable): the record is fsynced to the WAL
            // before the registry publishes, so an acked enrollment
            // survives a crash.
            match system.try_enroll_speaker(speaker_id, &refs) {
                Ok(generation) => {
                    protocol::encode_enroll_response(request_id, speaker_id, generation)
                }
                Err(e) => {
                    shared.stats.lock().protocol_errors += 1;
                    protocol::encode_error(request_id, &format!("enrollment not journaled: {e}"))
                }
            }
        }
        Ok(Message::SwapBundle {
            request_id,
            bundle_bytes,
        }) => match ModelBundle::from_bytes(&bundle_bytes) {
            Ok(bundle) => match system.try_swap_bundle(bundle) {
                Ok(generation) => protocol::encode_swap_bundle_response(request_id, generation),
                Err(e) => {
                    shared.stats.lock().protocol_errors += 1;
                    protocol::encode_error(request_id, &format!("bundle rejected: {e}"))
                }
            },
            Err(e) => {
                shared.stats.lock().protocol_errors += 1;
                protocol::encode_error(request_id, &format!("bundle decode error: {e}"))
            }
        },
        Ok(Message::StreamOpen {
            request_id,
            stream_id,
            info,
            stream,
        }) => {
            let mut streams = shared.streams.lock();
            if streams.len() >= cfg.max_open_streams {
                drop(streams);
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!("too many open streams (cap {})", cfg.max_open_streams),
                );
            }
            if streams.contains_key(&stream_id) {
                drop(streams);
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!("stream {stream_id} already open"),
                );
            }
            let verification = system.open_stream(&info, stream);
            streams.insert(stream_id, Arc::new(Mutex::new(Some(verification))));
            shared.streams_open.set(streams.len() as i64);
            drop(streams);
            protocol::encode_stream_verdict(
                request_id,
                stream_id,
                StreamVerdictKind::Pending,
                0,
                None,
            )
        }
        Ok(Message::StreamChunk {
            request_id,
            stream_id,
            chunk,
        }) => {
            // Clone the slot Arc under the map lock, then ingest under
            // the per-stream lock only: chunks of the same stream
            // serialize (a stream is a stateful pipeline), while other
            // streams and batch traffic proceed on other workers.
            let Some(slot) = shared.streams.lock().get(&stream_id).cloned() else {
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!("unknown stream id {stream_id}"),
                );
            };
            let start = Instant::now();
            let mut guard = slot.lock();
            let Some(verification) = guard.as_mut() else {
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!("stream {stream_id} already terminated"),
                );
            };
            let ingested = chunk.audio.len()
                + chunk.audio2.len()
                + chunk.mag.len()
                + chunk.accel.len()
                + chunk.gyro.len();
            if verification.audio_samples() + verification.imu_samples() + ingested
                > cfg.max_stream_samples
            {
                // Kill, don't just refuse: a client that hit the budget
                // is either hostile or broken, and keeping the state
                // around would let it retry forever.
                *guard = None;
                drop(guard);
                remove_stream(shared, stream_id);
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!(
                        "stream {stream_id} exceeded the accumulated sample budget ({})",
                        cfg.max_stream_samples
                    ),
                );
            }
            match verification.ingest(&chunk, &system.config, system.obs()) {
                Ok(StreamEvent::Progress(progress)) => {
                    shared.compute.record(start.elapsed());
                    protocol::encode_stream_verdict(
                        request_id,
                        stream_id,
                        StreamVerdictKind::Pending,
                        progress.chunks,
                        None,
                    )
                }
                Ok(StreamEvent::EarlyReject(verdict)) => {
                    let (chunks, age) = (verification.chunks(), verification.age());
                    *guard = None;
                    drop(guard);
                    finish_stream(shared, worker_id, stream_id, age, start.elapsed());
                    protocol::encode_stream_verdict(
                        request_id,
                        stream_id,
                        StreamVerdictKind::EarlyReject,
                        chunks,
                        Some(&verdict),
                    )
                }
                Ok(StreamEvent::ReverifyReject(verdict)) => {
                    let (chunks, age) = (verification.chunks(), verification.age());
                    *guard = None;
                    drop(guard);
                    finish_stream(shared, worker_id, stream_id, age, start.elapsed());
                    protocol::encode_stream_verdict(
                        request_id,
                        stream_id,
                        StreamVerdictKind::ReverifyReject,
                        chunks,
                        Some(&verdict),
                    )
                }
                Err(_) => {
                    // Unreachable in practice — terminated streams leave
                    // the table — but a hostile interleaving race still
                    // gets a clean protocol error, not a panic.
                    shared.stats.lock().protocol_errors += 1;
                    protocol::encode_error(
                        request_id,
                        &format!("stream {stream_id} already terminated"),
                    )
                }
            }
        }
        Ok(Message::StreamClose {
            request_id,
            stream_id,
        }) => {
            let Some(slot) = shared.streams.lock().get(&stream_id).cloned() else {
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!("unknown stream id {stream_id}"),
                );
            };
            let start = Instant::now();
            let Some(verification) = slot.lock().take() else {
                shared.stats.lock().protocol_errors += 1;
                return protocol::encode_error(
                    request_id,
                    &format!("stream {stream_id} already terminated"),
                );
            };
            let (chunks, age) = (verification.chunks(), verification.age());
            match verification.finalize(&system.config, system.obs()) {
                Ok((verdict, _trace)) => {
                    finish_stream(shared, worker_id, stream_id, age, start.elapsed());
                    protocol::encode_stream_verdict(
                        request_id,
                        stream_id,
                        StreamVerdictKind::Final,
                        chunks,
                        Some(&verdict),
                    )
                }
                Err(_) => {
                    shared.stats.lock().protocol_errors += 1;
                    protocol::encode_error(
                        request_id,
                        &format!("stream {stream_id} already terminated"),
                    )
                }
            }
        }
        Ok(other) => {
            shared.stats.lock().protocol_errors += 1;
            protocol::encode_error(other.request_id(), "unexpected message type")
        }
        Err(e) => {
            shared.stats.lock().protocol_errors += 1;
            protocol::encode_error(0, &format!("decode error: {e}"))
        }
    }
}

/// Drops a stream's table entry and re-mirrors the open-streams gauge.
fn remove_stream(shared: &Shared, stream_id: u64) {
    let mut streams = shared.streams.lock();
    streams.remove(&stream_id);
    shared.streams_open.set(streams.len() as i64);
}

/// Terminal-verdict bookkeeping shared by early-reject, re-verify
/// reject and close: the stream leaves the table, its first-chunk →
/// verdict age feeds the streaming SLO series, and the finishing chunk's
/// compute counts toward the worker like any one-shot verification.
fn finish_stream(
    shared: &Shared,
    worker_id: usize,
    stream_id: u64,
    age: Duration,
    elapsed: Duration,
) {
    remove_stream(shared, stream_id);
    shared.stream_first_verdict.record(age);
    shared.compute.record(elapsed);
    shared.worker_processed[worker_id].inc();
    let mut s = shared.stats.lock();
    s.processed += 1;
    s.total_latency += elapsed;
}

/// A client handle (cheaply cloneable).
#[derive(Clone)]
pub struct Client {
    tx: Sender<Job>,
    next_id: Arc<Mutex<u64>>,
    queue_depth: Gauge,
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Server is gone.
    Disconnected,
    /// Server replied with a protocol-level error.
    Server(String),
    /// Reply could not be decoded.
    BadReply(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected => write!(f, "server disconnected"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::BadReply(m) => write!(f, "bad reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl Client {
    fn next_id(&self) -> u64 {
        let mut n = self.next_id.lock();
        let id = *n;
        *n += 1;
        id
    }

    /// Sends a session for verification and waits for the verdict,
    /// exercising the full encode → wire → decode path.
    pub fn verify(&self, session: &SessionData) -> Result<DefenseVerdict, ClientError> {
        self.submit(session)?.wait()
    }

    /// Submits a session without waiting: the streaming half of the
    /// batch API. Submit many, then drain the [`PendingVerdict`]s —
    /// requests pipeline across the worker pool instead of serializing
    /// on one round trip each.
    pub fn submit(&self, session: &SessionData) -> Result<PendingVerdict, ClientError> {
        let id = self.next_id();
        let rx = self.send_frame(protocol::encode_request(id, session))?;
        Ok(PendingVerdict { id, rx })
    }

    /// Verifies a whole batch in one `Message::BatchRequest` frame
    /// (protocol v3). The server runs it stage-major in chunks of
    /// [`ServerConfig::max_batch`]; the reply carries one
    /// [`BatchOutcome`] per session in request order — a verdict, or an
    /// explicit shed when the server's batch deadline expired.
    pub fn verify_batch(&self, sessions: &[SessionData]) -> Result<Vec<BatchOutcome>, ClientError> {
        let id = self.next_id();
        let raw = self.send_raw(protocol::encode_batch_request(id, sessions))?;
        match decode_frame(&raw) {
            Ok(Message::BatchResponse {
                request_id,
                outcomes,
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                if outcomes.len() != sessions.len() {
                    return Err(ClientError::BadReply(format!(
                        "{} outcomes for {} sessions",
                        outcomes.len(),
                        sessions.len()
                    )));
                }
                Ok(outcomes)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Enrolls a new speaker online (`Message::Enroll`, protocol v4):
    /// the server trains a speaker model from the utterances against its
    /// current UBM and publishes it to the live registry — no restart.
    /// Returns the registry generation the enrollment published; verdicts
    /// stamped with that generation (or later) can claim the speaker.
    pub fn enroll(&self, speaker_id: u32, utterances: &[Vec<f64>]) -> Result<u64, ClientError> {
        let id = self.next_id();
        let raw = self.send_raw(protocol::encode_enroll(id, speaker_id, utterances))?;
        match decode_frame(&raw) {
            Ok(Message::EnrollResponse {
                request_id,
                speaker_id: echoed,
                generation,
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                if echoed != speaker_id {
                    return Err(ClientError::BadReply(format!(
                        "enrolled speaker {echoed} != requested {speaker_id}"
                    )));
                }
                Ok(generation)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Atomically replaces the server's whole model bundle
    /// (`Message::SwapBundle`, protocol v4). The bundle travels in its
    /// own checksummed encoding and is revalidated server-side; in-flight
    /// verifications finish on the snapshot they pinned. Returns the new
    /// registry generation.
    pub fn swap_bundle(&self, bundle: &ModelBundle) -> Result<u64, ClientError> {
        let id = self.next_id();
        let raw = self.send_raw(protocol::encode_swap_bundle(id, &bundle.to_bytes()))?;
        match decode_frame(&raw) {
            Ok(Message::SwapBundleResponse {
                request_id,
                generation,
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                Ok(generation)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Requests a statistics snapshot over the wire
    /// (`Message::StatsRequest` → `Message::StatsResponse`).
    pub fn stats(&self) -> Result<ServerStatsSnapshot, ClientError> {
        let id = self.next_id();
        let raw = self.send_raw(protocol::encode_stats_request(id))?;
        match decode_frame(&raw) {
            Ok(Message::StatsResponse { request_id, stats }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                Ok(stats)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Scrapes the full labeled-metrics snapshot over the wire
    /// (`Message::MetricsRequest` → `Message::MetricsResponse`,
    /// protocol v5): every series — labeled keys included, exemplars
    /// intact — plus the text exposition of the same snapshot.
    pub fn metrics(&self) -> Result<(MetricsSnapshot, String), ClientError> {
        let id = self.next_id();
        let raw = self.send_raw(protocol::encode_metrics_request(id))?;
        match decode_frame(&raw) {
            Ok(Message::MetricsResponse {
                request_id,
                snapshot,
                exposition,
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                Ok((snapshot, exposition))
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Fetches the SLO engine's health verdict over the wire
    /// (`Message::HealthRequest` → `Message::HealthResponse`, protocol
    /// v5). Each request advances the server engine's burn-window
    /// state against a fresh registry snapshot.
    pub fn health(&self) -> Result<HealthReport, ClientError> {
        let id = self.next_id();
        let raw = self.send_raw(protocol::encode_health_request(id))?;
        match decode_frame(&raw) {
            Ok(Message::HealthResponse { request_id, report }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                Ok(report)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Opens a continuous-verification stream (`Message::StreamOpen`,
    /// protocol v6). The returned [`ClientStream`] feeds capture chunks
    /// with [`ClientStream::send_chunk`] — each reply is either a
    /// `Pending` progress ack or a terminal mid-stream rejection — and
    /// settles the genuine path with [`ClientStream::close`]. Stream ids
    /// are process-unique, so concurrently cloned clients never collide.
    pub fn open_stream(
        &self,
        info: &StreamOpenInfo,
        stream: StreamConfig,
    ) -> Result<ClientStream, ClientError> {
        let id = self.next_id();
        let stream_id = NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed);
        let raw = self.send_raw(protocol::encode_stream_open(id, stream_id, info, stream))?;
        match decode_frame(&raw) {
            Ok(Message::StreamVerdict {
                request_id,
                stream_id: echoed,
                kind: StreamVerdictKind::Pending,
                ..
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                if echoed != stream_id {
                    return Err(ClientError::BadReply(format!(
                        "opened stream {echoed} != requested {stream_id}"
                    )));
                }
                Ok(ClientStream {
                    client: self.clone(),
                    stream_id,
                })
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Sends a raw frame (tests use this for failure injection).
    pub fn send_raw(&self, frame: Vec<u8>) -> Result<Vec<u8>, ClientError> {
        self.send_frame(frame)?
            .recv()
            .map_err(|_| ClientError::Disconnected)
    }

    /// Enqueues a frame and returns the reply channel without blocking.
    fn send_frame(&self, frame: Vec<u8>) -> Result<Receiver<Vec<u8>>, ClientError> {
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            frame,
            reply: reply_tx,
            enqueued: Instant::now(),
            // Incremented on construction; a failed send returns (and
            // drops) the job, restoring the gauge with it.
            depth: Some(DepthGuard::new(self.queue_depth.clone())),
        };
        if self.tx.send(job).is_err() {
            return Err(ClientError::Disconnected);
        }
        Ok(reply_rx)
    }
}

/// Process-wide stream-id source: client-chosen ids must be unique
/// across every client handle talking to the same in-process server.
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

/// A server-side continuous-verification stream, opened with
/// [`Client::open_stream`] (protocol v6).
pub struct ClientStream {
    client: Client,
    stream_id: u64,
}

impl ClientStream {
    /// The wire stream id (useful for correlating server logs).
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Feeds one capture chunk and waits for the server's incremental
    /// answer: `(Pending, None)` while the cascade keeps listening, or a
    /// terminal `(EarlyReject | ReverifyReject, Some(verdict))` when a
    /// monotone bound (or re-verification pass) settled mid-stream. A
    /// terminal reply retires the server-side stream — further chunks
    /// come back as protocol errors.
    pub fn send_chunk(
        &self,
        chunk: &SessionChunk,
    ) -> Result<(StreamVerdictKind, Option<DefenseVerdict>), ClientError> {
        let id = self.client.next_id();
        let raw = self
            .client
            .send_raw(protocol::encode_stream_chunk(id, self.stream_id, chunk))?;
        self.expect_verdict(id, raw)
    }

    /// Ends the utterance: the server finalizes every stage on the
    /// accumulated capture and replies with the full-cascade verdict —
    /// decision-identical to a one-shot verification of the same
    /// samples.
    pub fn close(self) -> Result<DefenseVerdict, ClientError> {
        let id = self.client.next_id();
        let raw = self
            .client
            .send_raw(protocol::encode_stream_close(id, self.stream_id))?;
        match self.expect_verdict(id, raw)? {
            (StreamVerdictKind::Final, Some(verdict)) => Ok(verdict),
            (kind, _) => Err(ClientError::BadReply(format!(
                "close replied with {kind:?} instead of a final verdict"
            ))),
        }
    }

    fn expect_verdict(
        &self,
        id: u64,
        raw: Vec<u8>,
    ) -> Result<(StreamVerdictKind, Option<DefenseVerdict>), ClientError> {
        match decode_frame(&raw) {
            Ok(Message::StreamVerdict {
                request_id,
                stream_id,
                kind,
                verdict,
                ..
            }) => {
                if request_id != id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {id}"
                    )));
                }
                if stream_id != self.stream_id {
                    return Err(ClientError::BadReply(format!(
                        "reply for stream {stream_id} != stream {}",
                        self.stream_id
                    )));
                }
                Ok((kind, verdict))
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }
}

/// A submitted-but-unresolved verification: the handle returned by
/// [`Client::submit`]. [`PendingVerdict::wait`] blocks for the verdict.
pub struct PendingVerdict {
    id: u64,
    rx: Receiver<Vec<u8>>,
}

impl PendingVerdict {
    /// Blocks until the server replies, then decodes the verdict.
    pub fn wait(self) -> Result<DefenseVerdict, ClientError> {
        let raw = self.rx.recv().map_err(|_| ClientError::Disconnected)?;
        match decode_frame(&raw) {
            Ok(Message::VerifyResponse {
                request_id,
                verdict,
            }) => {
                if request_id != self.id {
                    return Err(ClientError::BadReply(format!(
                        "response id {request_id} != request id {}",
                        self.id
                    )));
                }
                Ok(verdict)
            }
            Ok(Message::Error { message, .. }) => Err(ClientError::Server(message)),
            Ok(_) => Err(ClientError::BadReply("unexpected message type".into())),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use magshield_simkit::rng::SimRng;

    fn server() -> (VerificationServer, crate::scenario::UserContext) {
        let (system, user) = crate::test_support::shared_tiny_system();
        // Fresh obs: the fixture system is shared across the whole test
        // binary, so a plain clone would leak other tests' counts into
        // this server's histograms.
        (
            VerificationServer::spawn(system.with_fresh_obs(), 2),
            user.clone(),
        )
    }

    #[test]
    fn round_trip_verification() {
        let (srv, user) = server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(51));
        let verdict = client.verify(&session).expect("verdict");
        assert!(verdict.accepted());
        assert_eq!(srv.stats().processed, 1);
        srv.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (srv, user) = server();
        let sessions: Vec<_> = (0..6)
            .map(|i| ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(60 + i)))
            .collect();
        let mut joins = Vec::new();
        for s in sessions {
            let c = srv.client();
            joins.push(std::thread::spawn(move || c.verify(&s).unwrap().accepted()));
        }
        for j in joins {
            assert!(j.join().unwrap());
        }
        let snap = srv.stats_snapshot();
        assert_eq!(snap.processed, 6);
        assert_eq!(snap.compute.count, 6);
        assert_eq!(snap.queue_wait.count, 6);
        assert!(snap.compute.p50() > 0.0);
        assert_eq!(snap.queue_depth, 0, "queue drains after replies");
        assert_eq!(snap.per_worker_processed.len(), 2);
        assert_eq!(snap.per_worker_processed.iter().sum::<u64>(), 6);
        srv.shutdown();
    }

    #[test]
    fn short_circuit_policy_round_trips_skipped_stages() {
        use crate::verdict::Component;
        use magshield_voice::attacks::AttackKind;
        use magshield_voice::devices::table_iv_catalog;
        use magshield_voice::profile::SpeakerProfile;

        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_policy(
            system.with_fresh_obs(),
            2,
            ExecutionPolicy::ShortCircuit,
        );
        let client = srv.client();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        let session = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(55));
        let verdict = client.verify(&session).expect("verdict");
        assert!(!verdict.accepted());
        // The expensive ASV stage was never run, and the wire protocol
        // preserved that fact end to end.
        let sk = verdict
            .skipped_of(Component::SpeakerIdentity)
            .expect("speaker_id short-circuited");
        assert_eq!(sk.cause, Component::Loudspeaker);
        assert_eq!(
            srv.metrics().counter("pipeline.speaker_id.skipped").get(),
            1
        );
        // An accepted session on the same server runs every stage (the
        // acceptance guard keeps this robust to per-platform RNG drift in
        // the simulated capture).
        let genuine = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(56));
        let v2 = client.verify(&genuine).expect("verdict");
        if v2.accepted() {
            assert_eq!(v2.skipped().count(), 0);
        }
        srv.shutdown();
    }

    #[test]
    fn batch_round_trips_verdicts_identical_to_sequential() {
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 2,
                policy: ExecutionPolicy::ShortCircuit,
                max_batch: 2, // force chunking: 5 sessions → 3 chunks
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let sessions: Vec<_> = (0..5)
            .map(|i| ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(150 + i)))
            .collect();
        let outcomes = client.verify_batch(&sessions).expect("batch reply");
        assert_eq!(outcomes.len(), 5);
        for (outcome, session) in outcomes.iter().zip(&sessions) {
            let expected = system.verify_with_policy(session, ExecutionPolicy::ShortCircuit);
            assert_eq!(
                outcome.verdict().expect("verified, not shed"),
                &expected,
                "batched wire verdict must be bit-identical to a sequential run"
            );
        }
        assert_eq!(srv.stats().processed, 5);
        let snap = srv.metrics().snapshot();
        assert!(snap.histograms["server.batch.size.sessions"].count >= 1);
        assert_eq!(snap.gauges["server.queue.depth"], 0);
        srv.shutdown();
    }

    #[test]
    fn streaming_submit_then_drain() {
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn(system.with_fresh_obs(), 2);
        let client = srv.client();
        let sessions: Vec<_> = (0..4)
            .map(|i| ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(160 + i)))
            .collect();
        // Submit everything before waiting on anything: the requests
        // pipeline across both workers.
        let pending: Vec<_> = sessions
            .iter()
            .map(|s| client.submit(s).expect("submit"))
            .collect();
        for (p, s) in pending.into_iter().zip(&sessions) {
            let verdict = p.wait().expect("verdict");
            assert_eq!(verdict, system.verify(s));
        }
        assert_eq!(srv.stats().processed, 4);
        srv.shutdown();
    }

    #[test]
    fn batch_deadline_sheds_over_the_wire() {
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 1,
                batch_deadline: Some(Duration::from_nanos(1)),
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let sessions: Vec<_> = (0..3)
            .map(|i| ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(170 + i)))
            .collect();
        let outcomes = client.verify_batch(&sessions).expect("batch reply");
        assert_eq!(outcomes.len(), 3, "shed sessions still get an outcome each");
        for o in &outcomes {
            assert_eq!(o, &BatchOutcome::Shed(ShedReason::DeadlineExceeded));
        }
        assert_eq!(srv.stats().processed, 0, "no compute spent past deadline");
        assert_eq!(srv.metrics().counter("server.batch.shed").get(), 3);
        srv.shutdown();
    }

    #[test]
    fn stats_over_the_wire() {
        let (srv, user) = server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(53));
        client.verify(&session).expect("verdict");
        let snap = client.stats().expect("stats over the wire");
        assert_eq!(snap.processed, 1);
        assert_eq!(snap.compute.count, 1);
        assert!(snap.compute.max_s() > 0.0);
        assert_eq!(snap, srv.stats_snapshot());
        srv.shutdown();
    }

    #[test]
    fn metrics_scrape_over_the_wire() {
        let (srv, user) = server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(57));
        client.verify(&session).expect("verdict");
        let (snap, exposition) = client.metrics().expect("metrics over the wire");
        assert!(snap.histograms.contains_key("server.compute.seconds"));
        assert!(snap.histograms.contains_key("pipeline.verify.seconds"));
        assert!(snap.counters.keys().any(|k| k.starts_with("pipeline.")));
        assert!(exposition.starts_with("# magshield metrics v1"));
        assert!(exposition.contains("server.compute.seconds_count"));
        // The scrape is non-draining: a second scrape sees the same
        // counts (no verifications in between).
        let (snap2, _) = client.metrics().expect("second scrape");
        assert_eq!(
            snap.histograms["pipeline.verify.seconds"].count,
            snap2.histograms["pipeline.verify.seconds"].count
        );
        srv.shutdown();
    }

    #[test]
    fn health_over_the_wire_starts_healthy() {
        use magshield_obs::slo::HealthState;
        let (srv, user) = server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(58));
        client.verify(&session).expect("verdict");
        let report = client.health().expect("health over the wire");
        assert_eq!(report.state, HealthState::Healthy);
        assert!(
            report.statuses.iter().any(|s| s.name == "verify-latency"),
            "default SLOs must be evaluated: {report:?}"
        );
        assert_eq!(report, srv.health());
        srv.shutdown();
    }

    #[test]
    fn server_metrics_include_pipeline_stages() {
        let (srv, user) = server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(54));
        client.verify(&session).expect("verdict");
        let snap = srv.metrics().snapshot();
        assert!(snap.histograms.contains_key("server.compute.seconds"));
        assert!(
            snap.histograms.contains_key("pipeline.distance.seconds"),
            "server registry must carry pipeline stage histograms"
        );
        srv.shutdown();
    }

    #[test]
    fn malformed_frame_yields_protocol_error() {
        let (srv, _user) = server();
        let client = srv.client();
        let raw = client.send_raw(vec![1, 2, 3]).expect("reply");
        match decode_frame(&raw) {
            Ok(Message::Error { .. }) => {}
            other => panic!("expected protocol error, got {other:?}"),
        }
        assert_eq!(srv.stats().protocol_errors, 1);
        srv.shutdown();
    }

    #[test]
    fn shutdown_disconnects_clients() {
        let (srv, user) = server();
        let client = srv.client();
        srv.shutdown();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(52));
        assert_eq!(client.verify(&session), Err(ClientError::Disconnected));
    }

    /// A server over an isolated registry (fresh [`crate::registry::ModelRegistry`]
    /// serving the shared fixture's models), so enroll/swap tests cannot
    /// mutate the shared fixture other tests read.
    fn isolated_server() -> (VerificationServer, crate::scenario::UserContext) {
        use crate::artifact::BundleMeta;
        let (system, user) = crate::test_support::shared_tiny_system();
        let bundle = ModelBundle::from_snapshot(
            BundleMeta {
                producer: "server-tests".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: String::new(),
            },
            &system.models(),
        );
        let system = DefenseSystem::from_bundle(bundle).unwrap();
        (VerificationServer::spawn(system, 2), user.clone())
    }

    #[test]
    fn online_enrollment_over_the_wire() {
        use crate::registry::ModelRegistry;
        use magshield_voice::profile::SpeakerProfile;
        use magshield_voice::synth::{FormantSynthesizer, SessionEffects};

        let (srv, user) = isolated_server();
        let client = srv.client();
        let speaker = SpeakerProfile::sample(4040, &SimRng::from_seed(500));
        let synth = FormantSynthesizer::default();
        let utt = synth.render_digits(
            &speaker,
            "271828",
            SessionEffects::neutral(),
            &SimRng::from_seed(501),
        );
        let generation = client.enroll(4040, &[utt]).expect("enrollment lands");
        assert_eq!(generation, ModelRegistry::FIRST_GENERATION + 1);
        // Verdicts served after the enrollment carry the new generation.
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(502));
        let verdict = client.verify(&session).expect("verdict");
        assert_eq!(verdict.generation, Some(generation));
        srv.shutdown();
    }

    #[test]
    fn empty_enrollment_is_rejected_before_the_registry() {
        let (srv, _user) = isolated_server();
        let client = srv.client();
        assert!(matches!(client.enroll(9, &[]), Err(ClientError::Server(_))));
        assert!(matches!(
            client.enroll(9, &[vec![0.5], vec![]]),
            Err(ClientError::Server(_))
        ));
        assert_eq!(srv.stats().protocol_errors, 2);
        srv.shutdown();
    }

    #[test]
    fn hot_swap_over_the_wire() {
        use crate::artifact::BundleMeta;
        use crate::registry::ModelRegistry;

        let (srv, user) = isolated_server();
        let client = srv.client();
        // Export the server's own serving state as the replacement
        // bundle — a hot-swap needs no retraining.
        let (system, _) = crate::test_support::shared_tiny_system();
        let bundle = ModelBundle::from_snapshot(
            BundleMeta {
                producer: "swap-test".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: "second generation".to_string(),
            },
            &system.models(),
        );
        let generation = client.swap_bundle(&bundle).expect("swap lands");
        assert_eq!(generation, ModelRegistry::FIRST_GENERATION + 1);
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(503));
        let verdict = client.verify(&session).expect("verdict");
        assert_eq!(verdict.generation, Some(generation));
        srv.shutdown();
    }

    #[test]
    fn corrupt_swap_bundle_is_refused() {
        let (srv, _user) = isolated_server();
        let client = srv.client();
        let id = 99;
        let raw = client
            .send_raw(protocol::encode_swap_bundle(id, b"not a bundle"))
            .expect("reply");
        match decode_frame(&raw) {
            Ok(Message::Error { message, .. }) => {
                assert!(message.contains("decode error"), "got: {message}")
            }
            other => panic!("expected error reply, got {other:?}"),
        }
        assert_eq!(srv.stats().protocol_errors, 1);
        srv.shutdown();
    }

    fn replay_session(user: &crate::scenario::UserContext, seed: u64) -> SessionData {
        use magshield_voice::attacks::AttackKind;
        use magshield_voice::devices::table_iv_catalog;
        use magshield_voice::profile::SpeakerProfile;
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(seed))
    }

    #[test]
    fn stream_over_the_wire_matches_one_shot() {
        use crate::stream::chunk_session;
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(570));
        let handle = client
            .open_stream(
                &StreamOpenInfo::for_session(&session),
                StreamConfig::default(),
            )
            .expect("stream opens");
        for chunk in chunk_session(&session, 9600) {
            let (kind, verdict) = handle.send_chunk(&chunk).expect("chunk reply");
            assert_eq!(kind, StreamVerdictKind::Pending);
            assert!(verdict.is_none());
        }
        let streamed = handle.close().expect("final verdict");
        let one_shot = system.verify_with_policy(&session, ServerConfig::default().policy);
        assert_eq!(streamed.accepted(), one_shot.accepted());
        assert_eq!(streamed.decision, one_shot.decision);
        assert_eq!(streamed.generation, one_shot.generation);
        // Terminal bookkeeping: the stream left the table, its age fed
        // the streaming-SLO series, and it counted as processed work.
        assert_eq!(srv.metrics().gauge("server.stream.open").get(), 0);
        let snap = srv.metrics().snapshot();
        assert_eq!(
            snap.histograms["server.stream.first_verdict.seconds"].count,
            1
        );
        assert_eq!(srv.stats().processed, 1);
        srv.shutdown();
    }

    #[test]
    fn stream_early_rejects_replay_then_refuses_chunks() {
        use crate::stream::chunk_session;
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let session = replay_session(user, 571);
        let chunks = chunk_session(&session, 4800);
        let handle = client
            .open_stream(
                &StreamOpenInfo::for_session(&session),
                StreamConfig::default(),
            )
            .expect("stream opens");
        let mut rejected_at = None;
        for (i, chunk) in chunks.iter().enumerate() {
            let (kind, verdict) = handle.send_chunk(chunk).expect("chunk reply");
            if kind == StreamVerdictKind::EarlyReject {
                assert!(!verdict.expect("terminal carries a verdict").accepted());
                rejected_at = Some(i);
                break;
            }
            assert_eq!(kind, StreamVerdictKind::Pending);
        }
        let at = rejected_at.expect("replay rejected mid-stream");
        assert!(
            at + 1 < chunks.len(),
            "early reject fired before the last chunk ({at} of {})",
            chunks.len()
        );
        // The terminal verdict retired the server-side stream: further
        // chunks are protocol errors, not silent re-verification.
        match handle.send_chunk(&chunks[at + 1]) {
            Err(ClientError::Server(m)) => assert!(m.contains("unknown stream id"), "got: {m}"),
            other => panic!("expected unknown-stream error, got {other:?}"),
        }
        assert_eq!(srv.metrics().gauge("server.stream.open").get(), 0);
        assert_eq!(srv.stats().protocol_errors, 1);
        srv.shutdown();
    }

    #[test]
    fn unknown_stream_ids_and_duplicate_opens_are_protocol_errors() {
        let (srv, user) = isolated_server();
        let client = srv.client();
        let session = ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(572));
        let info = StreamOpenInfo::for_session(&session);
        let chunk = SessionChunk {
            audio: vec![0.0; 64],
            ..SessionChunk::default()
        };
        // Chunk and close against an id nobody opened.
        for frame in [
            protocol::encode_stream_chunk(1, 9999, &chunk),
            protocol::encode_stream_close(2, 9999),
        ] {
            let raw = client.send_raw(frame).expect("reply");
            match decode_frame(&raw) {
                Ok(Message::Error { message, .. }) => {
                    assert!(message.contains("unknown stream id"), "got: {message}")
                }
                other => panic!("expected error reply, got {other:?}"),
            }
        }
        // Opening the same client-chosen id twice is refused; the first
        // open stays serviceable.
        let raw = client
            .send_raw(protocol::encode_stream_open(
                3,
                77,
                &info,
                StreamConfig::default(),
            ))
            .expect("reply");
        assert!(matches!(
            decode_frame(&raw),
            Ok(Message::StreamVerdict {
                kind: StreamVerdictKind::Pending,
                ..
            })
        ));
        let raw = client
            .send_raw(protocol::encode_stream_open(
                4,
                77,
                &info,
                StreamConfig::default(),
            ))
            .expect("reply");
        match decode_frame(&raw) {
            Ok(Message::Error { message, .. }) => {
                assert!(message.contains("already open"), "got: {message}")
            }
            other => panic!("expected error reply, got {other:?}"),
        }
        let raw = client
            .send_raw(protocol::encode_stream_chunk(5, 77, &chunk))
            .expect("reply");
        assert!(matches!(
            decode_frame(&raw),
            Ok(Message::StreamVerdict {
                kind: StreamVerdictKind::Pending,
                ..
            })
        ));
        assert_eq!(srv.stats().protocol_errors, 3);
        assert_eq!(srv.metrics().gauge("server.stream.open").get(), 1);
        srv.shutdown();
    }

    #[test]
    fn interleaved_streams_keep_independent_state() {
        use crate::stream::chunk_session;
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let genuine = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(573));
        let replay = replay_session(user, 574);
        let genuine_chunks = chunk_session(&genuine, 4800);
        let replay_chunks = chunk_session(&replay, 4800);
        let g = client
            .open_stream(
                &StreamOpenInfo::for_session(&genuine),
                StreamConfig::default(),
            )
            .expect("genuine stream opens");
        let r = client
            .open_stream(
                &StreamOpenInfo::for_session(&replay),
                StreamConfig::default(),
            )
            .expect("replay stream opens");
        assert_ne!(g.stream_id(), r.stream_id());
        assert_eq!(srv.metrics().gauge("server.stream.open").get(), 2);
        // Alternate chunks between the two streams: the replay must
        // early-reject on its own evidence without perturbing the
        // genuine stream's state.
        let mut replay_rejected = false;
        let mut ri = 0;
        for chunk in &genuine_chunks {
            let (kind, _) = g.send_chunk(chunk).expect("genuine chunk");
            assert_eq!(kind, StreamVerdictKind::Pending);
            if !replay_rejected && ri < replay_chunks.len() {
                let (kind, verdict) = r.send_chunk(&replay_chunks[ri]).expect("replay chunk");
                ri += 1;
                if kind == StreamVerdictKind::EarlyReject {
                    assert!(!verdict.expect("terminal verdict").accepted());
                    replay_rejected = true;
                }
            }
        }
        assert!(replay_rejected, "replay stream early-rejected");
        let streamed = g.close().expect("genuine final verdict");
        let one_shot = system.verify_with_policy(&genuine, ServerConfig::default().policy);
        assert_eq!(streamed.accepted(), one_shot.accepted());
        assert_eq!(streamed.decision, one_shot.decision);
        assert_eq!(streamed.generation, one_shot.generation);
        assert_eq!(srv.metrics().gauge("server.stream.open").get(), 0);
        srv.shutdown();
    }

    #[test]
    fn stream_sample_budget_kills_runaway_streams() {
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 1,
                max_stream_samples: 1000,
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(575));
        let handle = client
            .open_stream(
                &StreamOpenInfo::for_session(&session),
                StreamConfig::default(),
            )
            .expect("stream opens");
        let oversized = SessionChunk {
            audio: vec![0.0; 2000],
            ..SessionChunk::default()
        };
        match handle.send_chunk(&oversized) {
            Err(ClientError::Server(m)) => assert!(m.contains("sample budget"), "got: {m}"),
            other => panic!("expected sample-budget error, got {other:?}"),
        }
        // The breach killed the stream, not just the chunk.
        match handle.send_chunk(&SessionChunk::default()) {
            Err(ClientError::Server(m)) => assert!(m.contains("unknown stream id"), "got: {m}"),
            other => panic!("expected unknown-stream error, got {other:?}"),
        }
        assert_eq!(srv.metrics().gauge("server.stream.open").get(), 0);
        srv.shutdown();
    }

    #[test]
    fn stream_open_cap_refuses_excess_streams() {
        let (system, user) = crate::test_support::shared_tiny_system();
        let srv = VerificationServer::spawn_with_config(
            system.with_fresh_obs(),
            ServerConfig {
                workers: 1,
                max_open_streams: 1,
                ..ServerConfig::default()
            },
        );
        let client = srv.client();
        let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(576));
        let info = StreamOpenInfo::for_session(&session);
        let first = client
            .open_stream(&info, StreamConfig::default())
            .expect("first stream opens");
        match client.open_stream(&info, StreamConfig::default()) {
            Err(ClientError::Server(m)) => assert!(m.contains("too many open streams"), "got: {m}"),
            Err(other) => panic!("expected open-cap error, got {other:?}"),
            Ok(_) => panic!("open past the cap must be refused"),
        }
        // Closing the first frees the slot.
        first.close().expect("final verdict");
        client
            .open_stream(&info, StreamConfig::default())
            .expect("slot freed after close")
            .close()
            .expect("final verdict");
        srv.shutdown();
    }
}

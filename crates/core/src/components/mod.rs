//! The four verification components of the defense cascade (Fig. 4).

pub mod distance;
pub mod loudspeaker;
pub mod sld;
pub mod sound_field;
pub mod speaker_id;

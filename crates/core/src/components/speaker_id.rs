//! Speaker identity verification (§IV-C) — the ASV component.
//!
//! Wraps the GMM–UBM / ISV backends of `magshield-asv` behind the
//! cascade's normalized-score interface.

use crate::config::DefenseConfig;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult};
use magshield_asv::isv::IsvBackend;
use magshield_asv::model::{AsvScore, SpeakerModel, UbmBackend};
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};

/// Which verification technique to run — the two rows of Table I.
#[derive(Debug, Clone)]
pub enum AsvEngine {
    /// Plain GMM–UBM with MAP-adapted speaker models.
    Ubm(UbmBackend),
    /// GMM–UBM on session-compensated features.
    Isv(IsvBackend),
}

impl AsvEngine {
    /// Enrolls a speaker.
    pub fn enroll(&self, speaker_id: u32, utterances: &[&[f64]]) -> SpeakerModel {
        match self {
            AsvEngine::Ubm(b) => b.enroll(speaker_id, utterances),
            AsvEngine::Isv(b) => b.enroll(speaker_id, utterances),
        }
    }

    /// The universal background model speaker enrollment adapts from —
    /// the delta-record prior for the durable store's write-ahead log.
    pub fn ubm(&self) -> &magshield_ml::gmm::DiagonalGmm {
        match self {
            AsvEngine::Ubm(b) => &b.ubm,
            AsvEngine::Isv(b) => &b.ubm_backend.ubm,
        }
    }

    /// Raw verification score (average log-likelihood ratio), exact.
    pub fn score(&self, model: &SpeakerModel, audio: &[f64]) -> f64 {
        match self {
            AsvEngine::Ubm(b) => b.score(model, audio),
            AsvEngine::Isv(b) => b.score(model, audio),
        }
    }

    /// Fast-path score with per-call accounting. `top_c` bounds the
    /// speaker-side Gaussian evaluations per frame (`0` = exact).
    pub fn score_detailed(&self, model: &SpeakerModel, audio: &[f64], top_c: usize) -> AsvScore {
        self.score_detailed_opts(model, audio, top_c, false)
    }

    /// [`Self::score_detailed`] with an explicit quantized-model toggle
    /// (`DefenseConfig::asv_quantized`): scoring runs on the cached
    /// i16-mean `QuantizedGmm` pair instead of the exact `PreparedGmm`
    /// pair.
    pub fn score_detailed_opts(
        &self,
        model: &SpeakerModel,
        audio: &[f64],
        top_c: usize,
        quantized: bool,
    ) -> AsvScore {
        match self {
            AsvEngine::Ubm(b) => b.score_detailed_opts(model, audio, top_c, quantized),
            AsvEngine::Isv(b) => b.score_detailed_opts(model, audio, top_c, quantized),
        }
    }
}

/// Tagged union: a kind byte (0 = GMM–UBM, 1 = ISV) followed by the
/// nested, self-checking backend artifact.
impl BinaryCodec for AsvEngine {
    const MAGIC: u32 = codec::magic(b"MENG");
    const VERSION: u8 = 1;
    const NAME: &'static str = "AsvEngine";

    fn encode_payload(&self, w: &mut ByteWriter) {
        match self {
            AsvEngine::Ubm(b) => {
                w.put_u8(0);
                w.put_nested(&b.to_bytes());
            }
            AsvEngine::Isv(b) => {
                w.put_u8(1);
                w.put_nested(&b.to_bytes());
            }
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(AsvEngine::Ubm(UbmBackend::from_bytes(r.get_nested()?)?)),
            1 => Ok(AsvEngine::Isv(IsvBackend::from_bytes(r.get_nested()?)?)),
            found => Err(CodecError::BadTag {
                what: "ASV engine kind",
                found,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_ml::codec::ByteWriter;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::profile::SpeakerProfile;
    use magshield_voice::synth::{FormantSynthesizer, SessionEffects};

    #[test]
    fn engine_round_trips_with_identical_scores() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let snapshot = sys.models();
        let engine = &snapshot.engine;
        let back = AsvEngine::from_bytes(&engine.to_bytes()).unwrap();
        // Enrollment and scoring through the decoded engine are
        // bit-identical to the original.
        let speaker = SpeakerProfile::sample(31, &SimRng::from_seed(400));
        let synth = FormantSynthesizer::default();
        let utt = synth.render_digits(
            &speaker,
            "271828",
            SessionEffects::neutral(),
            &SimRng::from_seed(401),
        );
        let model_a = engine.enroll(31, &[&utt]);
        let model_b = back.enroll(31, &[&utt]);
        let probe = synth.render_digits(
            &speaker,
            "314159",
            SessionEffects::neutral(),
            &SimRng::from_seed(402),
        );
        assert_eq!(
            engine.score(&model_a, &probe).to_bits(),
            back.score(&model_b, &probe).to_bits()
        );
    }

    #[test]
    fn unknown_backend_kind_is_a_bad_tag() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_nested(&[]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            AsvEngine::decode_payload(&mut r),
            Err(CodecError::BadTag {
                what: "ASV engine kind",
                found: 7
            })
        ));
    }
}

/// Extracts the ASV-ready speech from a session: the ranging pilot is
/// removed with a steep low-pass (it would otherwise alias into the
/// speech band at the 16 kHz ASV rate), then the audio is resampled to
/// the voice rate.
///
/// Enrollment and verification **must** share this path — the paper's
/// design enrolls from on-device captures ("the voice samples are also
/// used for the sound source verification"), which keeps the channel
/// matched.
pub fn asv_audio(session: &SessionData) -> Vec<f64> {
    let voice_rate = magshield_voice::synth::VOICE_SAMPLE_RATE;
    let cutoff = 7000.0_f64.min(session.audio_rate * 0.45);
    let mut lp = magshield_dsp::filter::Biquad::lowpass(
        session.audio_rate,
        cutoff,
        std::f64::consts::FRAC_1_SQRT_2,
    );
    let mut lp2 = magshield_dsp::filter::Biquad::lowpass(
        session.audio_rate,
        cutoff,
        std::f64::consts::FRAC_1_SQRT_2,
    );
    // The filtered full-rate signal is ~1 MB per 3 s session and purely
    // intermediate; resampling reads it through the same lerp kernel
    // `TimeSeries::resampled` uses, so a reused thread-local scratch
    // produces bit-identical output without the per-call allocation.
    LOWPASS_SCRATCH.with(|cell| {
        let mut filtered = cell.borrow_mut();
        filtered.clear();
        filtered.extend(session.audio.iter().map(|&x| lp2.process(lp.process(x))));
        if filtered.is_empty() {
            return Vec::new();
        }
        let duration = filtered.len() as f64 / session.audio_rate;
        let n = (duration * voice_rate).round() as usize;
        (0..n)
            .map(|i| {
                magshield_simkit::series::TimeSeries::lerp_sample(
                    &filtered,
                    session.audio_rate,
                    i as f64 / voice_rate,
                )
            })
            .collect()
    })
}

std::thread_local! {
    /// Per-thread low-pass scratch for [`asv_audio`] (see the comment at
    /// its use site).
    static LOWPASS_SCRATCH: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Chunk-fed variant of [`asv_audio`] whose output is bit-identical to
/// the one-shot path regardless of how the session audio is chunked.
///
/// The low-pass chain is causal (two Direct Form I biquads), so filtered
/// samples never change once produced; the only stream/one-shot hazard is
/// the resampler. [`magshield_simkit::series::TimeSeries::lerp_sample`]
/// reads indices `⌊x⌋` and `⌊x⌋ + 1` with `x = i·audio_rate/voice_rate`
/// clamped to the *final* signal length, so an output sample is emitted
/// mid-stream only while
///
/// * `⌊x⌋ + 2 ≤ filtered.len()` — both lerp taps already exist and the
///   end-clamp cannot engage for any longer signal, and
/// * `i + 1 < round(filtered.len()/audio_rate · voice_rate)` — `i` is
///   strictly inside the output length implied by the prefix, which
///   only grows as more audio arrives.
///
/// Everything held back by these conservative guards is emitted by
/// [`StreamingAsvAudio::finalize`] with exactly the one-shot clamp
/// semantics.
#[derive(Debug, Clone)]
pub struct StreamingAsvAudio {
    audio_rate: f64,
    lp: magshield_dsp::filter::Biquad,
    lp2: magshield_dsp::filter::Biquad,
    filtered: Vec<f64>,
    out: Vec<f64>,
}

impl StreamingAsvAudio {
    /// Creates a resampler for session audio captured at `audio_rate` Hz.
    pub fn new(audio_rate: f64) -> Self {
        let cutoff = 7000.0_f64.min(audio_rate * 0.45);
        Self {
            audio_rate,
            lp: magshield_dsp::filter::Biquad::lowpass(
                audio_rate,
                cutoff,
                std::f64::consts::FRAC_1_SQRT_2,
            ),
            lp2: magshield_dsp::filter::Biquad::lowpass(
                audio_rate,
                cutoff,
                std::f64::consts::FRAC_1_SQRT_2,
            ),
            filtered: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Feeds one chunk of session-rate audio, emitting every voice-rate
    /// output sample that is already final. Returns the total number of
    /// emitted samples.
    pub fn push(&mut self, chunk: &[f64]) -> usize {
        self.filtered
            .extend(chunk.iter().map(|&x| self.lp2.process(self.lp.process(x))));
        let voice_rate = magshield_voice::synth::VOICE_SAMPLE_RATE;
        let n_prefix =
            ((self.filtered.len() as f64 / self.audio_rate) * voice_rate).round() as usize;
        loop {
            let i = self.out.len();
            if i + 1 >= n_prefix {
                break;
            }
            let x = (i as f64 / voice_rate) * self.audio_rate;
            if x.floor() as usize + 2 > self.filtered.len() {
                break;
            }
            self.out
                .push(magshield_simkit::series::TimeSeries::lerp_sample(
                    &self.filtered,
                    self.audio_rate,
                    i as f64 / voice_rate,
                ));
        }
        self.out.len()
    }

    /// The voice-rate samples emitted so far — a bit-identical prefix of
    /// what [`asv_audio`] produces for any session extending the fed
    /// audio.
    pub fn ready(&self) -> &[f64] {
        &self.out
    }

    /// Total session-rate samples fed so far.
    pub fn samples_in(&self) -> usize {
        self.filtered.len()
    }

    /// Emits the held-back tail (with the one-shot end-clamp semantics)
    /// and returns the complete voice-rate signal, bit-identical to
    /// [`asv_audio`] on the concatenated chunks.
    pub fn finalize(mut self) -> Vec<f64> {
        if self.filtered.is_empty() {
            return Vec::new();
        }
        let voice_rate = magshield_voice::synth::VOICE_SAMPLE_RATE;
        let duration = self.filtered.len() as f64 / self.audio_rate;
        let n = (duration * voice_rate).round() as usize;
        for i in self.out.len()..n {
            self.out
                .push(magshield_simkit::series::TimeSeries::lerp_sample(
                    &self.filtered,
                    self.audio_rate,
                    i as f64 / voice_rate,
                ));
        }
        self.out
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use magshield_simkit::vec3::Vec3;

    fn audio_session(audio: Vec<f64>, audio_rate: f64) -> SessionData {
        SessionData {
            claimed_speaker: 0,
            audio,
            audio2: None,
            audio_rate,
            pilot_hz: 18_000.0,
            mag_readings: vec![Vec3::new(0.0, 28.0, -39.0); 100],
            accel_readings: vec![Vec3::ZERO; 100],
            gyro_readings: vec![Vec3::ZERO; 100],
            imu_rate: 100.0,
            sweep_start_s: 0.5,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
        }
    }

    #[test]
    fn streaming_asv_audio_bit_identical_across_chunkings() {
        let rate = 48_000.0;
        let audio: Vec<f64> = (0..9_601)
            .map(|i| (i as f64 * 0.013).sin() + 0.3 * (i as f64 * 0.101).cos())
            .collect();
        let oracle = asv_audio(&audio_session(audio.clone(), rate));
        for chunk in [1usize, 7, 480, 481, 4096, audio.len()] {
            let mut s = StreamingAsvAudio::new(rate);
            for c in audio.chunks(chunk) {
                let before = s.ready().len();
                s.push(c);
                // Emitted samples are a bit-identical prefix of the oracle
                // at every step.
                assert!(s.ready().len() >= before);
                for (i, &v) in s.ready().iter().enumerate() {
                    assert_eq!(v.to_bits(), oracle[i].to_bits(), "chunk {chunk} idx {i}");
                }
            }
            let full = s.finalize();
            assert_eq!(full.len(), oracle.len(), "chunk {chunk}");
            for (i, (&a, &b)) in full.iter().zip(&oracle).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {chunk} idx {i}");
            }
        }
    }

    #[test]
    fn streaming_asv_audio_empty_is_empty() {
        let s = StreamingAsvAudio::new(48_000.0);
        assert!(s.finalize().is_empty());
    }
}

/// Runs the component: scores the session audio against the claimed
/// speaker's model.
pub fn verify(
    session: &SessionData,
    engine: &AsvEngine,
    model: &SpeakerModel,
    config: &DefenseConfig,
) -> ComponentResult {
    verify_detailed(session, engine, model, config).0
}

/// [`verify`] plus the scoring accounting ([`AsvScore`]) — what the
/// cascade's speaker-identity stage feeds into the
/// `asv.score.pruned_components` and `dsp.extract.alloc_bytes` counters.
pub fn verify_detailed(
    session: &SessionData,
    engine: &AsvEngine,
    model: &SpeakerModel,
    config: &DefenseConfig,
) -> (ComponentResult, AsvScore) {
    let audio = asv_audio(session);
    let score = engine.score_detailed_opts(model, &audio, config.asv_top_c, config.asv_quantized);
    let z = score.z;
    // Per-user calibrated threshold (floored at the config value), in
    // Z-norm units; the score hits the cascade boundary (1.0) at the
    // threshold and decreases with margin above it.
    let threshold = model.calibrated_threshold(config.asv_threshold);
    let attack_score = if z.is_finite() {
        (1.0 - (z - threshold) / config.asv_scale).max(0.0)
    } else {
        2.0
    };
    let result = ComponentResult {
        component: Component::SpeakerIdentity,
        attack_score,
        detail: format!("z-score {z:.2} (threshold {threshold:.2})"),
    };
    (result, score)
}

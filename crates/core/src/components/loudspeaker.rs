//! Loudspeaker detection (§IV-B3).
//!
//! "We jointly use the absolute value and the changing rate of magnetic
//! readings to detect the speaker. We set a magnetic strength threshold
//! Mt and a changing rate threshold βt."
//!
//! The magnitude of the magnetometer reading is rotation-invariant, so the
//! detector works on |B|: the *deviation* of the close-range segment from
//! the session's opening baseline (the Earth field plus device bias)
//! exposes the permanent magnet (1/r³ ramp as the phone approaches), and
//! the changing rate of the smoothed magnitude exposes both that ramp and
//! the audio-driven voice-coil modulation.

use crate::config::DefenseConfig;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult};
use magshield_dsp::filter::moving_average;

/// Detailed loudspeaker-detection output.
#[derive(Debug, Clone)]
pub struct LoudspeakerAnalysis {
    /// Session baseline magnitude (µT).
    pub baseline_ut: f64,
    /// Maximum |deviation| from baseline over the close-range segment (µT).
    pub max_deviation_ut: f64,
    /// Maximum changing rate of the smoothed magnitude (µT/s).
    pub max_rate_ut_per_s: f64,
    /// The component verdict.
    pub result: ComponentResult,
}

/// Smoothing window (samples at the IMU rate) applied before rate
/// estimation, suppressing quantization/white noise.
const SMOOTH_WINDOW: usize = 5;
/// Gap (samples) over which the rate is measured (50 ms at 100 Hz).
const RATE_GAP: usize = 5;

/// Runs the detector on a session.
pub fn verify(session: &SessionData, config: &DefenseConfig) -> LoudspeakerAnalysis {
    let magnitude = session.mag_magnitude();
    let smoothed = moving_average(&magnitude, SMOOTH_WINDOW);

    // Baseline: median of the first 20 % of the session (phone still far
    // from the source).
    let head = (smoothed.len() / 5).max(1).min(smoothed.len());
    let mut opening: Vec<f64> = smoothed[..head].to_vec();
    opening.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let baseline = opening[opening.len() / 2];

    // Deviation over the close-range segment: the second half of the
    // approach onward (the phone is nearest the source there).
    let close_start = (session.sweep_start_index() / 2).min(smoothed.len());
    let max_deviation = smoothed[close_start..]
        .iter()
        .map(|&m| (m - baseline).abs())
        .fold(0.0f64, f64::max);

    // Changing rate on the smoothed magnitude over a RATE_GAP stride.
    let dt = RATE_GAP as f64 / session.imu_rate;
    let max_rate = if smoothed.len() > RATE_GAP {
        (0..smoothed.len() - RATE_GAP)
            .map(|i| (smoothed[i + RATE_GAP] - smoothed[i]).abs() / dt)
            .fold(0.0f64, f64::max)
    } else {
        0.0
    };

    let attack_score =
        (max_deviation / config.mag_deviation_ut).max(max_rate / config.mag_rate_ut_per_s);
    let detail = format!(
        "baseline {baseline:.1} µT, max deviation {max_deviation:.2} µT (Mt {}), max rate {max_rate:.1} µT/s (βt {})",
        config.mag_deviation_ut, config.mag_rate_ut_per_s
    );
    LoudspeakerAnalysis {
        baseline_ut: baseline,
        max_deviation_ut: max_deviation,
        max_rate_ut_per_s: max_rate,
        result: ComponentResult {
            component: Component::Loudspeaker,
            attack_score,
            detail,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_simkit::vec3::Vec3;

    fn session_with_mag(mag: Vec<Vec3>) -> SessionData {
        let n = mag.len();
        SessionData {
            claimed_speaker: 0,
            audio: vec![0.0; 4800],
            audio2: None,
            audio_rate: 48_000.0,
            pilot_hz: 18_000.0,
            mag_readings: mag,
            accel_readings: vec![Vec3::ZERO; n],
            gyro_readings: vec![Vec3::ZERO; n],
            imu_rate: 100.0,
            sweep_start_s: n as f64 / 200.0,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
        }
    }

    #[test]
    fn quiet_field_passes() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        let s = session_with_mag(vec![earth; 200]);
        let a = verify(&s, &DefenseConfig::default());
        assert!(
            a.result.attack_score < 1.0,
            "score {}",
            a.result.attack_score
        );
        assert!(a.max_deviation_ut < 0.5);
    }

    #[test]
    fn magnet_ramp_detected() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        // Approach ramp: deviation grows to 60 µT in the second half.
        let mag: Vec<Vec3> = (0..200)
            .map(|i| {
                let ramp = if i > 100 {
                    (i - 100) as f64 / 100.0 * 60.0
                } else {
                    0.0
                };
                earth + Vec3::new(0.0, ramp, 0.0)
            })
            .collect();
        let a = verify(&session_with_mag(mag), &DefenseConfig::default());
        assert!(
            a.result.attack_score > 1.0,
            "score {}",
            a.result.attack_score
        );
        assert!(a.max_deviation_ut > 20.0);
    }

    #[test]
    fn coil_modulation_detected_by_rate() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        // Small static offset but fast 5 µT oscillation (voice coil).
        let mag: Vec<Vec3> = (0..200)
            .map(|i| earth + Vec3::new(0.0, 2.0 + 5.0 * (i as f64 * 0.9).sin(), 0.0))
            .collect();
        let a = verify(&session_with_mag(mag), &DefenseConfig::default());
        assert!(
            a.max_rate_ut_per_s > DefenseConfig::default().mag_rate_ut_per_s,
            "rate {}",
            a.max_rate_ut_per_s
        );
        assert!(a.result.attack_score > 1.0);
    }

    #[test]
    fn interference_inflates_score() {
        // Heavy broadband noise (car) pushes the score up — the FRR
        // mechanism of Fig. 14(b).
        let earth = Vec3::new(0.0, 28.0, -39.0);
        let mag: Vec<Vec3> = (0..200)
            .map(|i| {
                let wobble = 4.0 * ((i * i % 17) as f64 / 17.0 - 0.5);
                earth + Vec3::new(wobble, -wobble, 0.5 * wobble)
            })
            .collect();
        let quiet_score = verify(
            &session_with_mag(vec![earth; 200]),
            &DefenseConfig::default(),
        )
        .result
        .attack_score;
        let noisy_score = verify(&session_with_mag(mag), &DefenseConfig::default())
            .result
            .attack_score;
        assert!(noisy_score > quiet_score * 2.0);
    }

    #[test]
    fn short_session_is_safe() {
        let s = session_with_mag(vec![Vec3::new(0.0, 28.0, -39.0); 3]);
        let a = verify(&s, &DefenseConfig::default());
        assert!(a.result.attack_score.is_finite());
    }
}

//! Loudspeaker detection (§IV-B3).
//!
//! "We jointly use the absolute value and the changing rate of magnetic
//! readings to detect the speaker. We set a magnetic strength threshold
//! Mt and a changing rate threshold βt."
//!
//! The magnitude of the magnetometer reading is rotation-invariant, so the
//! detector works on |B|: the *deviation* of the close-range segment from
//! the session's opening baseline (the Earth field plus device bias)
//! exposes the permanent magnet (1/r³ ramp as the phone approaches), and
//! the changing rate of the smoothed magnitude exposes both that ramp and
//! the audio-driven voice-coil modulation.

use crate::config::DefenseConfig;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult};
use magshield_dsp::filter::moving_average;

/// Detailed loudspeaker-detection output.
#[derive(Debug, Clone)]
pub struct LoudspeakerAnalysis {
    /// Session baseline magnitude (µT).
    pub baseline_ut: f64,
    /// Maximum |deviation| from baseline over the close-range segment (µT).
    pub max_deviation_ut: f64,
    /// Maximum changing rate of the smoothed magnitude (µT/s).
    pub max_rate_ut_per_s: f64,
    /// The component verdict.
    pub result: ComponentResult,
}

/// Smoothing window (samples at the IMU rate) applied before rate
/// estimation, suppressing quantization/white noise.
const SMOOTH_WINDOW: usize = 5;
/// Gap (samples) over which the rate is measured (50 ms at 100 Hz).
const RATE_GAP: usize = 5;
/// Absolute field ceiling (µT). Earth's field plus hard-iron device bias
/// stays well under 100 µT everywhere on the planet; smartphone
/// magnetometers rail in the low-thousands next to a permanent magnet.
/// A session whose readings sit an order of magnitude above any natural
/// field is a loudspeaker signature even when the *relative* statistics
/// are blind — a source already in place when sampling starts saturates
/// the whole session, so the self-referenced baseline shows no deviation
/// and no changing rate.
const SATURATION_UT: f64 = 1000.0;

/// Runs the detector on a session.
pub fn verify(session: &SessionData, config: &DefenseConfig) -> LoudspeakerAnalysis {
    let magnitude = session.mag_magnitude();
    let smoothed = moving_average(&magnitude, SMOOTH_WINDOW);

    // Baseline: median of the first 20 % of the session (phone still far
    // from the source).
    let head = (smoothed.len() / 5).max(1).min(smoothed.len());
    let mut opening: Vec<f64> = smoothed[..head].to_vec();
    opening.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let baseline = opening[opening.len() / 2];

    // Deviation over the close-range segment: the second half of the
    // approach onward (the phone is nearest the source there).
    let close_start = (session.sweep_start_index() / 2).min(smoothed.len());
    let max_deviation = smoothed[close_start..]
        .iter()
        .map(|&m| (m - baseline).abs())
        .fold(0.0f64, f64::max);

    // Changing rate on the smoothed magnitude over a RATE_GAP stride.
    let dt = RATE_GAP as f64 / session.imu_rate;
    let max_rate = if smoothed.len() > RATE_GAP {
        (0..smoothed.len() - RATE_GAP)
            .map(|i| (smoothed[i + RATE_GAP] - smoothed[i]).abs() / dt)
            .fold(0.0f64, f64::max)
    } else {
        0.0
    };

    // Absolute saturation guard: the deviation/rate statistics reference
    // the session's own baseline, so a field that is *already* saturated
    // when sampling starts looks perfectly quiet to them. The guard only
    // ever raises the score, so every streaming lower bound stays sound.
    let peak = magnitude.iter().fold(0.0f64, |a, &b| a.max(b));
    let saturated = peak > SATURATION_UT;
    let relative_score =
        (max_deviation / config.mag_deviation_ut).max(max_rate / config.mag_rate_ut_per_s);
    let attack_score = if saturated {
        relative_score.max(peak / SATURATION_UT)
    } else {
        relative_score
    };
    let detail = format!(
        "baseline {baseline:.1} µT, max deviation {max_deviation:.2} µT (Mt {}), max rate {max_rate:.1} µT/s (βt {}){}",
        config.mag_deviation_ut,
        config.mag_rate_ut_per_s,
        if saturated {
            format!(", saturated field peak {peak:.0} µT")
        } else {
            String::new()
        }
    );
    LoudspeakerAnalysis {
        baseline_ut: baseline,
        max_deviation_ut: max_deviation,
        max_rate_ut_per_s: max_rate,
        result: ComponentResult {
            component: Component::Loudspeaker,
            attack_score,
            detail,
        },
    }
}

/// Incremental lower bounds on the one-shot loudspeaker statistics.
///
/// [`moving_average`] is *centered* (window 5 → half-width 2), so
/// `smoothed[i]` only depends on `magnitude[i-2..=i+2]` and is final —
/// bitwise equal to the full-session smoothed value — as soon as
/// `magnitude.len() >= i + 3`. The tracker appends smoothed values only
/// once they are stable (recomputing the same
/// `magnitudes[lo..hi].iter().sum() / (hi - lo)` expression as
/// [`moving_average`]) and maintains two statistics over them:
///
/// **Changing rate** — the rate over every pair `(j, j + RATE_GAP)` that
/// lies entirely inside the stable region. Every such rate also appears
/// in the one-shot [`verify`] fold, so [`max_rate_ut_per_s`] is an
/// *unconditionally monotone* lower bound on the final `max_rate`.
///
/// **Baseline deviation** — the one-shot baseline is the median of the
/// first 20 % of the smoothed session, and the close-range segment
/// starts at `close_start = sweep_start_index / 2`, which is known at
/// open time (it depends only on the stream-constant sweep mark).
/// Whenever the head window stays before the close-range mark —
/// `len_final / 5 <= close_start`, i.e. the session ends within 2.5×
/// the sweep mark, which holds with margin for protocol-shaped captures
/// whose sweep starts mid-session — the final baseline is a median of
/// values drawn from `smoothed[..close_start]`, hence confined to the
/// observed `[min, max]` of that (stable) region. The distance from the
/// close-range extrema to that interval,
/// `max(0, head_min − close_min, close_max − head_max)`, then
/// lower-bounds the final `max_deviation` ([`max_deviation_ut`]).
///
/// The one-shot attack score is
/// `max(max_deviation / Mt, max_rate / βt)`, so [`raw_score_bound`]
/// lower-bounds it term-by-term: once the bound crosses the stage
/// boundary mid-stream, the full-session score is guaranteed to cross
/// it too. This is the soundness argument behind the cascade's
/// streaming early reject.
///
/// [`max_rate_ut_per_s`]: StreamingRateTracker::max_rate_ut_per_s
/// [`max_deviation_ut`]: StreamingRateTracker::max_deviation_ut
/// [`raw_score_bound`]: StreamingRateTracker::raw_score_bound
#[derive(Debug, Clone)]
pub struct StreamingRateTracker {
    imu_rate: f64,
    /// First close-range index (`sweep_start_index / 2`), fixed at open.
    close_start: usize,
    magnitudes: Vec<f64>,
    smoothed: Vec<f64>,
    /// Largest raw magnitude fed so far (µT) — the saturation-guard
    /// statistic; monotone in the prefix, so the guard score it implies
    /// lower-bounds the one-shot guard over any extension.
    peak: f64,
    /// Next pair index `j` whose rate `|s[j+RATE_GAP] - s[j]|` is unfolded.
    next_pair: usize,
    max_rate: f64,
    /// Running extrema of stable `smoothed[..close_start]` (baseline
    /// candidates) and `smoothed[close_start..]` (close range).
    head_min: f64,
    head_max: f64,
    close_min: f64,
    close_max: f64,
}

impl StreamingRateTracker {
    /// Creates a tracker for a stream sampled at `imu_rate` Hz whose
    /// close-range segment starts at sample `close_start`
    /// (`sweep_start_index / 2`, matching the one-shot [`verify`]).
    pub fn new(imu_rate: f64, close_start: usize) -> Self {
        Self {
            imu_rate,
            close_start,
            magnitudes: Vec::new(),
            smoothed: Vec::new(),
            peak: 0.0,
            next_pair: 0,
            max_rate: 0.0,
            head_min: f64::INFINITY,
            head_max: f64::NEG_INFINITY,
            close_min: f64::INFINITY,
            close_max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one magnetometer magnitude sample (µT).
    pub fn push(&mut self, magnitude: f64) {
        self.magnitudes.push(magnitude);
        self.peak = self.peak.max(magnitude);
        let half = SMOOTH_WINDOW / 2;
        // smoothed[i] is stable once i + half + 1 <= magnitudes.len().
        while self.smoothed.len() + half < self.magnitudes.len() {
            let i = self.smoothed.len();
            let lo = i.saturating_sub(half);
            let hi = i + half + 1;
            let mean = self.magnitudes[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            self.smoothed.push(mean);
            if i < self.close_start {
                self.head_min = self.head_min.min(mean);
                self.head_max = self.head_max.max(mean);
            } else {
                self.close_min = self.close_min.min(mean);
                self.close_max = self.close_max.max(mean);
            }
        }
        let dt = RATE_GAP as f64 / self.imu_rate;
        while self.next_pair + RATE_GAP < self.smoothed.len() {
            let j = self.next_pair;
            let rate = (self.smoothed[j + RATE_GAP] - self.smoothed[j]).abs() / dt;
            self.max_rate = self.max_rate.max(rate);
            self.next_pair += 1;
        }
    }

    /// Largest changing rate (µT/s) observed over stable smoothed pairs so
    /// far. Never exceeds the `max_rate_ut_per_s` the one-shot [`verify`]
    /// reports for any session extending the fed prefix.
    pub fn max_rate_ut_per_s(&self) -> f64 {
        self.max_rate
    }

    /// Lower bound (µT) on the one-shot `max_deviation_ut` — the
    /// distance from the observed close-range extrema to the baseline
    /// candidate interval (see the type docs for the protocol-shape
    /// condition). Zero until both regions have stable values.
    pub fn max_deviation_ut(&self) -> f64 {
        if self.head_min > self.head_max || self.close_min > self.close_max {
            return 0.0;
        }
        (self.head_min - self.close_min)
            .max(self.close_max - self.head_max)
            .max(0.0)
    }

    /// Lower bound on the one-shot raw (factory-boundary) attack score,
    /// combining both statistics exactly like [`verify`]'s
    /// `max(max_deviation / Mt, max_rate / βt)`.
    pub fn raw_score_bound(&self, config: &DefenseConfig) -> f64 {
        let relative = (self.max_deviation_ut() / config.mag_deviation_ut)
            .max(self.max_rate / config.mag_rate_ut_per_s);
        // Saturation guard on the prefix peak: the one-shot peak over any
        // extension is at least this, so the bound stays a lower bound.
        if self.peak > SATURATION_UT {
            relative.max(self.peak / SATURATION_UT)
        } else {
            relative
        }
    }

    /// Number of magnitude samples fed so far.
    pub fn samples(&self) -> usize {
        self.magnitudes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_simkit::vec3::Vec3;

    fn session_with_mag(mag: Vec<Vec3>) -> SessionData {
        let n = mag.len();
        SessionData {
            claimed_speaker: 0,
            audio: vec![0.0; 4800],
            audio2: None,
            audio_rate: 48_000.0,
            pilot_hz: 18_000.0,
            mag_readings: mag,
            accel_readings: vec![Vec3::ZERO; n],
            gyro_readings: vec![Vec3::ZERO; n],
            imu_rate: 100.0,
            sweep_start_s: n as f64 / 200.0,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
        }
    }

    #[test]
    fn quiet_field_passes() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        let s = session_with_mag(vec![earth; 200]);
        let a = verify(&s, &DefenseConfig::default());
        assert!(
            a.result.attack_score < 1.0,
            "score {}",
            a.result.attack_score
        );
        assert!(a.max_deviation_ut < 0.5);
    }

    #[test]
    fn magnet_ramp_detected() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        // Approach ramp: deviation grows to 60 µT in the second half.
        let mag: Vec<Vec3> = (0..200)
            .map(|i| {
                let ramp = if i > 100 {
                    (i - 100) as f64 / 100.0 * 60.0
                } else {
                    0.0
                };
                earth + Vec3::new(0.0, ramp, 0.0)
            })
            .collect();
        let a = verify(&session_with_mag(mag), &DefenseConfig::default());
        assert!(
            a.result.attack_score > 1.0,
            "score {}",
            a.result.attack_score
        );
        assert!(a.max_deviation_ut > 20.0);
    }

    #[test]
    fn coil_modulation_detected_by_rate() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        // Small static offset but fast 5 µT oscillation (voice coil).
        let mag: Vec<Vec3> = (0..200)
            .map(|i| earth + Vec3::new(0.0, 2.0 + 5.0 * (i as f64 * 0.9).sin(), 0.0))
            .collect();
        let a = verify(&session_with_mag(mag), &DefenseConfig::default());
        assert!(
            a.max_rate_ut_per_s > DefenseConfig::default().mag_rate_ut_per_s,
            "rate {}",
            a.max_rate_ut_per_s
        );
        assert!(a.result.attack_score > 1.0);
    }

    #[test]
    fn interference_inflates_score() {
        // Heavy broadband noise (car) pushes the score up — the FRR
        // mechanism of Fig. 14(b).
        let earth = Vec3::new(0.0, 28.0, -39.0);
        let mag: Vec<Vec3> = (0..200)
            .map(|i| {
                let wobble = 4.0 * ((i * i % 17) as f64 / 17.0 - 0.5);
                earth + Vec3::new(wobble, -wobble, 0.5 * wobble)
            })
            .collect();
        let quiet_score = verify(
            &session_with_mag(vec![earth; 200]),
            &DefenseConfig::default(),
        )
        .result
        .attack_score;
        let noisy_score = verify(&session_with_mag(mag), &DefenseConfig::default())
            .result
            .attack_score;
        assert!(noisy_score > quiet_score * 2.0);
    }

    /// A field that is already railed when sampling starts shows zero
    /// deviation and zero rate — the absolute guard must still reject it.
    #[test]
    fn constant_saturated_field_rejected() {
        let railed = Vec3::new(1200.0, 1200.0, 1200.0);
        let s = session_with_mag(vec![railed; 200]);
        let a = verify(&s, &DefenseConfig::default());
        assert!(a.max_deviation_ut < 1.0, "deviation statistics are blind");
        assert!(
            a.result.attack_score > 1.0,
            "score {}",
            a.result.attack_score
        );
        assert!(a.result.detail.contains("saturated"), "{}", a.result.detail);

        // The streaming bound fires on the same session, well before the
        // stream ends, and never exceeds the one-shot score.
        let mut tracker = StreamingRateTracker::new(s.imu_rate, s.sweep_start_index() / 2);
        let mut crossed_at = None;
        let cfg = DefenseConfig::default();
        for (i, &m) in s.mag_magnitude().iter().enumerate() {
            tracker.push(m);
            assert!(tracker.raw_score_bound(&cfg) <= a.result.attack_score + 1e-12);
            if crossed_at.is_none() && tracker.raw_score_bound(&cfg) > 1.0 {
                crossed_at = Some(i);
            }
        }
        assert_eq!(crossed_at, Some(0), "guard should fire on the first sample");
    }

    /// Strong-but-physical fields stay below the guard; it only engages an
    /// order of magnitude above any natural field.
    #[test]
    fn saturation_guard_ignores_physical_fields() {
        let strong = Vec3::new(0.0, 60.0, -80.0); // |B| = 100 µT
        let a = verify(
            &session_with_mag(vec![strong; 200]),
            &DefenseConfig::default(),
        );
        assert!(
            !a.result.detail.contains("saturated"),
            "{}",
            a.result.detail
        );
        assert!(a.result.attack_score < 1.0);
    }

    #[test]
    fn short_session_is_safe() {
        let s = session_with_mag(vec![Vec3::new(0.0, 28.0, -39.0); 3]);
        let a = verify(&s, &DefenseConfig::default());
        assert!(a.result.attack_score.is_finite());
    }

    /// After feeding the whole session the tracker's rate equals the
    /// one-shot `max_rate` restricted to stable pairs, and at every prefix
    /// both bounds lower-bound the one-shot statistics of the *full*
    /// session.
    #[test]
    fn tracker_lower_bounds_one_shot_statistics() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        let mag: Vec<Vec3> = (0..200)
            .map(|i| earth + Vec3::new(0.0, 2.0 + 5.0 * (i as f64 * 0.9).sin(), 0.0))
            .collect();
        let session = session_with_mag(mag);
        let full = verify(&session, &DefenseConfig::default());
        let magnitude = session.mag_magnitude();

        let close_start = session.sweep_start_index() / 2;
        let mut tracker = StreamingRateTracker::new(session.imu_rate, close_start);
        for (fed, &m) in magnitude.iter().enumerate() {
            tracker.push(m);
            assert!(
                tracker.max_rate_ut_per_s() <= full.max_rate_ut_per_s + 1e-12,
                "prefix {} rate {} exceeds one-shot {}",
                fed + 1,
                tracker.max_rate_ut_per_s(),
                full.max_rate_ut_per_s
            );
            assert!(
                tracker.max_deviation_ut() <= full.max_deviation_ut + 1e-12,
                "prefix {} deviation {} exceeds one-shot {}",
                fed + 1,
                tracker.max_deviation_ut(),
                full.max_deviation_ut
            );
            assert!(
                tracker.raw_score_bound(&DefenseConfig::default())
                    <= full.result.attack_score + 1e-12
            );
        }
        // The final few smoothed values use a shrunken window in the
        // one-shot path, so the tracker may stop slightly below — but the
        // interior pairs dominate this oscillating signal, so it lands
        // exactly on the one-shot maximum here.
        assert!(
            (tracker.max_rate_ut_per_s() - full.max_rate_ut_per_s).abs() < 1e-9,
            "tracker {} vs one-shot {}",
            tracker.max_rate_ut_per_s(),
            full.max_rate_ut_per_s
        );
    }

    /// A magnet approach ramp crosses the deviation bound mid-stream,
    /// while a quiet session never produces a positive bound.
    #[test]
    fn deviation_bound_fires_on_ramp_only() {
        let earth = Vec3::new(0.0, 28.0, -39.0);
        let ramp: Vec<Vec3> = (0..200)
            .map(|i| {
                let r = if i > 100 {
                    (i - 100) as f64 / 100.0 * 60.0
                } else {
                    0.0
                };
                earth + Vec3::new(0.0, r, 0.0)
            })
            .collect();
        let session = session_with_mag(ramp);
        let full = verify(&session, &DefenseConfig::default());
        let close_start = session.sweep_start_index() / 2;
        let mut tracker = StreamingRateTracker::new(session.imu_rate, close_start);
        let mut crossed_at = None;
        for (i, &m) in session.mag_magnitude().iter().enumerate() {
            tracker.push(m);
            assert!(tracker.max_deviation_ut() <= full.max_deviation_ut + 1e-12);
            if crossed_at.is_none()
                && tracker.max_deviation_ut() > DefenseConfig::default().mag_deviation_ut
            {
                crossed_at = Some(i);
            }
        }
        let crossed = crossed_at.expect("ramp must cross the deviation bound");
        assert!(
            crossed < session.mag_readings.len() - 1,
            "bound must fire before the stream ends"
        );

        let quiet = session_with_mag(vec![earth; 200]);
        let mut tracker = StreamingRateTracker::new(quiet.imu_rate, quiet.sweep_start_index() / 2);
        for &m in &quiet.mag_magnitude() {
            tracker.push(m);
        }
        assert!(tracker.max_deviation_ut() < 0.5);
    }

    /// The tracker's stable smoothed values are bitwise equal to the
    /// one-shot `moving_average` prefix regardless of how the stream is
    /// chunked.
    #[test]
    fn tracker_smoothed_prefix_is_bitwise_stable() {
        let magnitude: Vec<f64> = (0..97).map(|i| (i as f64 * 0.31).sin() * 10.0).collect();
        let oracle = moving_average(&magnitude, SMOOTH_WINDOW);
        let mut tracker = StreamingRateTracker::new(100.0, 20);
        for &m in &magnitude {
            tracker.push(m);
        }
        // All but the trailing `half` entries are stable.
        let stable = magnitude.len() - SMOOTH_WINDOW / 2;
        assert_eq!(tracker.smoothed.len(), stable);
        assert_eq!(&tracker.smoothed[..], &oracle[..stable]);
    }
}

//! Dual-microphone sound-level-difference verification — the §VII
//! "Dual Microphones" extension.
//!
//! "The main idea is to measure the sound level difference (SLD) feature
//! between the two microphones of the device. We then use sound volumes
//! information with the SLD feature to perform sound field verification."
//!
//! Physics: the two mics sit one phone-length apart (~9 cm on a Nexus 4).
//! For a sound source `d` meters from the primary mic, spherical spreading
//! gives `SLD = 20·log10((d + Δ)/d)` dB — a *single-shot absolute range
//! cue*. At 5 cm the SLD is ≈ 9 dB; at 30 cm it collapses to ≈ 1 dB. A
//! distant loudspeaker therefore cannot fake the near-field SLD of a
//! mouth at the protocol distance, no matter how loud it plays — which is
//! what lets the dual-mic check shorten (or skip) the approach segment.

use crate::config::DefenseConfig;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult};

/// Microphone separation assumed for SLD ranging (m). Nexus-4 class body.
pub const MIC_SPACING_M: f64 = 0.09;

/// Measured SLD statistics for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SldAnalysis {
    /// Median speech-band level difference, primary − secondary (dB).
    pub sld_db: f64,
    /// The distance (m) implied by the SLD under spherical spreading.
    pub implied_distance_m: f64,
}

/// Measures the speech-band SLD over the sweep segment.
///
/// Returns `None` when the session has no second microphone or no usable
/// speech frames.
pub fn measure(session: &SessionData) -> Option<SldAnalysis> {
    let audio2 = session.audio2.as_ref()?;
    let dt = 1.0 / session.imu_rate;
    let band_levels = |audio: &[f64]| -> Vec<f64> {
        let mut lp = magshield_dsp::filter::Biquad::lowpass(
            session.audio_rate,
            6000.0_f64.min(session.audio_rate * 0.45),
            std::f64::consts::FRAC_1_SQRT_2,
        );
        let filtered: Vec<f64> = audio.iter().map(|&x| lp.process(x)).collect();
        magshield_dsp::level::level_track(&filtered, session.audio_rate, dt).1
    };
    let l1 = band_levels(&session.audio);
    let l2 = band_levels(audio2);
    let start = session.sweep_start_index();
    let n = l1.len().min(l2.len());
    if start + 4 > n {
        return None;
    }
    // Speech-active frames of the primary mic.
    let peak = l1[start..n]
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let floor = peak - 20.0;
    let mut diffs: Vec<f64> = (start..n)
        .filter(|&i| l1[i] >= floor)
        .map(|i| l1[i] - l2[i])
        .collect();
    if diffs.len() < 10 {
        return None;
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sld_db = diffs[diffs.len() / 2];
    // Invert SLD = 20 log10((d+Δ)/d)  →  d = Δ / (10^(SLD/20) − 1).
    let ratio = 10f64.powf(sld_db / 20.0);
    let implied_distance_m = if ratio > 1.001 {
        MIC_SPACING_M / (ratio - 1.0)
    } else {
        f64::INFINITY
    };
    Some(SldAnalysis {
        sld_db,
        implied_distance_m,
    })
}

/// Runs the dual-mic range check: the SLD-implied distance must satisfy
/// the same `Dt × tolerance` bound as the trajectory estimate.
///
/// Sessions without a second microphone return a *neutral* result (score
/// 0): the check is an §VII extension, not a requirement — single-mic
/// phones rely on the standard distance component.
pub fn verify(session: &SessionData, config: &DefenseConfig) -> ComponentResult {
    match measure(session) {
        Some(a) => {
            let bound = config.distance_threshold_m * config.distance_tolerance;
            let attack_score = (a.implied_distance_m / bound).min(10.0);
            ComponentResult {
                component: Component::Sld,
                attack_score,
                detail: format!(
                    "SLD {:.1} dB → implied distance {:.3} m (bound {:.3} m)",
                    a.sld_db, a.implied_distance_m, bound
                ),
            }
        }
        None => ComponentResult {
            component: Component::Sld,
            attack_score: 0.0,
            detail: "no dual-microphone data; SLD check skipped".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, UserContext};
    use magshield_sensors::phone::PhoneModel;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::attacks::AttackKind;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;

    fn dual_mic_user() -> UserContext {
        let mut u = UserContext::sample(&SimRng::from_seed(88));
        u.phone = PhoneModel::Nexus4;
        u
    }

    #[test]
    fn close_genuine_session_has_large_sld() {
        let s = ScenarioBuilder::genuine(&dual_mic_user()).capture(&SimRng::from_seed(1));
        let a = measure(&s).expect("dual-mic session");
        // 5 cm with 9 cm spacing → SLD ≈ 20·log10(14/5) ≈ 8.9 dB.
        assert!(a.sld_db > 5.0, "SLD {} dB", a.sld_db);
        assert!(
            a.implied_distance_m < 0.09,
            "implied distance {} m",
            a.implied_distance_m
        );
        let r = verify(&s, &DefenseConfig::default());
        assert!(r.attack_score < 1.0, "{}", r.detail);
        // The SLD check reports its own identity, not the distance
        // component's — result_of(Distance) stays unambiguous.
        assert_eq!(r.component, Component::Sld);
    }

    #[test]
    fn distant_source_has_small_sld() {
        let s = ScenarioBuilder::genuine(&dual_mic_user())
            .at_distance(0.25)
            .capture(&SimRng::from_seed(2));
        let a = measure(&s).expect("dual-mic session");
        assert!(a.sld_db < 4.0, "SLD {} dB at 25 cm", a.sld_db);
        let r = verify(&s, &DefenseConfig::default());
        assert!(r.attack_score > 1.0, "{}", r.detail);
    }

    #[test]
    fn replay_attack_at_protocol_distance_matches_geometry() {
        // SLD is a *range* check: a loudspeaker placed at 5 cm produces a
        // legitimate near-field SLD (and is caught by the magnetometer
        // instead); one at 25 cm fails the SLD no matter the volume.
        let attacker = SpeakerProfile::sample(5, &SimRng::from_seed(3));
        let dev = table_iv_catalog()[0].clone();
        let far =
            ScenarioBuilder::machine_attack(&dual_mic_user(), AttackKind::Replay, dev, attacker)
                .at_distance(0.30)
                .capture(&SimRng::from_seed(4));
        let r = verify(&far, &DefenseConfig::default());
        assert!(r.attack_score > 1.0, "{}", r.detail);
    }

    #[test]
    fn single_mic_sessions_are_neutral() {
        let u = UserContext::sample(&SimRng::from_seed(9)); // Nexus 5: one mic
        let s = ScenarioBuilder::genuine(&u).capture(&SimRng::from_seed(5));
        assert!(measure(&s).is_none());
        let r = verify(&s, &DefenseConfig::default());
        assert_eq!(r.attack_score, 0.0);
    }
}

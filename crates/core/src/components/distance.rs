//! Sound source distance verification (§IV-B1).
//!
//! Reconstructs the phone trajectory from the session's IMU streams,
//! fits the sweep arc with a least-squares circle to estimate the absolute
//! phone–source distance, and cross-checks the pilot-tone phase track:
//! the approach must have actually closed in on the source, and the sweep
//! must hold constant range (a genuine source sits at the sweep pivot).

use crate::config::DefenseConfig;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult};
use magshield_trajectory::ranging;
use magshield_trajectory::reconstruct::{reconstruct, TrajectoryEstimate};

/// Detailed distance-verification output.
#[derive(Debug, Clone)]
pub struct DistanceAnalysis {
    /// Trajectory reconstruction.
    pub trajectory: TrajectoryEstimate,
    /// Pilot ranging results.
    pub ranging: ranging::RangingAnalysis,
    /// The component verdict.
    pub result: ComponentResult,
}

/// Runs the component on a session.
pub fn verify(session: &SessionData, config: &DefenseConfig) -> DistanceAnalysis {
    let trajectory = reconstruct(
        &session.accel_readings,
        &session.gyro_readings,
        &session.mag_heading_observations(),
        session.sweep_start_index(),
        session.imu_rate,
    );
    let rng_analysis = ranging::analyze(
        &session.audio,
        session.audio_rate,
        session.pilot_hz,
        session.sweep_start_s,
    );

    // Score pieces (each normalized to boundary = 1):
    // 1) absolute distance. Primary estimate: pilot amplitude ranging
    //    (the phone knows its own emission level, so the received sweep
    //    amplitude maps to range); cross-checked against the circle-fit
    //    radius of the sweep arc. The circle fit must exist — its absence
    //    means the protocol arc was never performed — and agree within a
    //    generous factor (dead-reckoning drift), but the amplitude
    //    estimate carries the threshold comparison.
    let d_amp = if rng_analysis.sweep_amplitude > 1e-6 {
        Some(config.pilot_ranging_gain_m / rng_analysis.sweep_amplitude)
    } else {
        None
    };
    let bound = config.distance_threshold_m * config.distance_tolerance;
    let distance_score = match (d_amp, trajectory.distance_m) {
        (Some(da), Some(dc)) => {
            let amp_score = da / bound;
            // Circle-fit disagreement beyond 4× the bound flags a faked
            // geometry even when the amplitude looks close.
            let consistency = dc / (4.0 * bound);
            amp_score.max(consistency)
        }
        // Arc fit failed but the gyro confirms a protocol-scale sweep
        // actually happened: dead reckoning was too noisy this session.
        // Amplitude ranging carries the decision at reduced confidence.
        (Some(da), None) if trajectory.sweep_direction_change.abs() > 0.5 => (da / bound).max(0.8),
        _ => 2.0,
    };
    // 2) approach displacement: the phase track must show the phone closed
    //    in by at least min_approach_m (score < 1 when satisfied);
    let approach = -rng_analysis.approach_displacement_m; // positive = closed in
    let approach_score = if approach >= config.min_approach_m {
        0.5 * config.min_approach_m / approach.max(1e-6)
    } else {
        1.0 + (config.min_approach_m - approach) / config.min_approach_m
    };
    // 3) sweep ripple vs the off-center bound.
    let ripple_score = rng_analysis.sweep_ripple_m / config.max_sweep_ripple_m;

    let attack_score = distance_score.max(approach_score).max(ripple_score);
    let detail = format!(
        "amp-range {:?} m, arc {:?} m (Dt {} m), approach {:.3} m, sweep ripple {:.4} m",
        d_amp.map(|d| (d * 1000.0).round() / 1000.0),
        trajectory.distance_m.map(|d| (d * 1000.0).round() / 1000.0),
        config.distance_threshold_m,
        approach,
        rng_analysis.sweep_ripple_m
    );
    DistanceAnalysis {
        result: ComponentResult {
            component: Component::Distance,
            attack_score,
            detail,
        },
        trajectory,
        ranging: rng_analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, UserContext};
    use magshield_simkit::rng::SimRng;
    use magshield_simkit::vec3::Vec3;

    fn user() -> UserContext {
        UserContext::sample(&SimRng::from_seed(77))
    }

    #[test]
    fn genuine_close_session_passes() {
        let s = ScenarioBuilder::genuine(&user()).capture(&SimRng::from_seed(1));
        let a = verify(&s, &DefenseConfig::default());
        assert!(a.result.attack_score < 1.0, "{}", a.result.detail);
        // The amplitude range should be near the true 5 cm.
        assert!(a.ranging.sweep_amplitude > 0.0);
    }

    #[test]
    fn genuine_far_session_rejected() {
        // A compliant motion ending 14 cm out violates Dt.
        let s = ScenarioBuilder::genuine(&user())
            .at_distance(0.14)
            .capture(&SimRng::from_seed(2));
        let a = verify(&s, &DefenseConfig::default());
        assert!(a.result.attack_score > 1.0, "{}", a.result.detail);
    }

    #[test]
    fn amplitude_ranging_tracks_true_distance() {
        for (seed, d) in [(3u64, 0.04), (4, 0.08), (5, 0.12)] {
            let s = ScenarioBuilder::genuine(&user())
                .at_distance(d)
                .capture(&SimRng::from_seed(seed));
            let a = verify(&s, &DefenseConfig::default());
            let est = DefenseConfig::default().pilot_ranging_gain_m / a.ranging.sweep_amplitude;
            assert!(
                (est - d).abs() < 0.25 * d + 0.005,
                "true {d} m, amplitude-ranged {est} m"
            );
        }
    }

    #[test]
    fn off_center_pivot_flagged() {
        let s = ScenarioBuilder::genuine(&user())
            .at_distance(0.25)
            .with_off_center_pivot(Vec3::new(0.0, -0.20, 0.0))
            .capture(&SimRng::from_seed(6));
        let a = verify(&s, &DefenseConfig::default());
        assert!(
            a.result.attack_score > 1.0,
            "fake pivot must be flagged: {}",
            a.result.detail
        );
        // Specifically, the sweep ripple (distance to the real source
        // varies during the fake arc) should be large.
        assert!(
            a.ranging.sweep_ripple_m > DefenseConfig::default().max_sweep_ripple_m,
            "ripple {}",
            a.ranging.sweep_ripple_m
        );
    }

    #[test]
    fn missing_approach_flagged() {
        // Truncate the session to the sweep only: no approach displacement.
        let mut s = ScenarioBuilder::genuine(&user()).capture(&SimRng::from_seed(7));
        let cut_audio = (s.sweep_start_s * s.audio_rate) as usize;
        let cut_imu = s.sweep_start_index();
        s.audio.drain(..cut_audio);
        s.mag_readings.drain(..cut_imu);
        s.accel_readings.drain(..cut_imu);
        s.gyro_readings.drain(..cut_imu);
        s.sweep_start_s = 0.0;
        let a = verify(&s, &DefenseConfig::default());
        assert!(
            a.result.attack_score > 1.0,
            "no approach must reject: {}",
            a.result.detail
        );
    }
}

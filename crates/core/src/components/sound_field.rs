//! Sound field verification (§IV-B2).
//!
//! During the sweep the phone samples the source's spatial field:
//! "each dataset is composed by a tuple of volumes (dB) and the rotation
//! angle (degree)". The tuples are binned by rotation angle into a fixed-
//! length feature vector (mean-removed, so absolute loudness cancels) and
//! classified by a linear SVM trained on human-mouth fields (positive)
//! versus machine sources (negative). Fig. 8 shows the two classes
//! separating under PCA.

use crate::config::DefenseConfig;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult};
use magshield_dsp::level::level_track;
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use magshield_ml::scaler::StandardScaler;
use magshield_ml::svm::{LinearSvm, SvmConfig};
use magshield_sensors::orientation::HeadingFilter;
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Number of features produced by [`feature_vector`].
pub const FEATURE_DIM: usize = 5;

/// Extracts the sound-field feature vector from a session.
///
/// The raw observations are the paper's (volume dB, rotation angle)
/// tuples over the sweep; we summarize them with level-profile statistics
/// that are invariant to absolute loudness and to which exact frames the
/// speech-activity mask keeps:
///
/// 1. slope of level vs. angle (dB/rad) — directivity tilt,
/// 2. curvature of level vs. angle (dB/rad²) — beaming/off-center bow,
/// 3. residual std around the quadratic fit (dB),
/// 4. level spread (90th − 10th percentile, dB),
/// 5. speech-active fraction of the sweep.
///
/// Returns `None` when the sweep has too little rotation or no speech
/// (protocol violation — treated as rejecting by the caller).
pub fn feature_vector(session: &SessionData, bins: usize) -> Option<Vec<f64>> {
    // Heading per IMU sample (gyro + magnetometer fusion).
    let mut filter = HeadingFilter::new(0.02);
    let dt = 1.0 / session.imu_rate;
    let mag_obs = session.mag_heading_observations();
    let headings: Vec<f64> = session
        .gyro_readings
        .iter()
        .enumerate()
        .map(|(i, g)| filter.update(g.z, dt, mag_obs.get(i).copied().flatten()))
        .collect();

    // Volume track at the IMU frame rate, band-limited to the speech band
    // so the (always-on) ranging pilot above 16 kHz does not masquerade as
    // sound-field level after the utterance ends.
    let mut lp = magshield_dsp::filter::Biquad::lowpass(
        session.audio_rate,
        6000.0_f64.min(session.audio_rate * 0.45),
        std::f64::consts::FRAC_1_SQRT_2,
    );
    let speech_only: Vec<f64> = session.audio.iter().map(|&x| lp.process(x)).collect();
    let (_times, levels) = level_track(&speech_only, session.audio_rate, dt);

    let start = session.sweep_start_index();
    let n = headings.len().min(levels.len());
    if start + 4 > n {
        return None;
    }
    let sweep_headings = &headings[start..n];
    let sweep_levels = &levels[start..n];
    let h0 = sweep_headings[0];
    let span = sweep_headings
        .iter()
        .map(|&h| h - h0)
        .fold(0.0f64, f64::max);
    if span < 0.15 {
        return None; // barely rotated: no field was sampled
    }

    // Only speech-active frames carry sound-field information: the gaps
    // between digits (and post-utterance silence) would otherwise alias
    // the speech envelope into the spatial profile. Frames more than
    // 20 dB below the sweep peak are masked.
    let peak_level = sweep_levels
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let floor = peak_level - 20.0;
    let mut active_count = 0usize;
    let mut bin_max = vec![f64::NEG_INFINITY; bins.max(4)];
    for (&h, &l) in sweep_headings.iter().zip(sweep_levels) {
        if l < floor {
            continue;
        }
        active_count += 1;
        let frac = ((h - h0) / span).clamp(0.0, 1.0);
        let b = ((frac * bin_max.len() as f64) as usize).min(bin_max.len() - 1);
        bin_max[b] = bin_max[b].max(l);
    }
    // The syllable *peaks* per angle bin track the spatial gain; frame
    // means would re-import the temporal speech envelope.
    let active: Vec<(f64, f64)> = bin_max
        .iter()
        .enumerate()
        .filter(|(_, &l)| l.is_finite())
        .map(|(b, &l)| ((b as f64 + 0.5) / bin_max.len() as f64, l))
        .collect();
    if active.len() < 5 || active_count < 10 {
        return None; // no usable speech during the sweep
    }

    // Center levels so absolute loudness cancels, then fit
    // level = a·x + b·x² + c by least squares over x ∈ [0, 1] angles.
    let mean_level = active.iter().map(|(_, l)| l).sum::<f64>() / active.len() as f64;
    let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for &(x, l) in &active {
        let y = l - mean_level;
        sx += x;
        sx2 += x * x;
        sx3 += x * x * x;
        sx4 += x * x * x * x;
        sy += y;
        sxy += x * y;
        sx2y += x * x * y;
    }
    let n = active.len() as f64;
    let m = [[sx2, sx3, sx], [sx3, sx4, sx2], [sx, sx2, n]];
    let rhs = [sxy, sx2y, sy];
    let (a, b, c) = solve3(m, rhs)?;
    // Convert slopes from per-unit-span to per-radian.
    let slope = a / span;
    let curvature = b / (span * span);
    let residual_std = (active
        .iter()
        .map(|&(x, l)| {
            let y = l - mean_level;
            (y - (a * x + b * x * x + c)).powi(2)
        })
        .sum::<f64>()
        / n)
        .sqrt();
    let mut levels: Vec<f64> = active.iter().map(|(_, l)| *l).collect();
    levels.sort_by(|p, q| p.partial_cmp(q).unwrap());
    let spread = levels[(0.9 * (levels.len() - 1) as f64) as usize]
        - levels[(0.1 * (levels.len() - 1) as f64) as usize];
    let active_fraction = active_count as f64 / sweep_levels.len() as f64;
    Some(vec![
        slope,
        curvature,
        residual_std,
        spread,
        active_fraction,
    ])
}

/// 3×3 Gaussian elimination; `None` when singular.
// Index loops keep the row/column elimination structure readable.
#[allow(clippy::needless_range_loop)]
fn solve3(mut m: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<(f64, f64, f64)> {
    for col in 0..3 {
        let pivot =
            (col..3).max_by(|&p, &q| m[p][col].abs().partial_cmp(&m[q][col].abs()).unwrap())?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            for k in col..3 {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in row + 1..3 {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some((x[0], x[1], x[2]))
}

/// A trained sound-field classifier: standardization + linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundFieldModel {
    svm: LinearSvm,
    scaler: StandardScaler,
    bins: usize,
}

impl SoundFieldModel {
    /// Trains on labeled feature vectors (`true` = human mouth).
    ///
    /// # Panics
    ///
    /// Panics if either class is empty or dimensions are inconsistent.
    pub fn train(
        positives: &[Vec<f64>],
        negatives: &[Vec<f64>],
        bins: usize,
        rng: &SimRng,
    ) -> Self {
        assert!(
            !positives.is_empty() && !negatives.is_empty(),
            "need both classes"
        );
        let mut data = Vec::with_capacity(positives.len() + negatives.len());
        let mut labels = Vec::with_capacity(positives.len() + negatives.len());
        for p in positives {
            data.push(p.clone());
            labels.push(1.0);
        }
        for n in negatives {
            data.push(n.clone());
            labels.push(-1.0);
        }
        let scaler = StandardScaler::fit(&data);
        let scaled = scaler.transform_batch(&data);
        let svm = LinearSvm::train(&scaled, &labels, SvmConfig::default(), &rng.fork("sf-svm"));
        Self { svm, scaler, bins }
    }

    /// Number of angle bins the model expects.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Signed margin (positive = mouth-like).
    pub fn margin(&self, features: &[f64]) -> f64 {
        self.svm.decision(&self.scaler.transform(features))
    }
}

impl BinaryCodec for SoundFieldModel {
    const MAGIC: u32 = codec::magic(b"MSFM");
    const VERSION: u8 = 1;
    const NAME: &'static str = "SoundFieldModel";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_nested(&self.svm.to_bytes());
        w.put_nested(&self.scaler.to_bytes());
        w.put_len(self.bins);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let svm = LinearSvm::from_bytes(r.get_nested()?)?;
        let scaler = StandardScaler::from_bytes(r.get_nested()?)?;
        let bins = r.get_len()?;
        if svm.weights().len() != scaler.dim() {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: format!(
                    "SVM dimension {} disagrees with scaler dimension {}",
                    svm.weights().len(),
                    scaler.dim()
                ),
            });
        }
        if bins < 4 {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: format!("need at least 4 angle bins, got {bins}"),
            });
        }
        Ok(Self { svm, scaler, bins })
    }
}

/// Runs the component on a session.
pub fn verify(
    session: &SessionData,
    model: &SoundFieldModel,
    _config: &DefenseConfig,
) -> ComponentResult {
    match feature_vector(session, model.bins()) {
        Some(features) => {
            let margin = model.margin(&features);
            // Map the margin to an attack score with boundary at 0 margin:
            // margin +1 (confident mouth) → 0.5; margin 0 → 1; margin −1 → 1.5.
            let attack_score = (1.0 - 0.5 * margin).max(0.0);
            ComponentResult {
                component: Component::SoundField,
                attack_score,
                detail: format!("SVM margin {margin:.3}"),
            }
        }
        None => ComponentResult {
            component: Component::SoundField,
            attack_score: 2.0,
            detail: "sweep too short to sample the sound field".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_simkit::vec3::Vec3;

    /// Builds a synthetic session whose sweep rotates 80° while the audio
    /// level follows `level_of(angle_frac)` (dBFS).
    fn session_with_profile(level_of: impl Fn(f64) -> f64) -> SessionData {
        let imu_rate = 100.0;
        let audio_rate = 8000.0;
        let n_app = 50;
        let n_swp = 100;
        let mut gyro = vec![Vec3::ZERO; n_app];
        let w = 80f64.to_radians() / (n_swp as f64 / imu_rate);
        gyro.extend(vec![Vec3::new(0.0, 0.0, w); n_swp]);
        let n = gyro.len();
        // Audio: per-IMU-frame amplitude from the level profile.
        let mut audio = Vec::new();
        for i in 0..n {
            let frac = if i < n_app {
                0.0
            } else {
                (i - n_app) as f64 / n_swp as f64
            };
            let amp = 10f64.powf(level_of(frac) / 20.0);
            let frame = (audio_rate / imu_rate) as usize;
            for k in 0..frame {
                audio.push(amp * (std::f64::consts::TAU * 440.0 * k as f64 / audio_rate).sin());
            }
        }
        SessionData {
            claimed_speaker: 0,
            audio,
            audio2: None,
            audio_rate,
            pilot_hz: 18_000.0,
            mag_readings: vec![Vec3::new(0.0, 28.0, -39.0); n],
            accel_readings: vec![Vec3::ZERO; n],
            gyro_readings: gyro,
            imu_rate,
            sweep_start_s: n_app as f64 / imu_rate,
            earth_reference: Vec3::new(0.0, 28.0, -39.0),
        }
    }

    fn mouthish(frac: f64) -> f64 {
        // Gentle 4 dB variation over the sweep.
        -20.0 - 4.0 * frac
    }

    fn conish(frac: f64) -> f64 {
        // Strong beaming: 14 dB rolloff.
        -18.0 - 14.0 * frac
    }

    #[test]
    fn feature_vector_shape() {
        let s = session_with_profile(mouthish);
        let v = feature_vector(&s, 12).expect("features");
        assert_eq!(v.len(), FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
        // The mouthish profile drops ~4 dB over the sweep → negative slope.
        assert!(v[0] < 0.0, "slope {}", v[0]);
        // Active fraction is high (continuous tone).
        assert!(v[4] > 0.8, "active fraction {}", v[4]);
    }

    #[test]
    fn feature_is_loudness_invariant() {
        let a = feature_vector(&session_with_profile(mouthish), 12).unwrap();
        let b = feature_vector(&session_with_profile(|f| mouthish(f) - 6.0), 12).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.3, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn slope_separates_aperture_classes() {
        let mouth = feature_vector(&session_with_profile(mouthish), 12).unwrap();
        let cone = feature_vector(&session_with_profile(conish), 12).unwrap();
        assert!(
            cone[0] < mouth[0] - 2.0,
            "cone slope {} should be steeper than mouth slope {}",
            cone[0],
            mouth[0]
        );
    }

    #[test]
    fn no_rotation_yields_none() {
        let mut s = session_with_profile(mouthish);
        for g in s.gyro_readings.iter_mut() {
            *g = Vec3::ZERO;
        }
        assert!(feature_vector(&s, 12).is_none());
    }

    #[test]
    fn svm_separates_profiles() {
        let rng = SimRng::from_seed(31);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for k in 0..8 {
            let off = k as f64 * 0.3;
            pos.push(feature_vector(&session_with_profile(|f| mouthish(f) - off), 12).unwrap());
            neg.push(feature_vector(&session_with_profile(|f| conish(f) - off), 12).unwrap());
        }
        let model = SoundFieldModel::train(&pos, &neg, 12, &rng);
        let mouth = verify(
            &session_with_profile(|f| mouthish(f) - 1.0),
            &model,
            &DefenseConfig::default(),
        );
        let cone = verify(
            &session_with_profile(|f| conish(f) - 1.0),
            &model,
            &DefenseConfig::default(),
        );
        assert!(
            mouth.attack_score < 1.0,
            "mouth score {}",
            mouth.attack_score
        );
        assert!(cone.attack_score > 1.0, "cone score {}", cone.attack_score);
    }

    #[test]
    fn missing_sweep_rejects() {
        let mut s = session_with_profile(mouthish);
        for g in s.gyro_readings.iter_mut() {
            *g = Vec3::ZERO;
        }
        let rng = SimRng::from_seed(5);
        let model = SoundFieldModel::train(
            &[vec![0.0; 13], vec![0.1; 13]],
            &[vec![1.0; 13], vec![1.1; 13]],
            12,
            &rng,
        );
        let r = verify(&s, &model, &DefenseConfig::default());
        assert!(r.attack_score >= 2.0);
    }

    mod codec_round_trip {
        use super::*;
        use magshield_ml::codec::{assert_hostile_input_fails, ByteWriter};

        fn trained() -> SoundFieldModel {
            let rng = SimRng::from_seed(77);
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for k in 0..6 {
                let off = k as f64 * 0.4;
                pos.push(feature_vector(&session_with_profile(|f| mouthish(f) - off), 12).unwrap());
                neg.push(feature_vector(&session_with_profile(|f| conish(f) - off), 12).unwrap());
            }
            SoundFieldModel::train(&pos, &neg, 12, &rng)
        }

        #[test]
        fn trained_model_round_trips_with_identical_margins() {
            let model = trained();
            let back = SoundFieldModel::from_bytes(&model.to_bytes()).unwrap();
            assert_eq!(back, model);
            let probe = feature_vector(&session_with_profile(mouthish), 12).unwrap();
            assert_eq!(
                back.margin(&probe).to_bits(),
                model.margin(&probe).to_bits()
            );
            assert_eq!(back.bins(), 12);
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            assert_hostile_input_fails::<SoundFieldModel>(&trained().to_bytes());
        }

        #[test]
        fn too_few_bins_is_invalid() {
            let model = trained();
            let mut w = ByteWriter::new();
            w.put_nested(&model.svm.to_bytes());
            w.put_nested(&model.scaler.to_bytes());
            w.put_len(2);
            let bytes = w.into_bytes();
            let mut r = magshield_ml::codec::ByteReader::new(&bytes);
            assert!(matches!(
                SoundFieldModel::decode_payload(&mut r),
                Err(CodecError::Invalid { .. })
            ));
        }
    }
}

//! Offline training: turns a user's enrollment into a [`ModelBundle`].
//!
//! This is the training half of the training/serving split. A [`Trainer`]
//! owns the training sizing ([`BootstrapConfig`]) and the thresholds the
//! resulting models should ship with; [`Trainer::train`] runs the full
//! pipeline of the paper — UBM (optionally ISV) on a background corpus,
//! MAP-adapted speaker model from the user's enrollment captures, and the
//! sound-field SVM from the same captures plus synthetic machine-source
//! negatives — and returns an immutable, serializable [`ModelBundle`].
//! Serving never trains: a
//! [`DefenseSystem`](crate::pipeline::DefenseSystem) is *constructed
//! from* a bundle.
//!
//! Training is deterministic in the provided [`SimRng`]: the same seed
//! and sizing produce a byte-identical bundle, which is what makes golden
//! bundle artifacts testable in CI.

use crate::artifact::{BundleMeta, ModelBundle};
use crate::components::sound_field::{feature_vector, SoundFieldModel};
use crate::components::speaker_id::{self, AsvEngine};
use crate::config::DefenseConfig;
use crate::scenario::{ScenarioBuilder, UserContext};
use magshield_asv::frontend::FeatureExtractor;
use magshield_asv::isv::{IsvBackend, SessionSubspace};
use magshield_asv::model::UbmBackend;
use magshield_asv::ubm::{train_ubm, UbmConfig};
use magshield_physics::acoustics::tube::SoundTube;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use magshield_voice::synth::VOICE_SAMPLE_RATE;

/// Sizing of a training run.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Speakers in the UBM training corpus.
    pub ubm_speakers: usize,
    /// UBM mixture components.
    pub ubm_components: usize,
    /// EM iterations.
    pub em_iters: usize,
    /// Use the ISV backend instead of plain GMM–UBM.
    pub use_isv: bool,
    /// Session-subspace rank for ISV.
    pub isv_rank: usize,
    /// Genuine sessions captured for sound-field training.
    pub sound_field_positives: usize,
    /// Enrollment utterances for the user's speaker model.
    pub enrollment_utterances: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            ubm_speakers: 6,
            ubm_components: 32,
            em_iters: 8,
            use_isv: false,
            isv_rank: 2,
            sound_field_positives: 10,
            enrollment_utterances: 3,
        }
    }
}

impl BootstrapConfig {
    /// A minimal configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            ubm_speakers: 3,
            ubm_components: 8,
            em_iters: 4,
            use_isv: false,
            isv_rank: 2,
            sound_field_positives: 6,
            enrollment_utterances: 2,
        }
    }
}

/// Produces [`ModelBundle`]s — see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: BootstrapConfig,
    config: DefenseConfig,
    notes: String,
}

/// The `producer` string [`Trainer`] stamps into [`BundleMeta`].
pub const TRAINER_PRODUCER: &str = "magshield-trainer";

impl Trainer {
    /// A trainer with the given sizing and default thresholds.
    pub fn new(cfg: BootstrapConfig) -> Self {
        Self {
            cfg,
            config: DefenseConfig::default(),
            notes: String::new(),
        }
    }

    /// Returns the trainer shipping `config` in its bundles (the
    /// sound-field feature extraction uses `config.sound_field_bins`).
    #[must_use]
    pub fn with_config(mut self, config: DefenseConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns the trainer stamping `notes` into bundle provenance.
    #[must_use]
    pub fn with_notes(mut self, notes: impl Into<String>) -> Self {
        self.notes = notes.into();
        self
    }

    /// Trains a complete bundle for `user`:
    ///
    /// 1. a UBM (and optionally an ISV subspace) on a background corpus;
    /// 2. the user's MAP-adapted speaker model from enrollment utterances;
    /// 3. the sound-field SVM from genuine enrollment sessions (positive)
    ///    and synthetic machine-source sessions (negative) — the negative
    ///    templates ship with the system, no attacker data required.
    ///
    /// Deterministic in `rng`: a given seed always yields a byte-identical
    /// bundle.
    pub fn train(&self, user: &UserContext, rng: &SimRng) -> ModelBundle {
        let cfg = self.cfg;
        // --- ASV backend ---
        let extractor = FeatureExtractor::new(VOICE_SAMPLE_RATE);
        let corpus =
            magshield_voice::corpus::voxforge_like(cfg.ubm_speakers, &rng.fork("ubm-corpus"));
        let utts: Vec<&[f64]> = corpus
            .utterances
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let ubm = train_ubm(
            &extractor,
            &utts,
            UbmConfig {
                components: cfg.ubm_components,
                em_iters: cfg.em_iters,
                max_frames: 20_000,
            },
            &rng.fork("ubm-train"),
        );
        let ubm_backend = UbmBackend::new(extractor.clone(), ubm).with_cohort(&utts);
        let engine = if cfg.use_isv {
            let groups: Vec<(u32, u32, magshield_dsp::frame::FrameMatrix)> = corpus
                .utterances
                .iter()
                .map(|u| (u.speaker_id, u.session, extractor.extract(&u.audio)))
                .collect();
            let subspace = SessionSubspace::estimate(&ubm_backend.ubm, &groups, cfg.isv_rank);
            AsvEngine::Isv(IsvBackend::new(ubm_backend, subspace))
        } else {
            AsvEngine::Ubm(ubm_backend)
        };

        // --- enrollment sessions ---
        // The genuine enrollment captures serve double duty, exactly as in
        // the paper ("the voice samples are also used for the sound source
        // verification"): their pilot-filtered, channel-matched audio
        // enrolls the speaker model, and their sound-field features are
        // the SVM positives. Enrolling through the same capture chain as
        // verification keeps the ASV channel matched.
        let config = self.config;
        let n_sessions = cfg.sound_field_positives.max(cfg.enrollment_utterances);
        let mut positives = Vec::new();
        let mut enrollment_audio: Vec<Vec<f64>> = Vec::new();
        for i in 0..n_sessions {
            let d = 0.04 + 0.02 * (i as f64 / n_sessions.max(1) as f64);
            let s = ScenarioBuilder::genuine(user)
                .at_distance(d)
                .capture(&rng.fork_indexed("sf-pos", i as u64));
            if i < cfg.sound_field_positives {
                if let Some(v) = feature_vector(&s, config.sound_field_bins) {
                    positives.push(v);
                }
            }
            if i < cfg.enrollment_utterances {
                enrollment_audio.push(speaker_id::asv_audio(&s));
            }
        }
        let refs: Vec<&[f64]> = enrollment_audio.iter().map(|u| u.as_slice()).collect();
        let model = engine.enroll(user.profile.id, &refs);
        let mut negatives = Vec::new();
        let catalog = table_iv_catalog();
        let attacker = SpeakerProfile::sample(999, &rng.fork("sf-attacker"));
        let negative_devices = [
            "Apple EarPods",
            "Samsung Galaxy S Headset",
            "Logitech LS21",
            "Pioneer SP-FS52",
        ];
        for (i, key) in negative_devices.iter().enumerate() {
            if let Some(dev) = catalog.iter().find(|d| d.name.contains(key)) {
                for take in 0..2u64 {
                    let s = ScenarioBuilder::machine_attack(
                        user,
                        AttackKind::Replay,
                        dev.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05)
                    .capture(&rng.fork_indexed("sf-neg", (i as u64) << 8 | take));
                    if let Some(v) = feature_vector(&s, config.sound_field_bins) {
                        negatives.push(v);
                    }
                }
            }
        }
        // Large-panel negatives (electrostatic-class aperture), covering
        // both replayed and synthesized audio — the spatial signature must
        // be learned independently of the audio's temporal structure.
        if let Some(esl) = magshield_voice::devices::unconventional_catalog().first() {
            for (k, kind) in [AttackKind::Replay, AttackKind::Synthesis]
                .iter()
                .enumerate()
            {
                for take in 0..2u64 {
                    let s =
                        ScenarioBuilder::machine_attack(user, *kind, esl.clone(), attacker.clone())
                            .at_distance(0.05)
                            .capture(&rng.fork_indexed("sf-neg-esl", (k as u64) << 8 | take));
                    if let Some(v) = feature_vector(&s, config.sound_field_bins) {
                        negatives.push(v);
                    }
                }
            }
        }
        // Tube negative.
        {
            let dev = catalog[0].clone();
            let mut s = ScenarioBuilder::machine_attack(
                user,
                AttackKind::Replay,
                dev.clone(),
                attacker.clone(),
            )
            .at_distance(0.05);
            s.source = crate::scenario::SourceKind::DeviceViaTube {
                device: dev,
                tube: SoundTube::new(0.30, 0.0125),
            };
            if let Some(v) = feature_vector(
                &s.capture(&rng.fork("sf-neg-tube")),
                config.sound_field_bins,
            ) {
                negatives.push(v);
            }
        }
        let sound_field = SoundFieldModel::train(
            &positives,
            &negatives,
            config.sound_field_bins,
            &rng.fork("sf-train"),
        );

        ModelBundle {
            meta: BundleMeta {
                producer: TRAINER_PRODUCER.to_string(),
                ubm_speakers: cfg.ubm_speakers as u32,
                ubm_components: cfg.ubm_components as u32,
                em_iters: cfg.em_iters as u32,
                use_isv: cfg.use_isv,
                notes: self.notes.clone(),
            },
            config,
            engine,
            speakers: vec![model],
            sound_field,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_ml::codec::BinaryCodec;

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let rng = SimRng::from_seed(4242);
        let user = UserContext::sample(&rng.fork("user"));
        let trainer = Trainer::new(BootstrapConfig {
            ubm_speakers: 2,
            ubm_components: 4,
            em_iters: 2,
            use_isv: false,
            isv_rank: 2,
            sound_field_positives: 6,
            enrollment_utterances: 1,
        });
        let a = trainer.train(&user, &SimRng::from_seed(7)).to_bytes();
        let b = trainer.train(&user, &SimRng::from_seed(7)).to_bytes();
        assert_eq!(a, b, "same seed must give a byte-identical bundle");
        let c = trainer.train(&user, &SimRng::from_seed(8)).to_bytes();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn trained_bundles_validate_and_carry_provenance() {
        let rng = SimRng::from_seed(77);
        let user = UserContext::sample(&rng.fork("user"));
        let bundle = Trainer::new(BootstrapConfig {
            ubm_speakers: 2,
            ubm_components: 4,
            em_iters: 2,
            use_isv: false,
            isv_rank: 2,
            sound_field_positives: 6,
            enrollment_utterances: 1,
        })
        .with_notes("unit-test")
        .train(&user, &rng.fork("train"));
        assert!(bundle.validate().is_ok());
        assert_eq!(bundle.meta.producer, TRAINER_PRODUCER);
        assert_eq!(bundle.meta.ubm_components, 4);
        assert_eq!(bundle.meta.notes, "unit-test");
        assert_eq!(bundle.speakers.len(), 1);
        assert_eq!(bundle.speakers[0].speaker_id, user.profile.id);
    }
}

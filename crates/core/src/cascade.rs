//! The verification cascade as a first-class subsystem.
//!
//! The paper's defense is explicitly a *cascade* (Fig. 4, Table III):
//! complementary detectors where any rejection ends the session, with the
//! cheap magnetometer/trajectory checks gating the expensive ASV back
//! end. This module makes that structure explicit:
//!
//! - [`CascadeStage`] is the uniform stage interface — a stable
//!   [`Component`] identity, an applicability check, and a
//!   `run(&SessionData, &DefenseConfig) -> ComponentResult` body — that
//!   the five existing components implement ([`DistanceStage`],
//!   [`SldStage`], [`SoundFieldStage`], [`LoudspeakerStage`],
//!   [`SpeakerIdStage`]);
//! - [`Cascade`] is the executor: an ordered stage list, a [`StageMask`]
//!   for real ablation, and an [`ExecutionPolicy`] selecting between
//!   full evaluation and short-circuiting.
//!
//! Stages run **cheapest first** (see [`Cascade::standard`]): the
//! loudspeaker detector touches only the IMU-rate magnetometer stream,
//! while speaker identity resamples audio and scores a GMM — per the
//! Fig. 15 latency data the ASV back end dominates per-session compute,
//! so under [`ExecutionPolicy::ShortCircuit`] a session the magnetometer
//! already condemned never pays for it. The order is decision-invariant
//! under [`ExecutionPolicy::FullEvaluation`] (every stage always runs and
//! the verdict is the conjunction of all stage decisions).
//!
//! All metric, span and trace names derive from [`Component::name`]:
//! `pipeline.<name>.seconds` latency histograms for stages that ran and
//! `pipeline.<name>.skipped` counters for stages the executor
//! short-circuited past.

use crate::components::sound_field::SoundFieldModel;
use crate::components::speaker_id::AsvEngine;
use crate::components::{distance, loudspeaker, sld, sound_field, speaker_id};
use crate::config::DefenseConfig;
use crate::pipeline::PipelineObs;
use crate::registry::ModelSnapshot;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult, DefenseVerdict, SkippedStage, StageOutcome};
use magshield_asv::model::SpeakerModel;
use magshield_asv::StreamingExtractor;
use magshield_dsp::{FrameMatrix, FrameSource};
use magshield_ml::gmm::{LlrAccumulator, ScoreScratch};
use magshield_obs::labels::Labels;
use magshield_obs::metrics::Registry;
use magshield_obs::span::Span;
use magshield_obs::trace::{ComponentTrace, PipelineTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One stage of the verification cascade.
///
/// A stage owns no observability: it computes a [`ComponentResult`] whose
/// `attack_score` is normalized so 1.0 is the stage's *factory* decision
/// boundary. The [`Cascade`] executor handles spans, latency histograms,
/// per-session traces, and division by the per-stage boundary from
/// [`DefenseConfig::stage_boundaries`](crate::config::StageBoundaries).
pub trait CascadeStage {
    /// The stage's stable identity (names, wire tags and mask bits all
    /// derive from it).
    fn component(&self) -> Component;

    /// Whether this stage can evaluate `session` at all. Inapplicable
    /// stages are omitted from the verdict entirely (e.g. the dual-mic
    /// SLD check on a single-microphone phone).
    fn applies_to(&self, _session: &SessionData) -> bool {
        true
    }

    /// Evaluates the session, returning a raw (factory-boundary)
    /// component result.
    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult;

    /// Like [`CascadeStage::run`], but with access to the metrics
    /// registry for stage-internal counters. The default ignores the
    /// registry; stages with instrumented internals (the ASV fast path)
    /// override this. The executor always calls this variant.
    fn run_observed(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        registry: &Registry,
    ) -> ComponentResult {
        let _ = registry;
        self.run(session, config)
    }
}

/// Loudspeaker detection (§IV-B3) — magnetometer magnitude deviation and
/// changing rate. Cheapest stage: IMU-rate data only.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoudspeakerStage;

impl CascadeStage for LoudspeakerStage {
    fn component(&self) -> Component {
        Component::Loudspeaker
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        loudspeaker::verify(session, config).result
    }
}

/// Sound source distance verification (§IV-B1) — trajectory
/// reconstruction plus pilot-tone ranging.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistanceStage;

impl CascadeStage for DistanceStage {
    fn component(&self) -> Component {
        Component::Distance
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        distance::verify(session, config).result
    }
}

/// Dual-microphone sound-level-difference range check (§VII). Applies
/// only to sessions captured on a dual-mic phone.
#[derive(Debug, Clone, Copy, Default)]
pub struct SldStage;

impl CascadeStage for SldStage {
    fn component(&self) -> Component {
        Component::Sld
    }

    fn applies_to(&self, session: &SessionData) -> bool {
        session.audio2.is_some()
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        sld::verify(session, config)
    }
}

/// Sound field verification (§IV-B2) — SVM over (volume, rotation-angle)
/// features, borrowing the trained model.
#[derive(Debug, Clone, Copy)]
pub struct SoundFieldStage<'a> {
    model: &'a SoundFieldModel,
}

impl<'a> SoundFieldStage<'a> {
    /// A stage classifying against `model`.
    pub fn new(model: &'a SoundFieldModel) -> Self {
        Self { model }
    }
}

impl CascadeStage for SoundFieldStage<'_> {
    fn component(&self) -> Component {
        Component::SoundField
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        sound_field::verify(session, self.model, config)
    }
}

/// Speaker identity verification (§IV-C) — the ASV back end. Most
/// expensive stage (resampling, MFCC extraction, GMM scoring), so it runs
/// last.
#[derive(Debug, Clone, Copy)]
pub struct SpeakerIdStage<'a> {
    engine: &'a AsvEngine,
    speakers: &'a HashMap<u32, Arc<SpeakerModel>>,
}

impl<'a> SpeakerIdStage<'a> {
    /// A stage scoring against `engine` with the enrolled `speakers`
    /// (the `Arc`-held map a
    /// [`ModelSnapshot`](crate::registry) serves).
    pub fn new(engine: &'a AsvEngine, speakers: &'a HashMap<u32, Arc<SpeakerModel>>) -> Self {
        Self { engine, speakers }
    }
}

impl SpeakerIdStage<'_> {
    fn unknown_speaker(&self, session: &SessionData) -> ComponentResult {
        ComponentResult {
            component: Component::SpeakerIdentity,
            attack_score: 2.0,
            detail: format!("unknown speaker id {}", session.claimed_speaker),
        }
    }
}

impl CascadeStage for SpeakerIdStage<'_> {
    fn component(&self) -> Component {
        Component::SpeakerIdentity
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        match self.speakers.get(&session.claimed_speaker) {
            Some(model) => speaker_id::verify(session, self.engine, model, config),
            None => self.unknown_speaker(session),
        }
    }

    fn run_observed(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        registry: &Registry,
    ) -> ComponentResult {
        match self.speakers.get(&session.claimed_speaker) {
            Some(model) => {
                let (result, score) =
                    speaker_id::verify_detailed(session, self.engine, model, config);
                registry
                    .counter("asv.score.pruned_components")
                    .add(score.pruned_components);
                registry
                    .counter("dsp.extract.alloc_bytes")
                    .add(score.scratch_grew_bytes);
                result
            }
            None => self.unknown_speaker(session),
        }
    }
}

/// A bitmask over cascade stages, indexed by [`Component::index`].
///
/// Masked-out stages are omitted from the run entirely — they appear in
/// neither the verdict nor the trace, and record no metrics. This is what
/// real ablation means: the stage never executes, instead of its result
/// being filtered out afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageMask(u8);

impl Default for StageMask {
    fn default() -> Self {
        Self::all()
    }
}

impl StageMask {
    /// Every stage enabled.
    pub fn all() -> Self {
        Self((1 << Component::COUNT) - 1)
    }

    /// No stage enabled (build up with [`StageMask::with`]).
    pub fn none() -> Self {
        Self(0)
    }

    /// Only the given stage enabled.
    pub fn only(c: Component) -> Self {
        Self(1 << c.index())
    }

    /// Returns the mask with `c` enabled.
    #[must_use]
    pub fn with(self, c: Component) -> Self {
        Self(self.0 | (1 << c.index()))
    }

    /// Returns the mask with `c` disabled.
    #[must_use]
    pub fn without(self, c: Component) -> Self {
        Self(self.0 & !(1 << c.index()))
    }

    /// Whether `c` is enabled.
    pub fn contains(self, c: Component) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// Number of enabled stages.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no stage is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// How the executor walks the stage list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionPolicy {
    /// Run every enabled, applicable stage — required whenever the
    /// verdict's per-stage scores feed a boundary sweep
    /// ([`DefenseVerdict::decision_at`]), as in the Fig. 12/14 FAR/FRR
    /// experiments.
    #[default]
    FullEvaluation,
    /// Stop evaluating at the first rejecting stage. Later stages are
    /// recorded as [`StageOutcome::Skipped`] in the verdict and as
    /// skipped entries in the [`PipelineTrace`], and each bumps its
    /// `pipeline.<stage>.skipped` counter. The accept/reject decision is
    /// identical to [`ExecutionPolicy::FullEvaluation`] — a rejection is
    /// final either way — but skipped stages have no scores, so the
    /// verdict cannot be re-thresholded.
    ShortCircuit,
}

impl ExecutionPolicy {
    /// The `policy` label value this policy stamps on labeled metrics:
    /// `"full"` or `"short_circuit"`.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionPolicy::FullEvaluation => "full",
            ExecutionPolicy::ShortCircuit => "short_circuit",
        }
    }
}

/// The cascade executor: an ordered stage list, a stage mask and an
/// execution policy.
///
/// Borrow-built from a trained
/// [`DefenseSystem`](crate::pipeline::DefenseSystem) via
/// [`DefenseSystem::cascade`](crate::pipeline::DefenseSystem::cascade),
/// then customized with [`Cascade::with_mask`] / [`Cascade::with_policy`].
pub struct Cascade<'a> {
    stages: Vec<Box<dyn CascadeStage + Send + Sync + 'a>>,
    mask: StageMask,
    policy: ExecutionPolicy,
}

impl<'a> Cascade<'a> {
    /// A cascade over an explicit stage list (run in the given order),
    /// with all stages enabled and full evaluation.
    pub fn new(stages: Vec<Box<dyn CascadeStage + Send + Sync + 'a>>) -> Self {
        Self {
            stages,
            mask: StageMask::all(),
            policy: ExecutionPolicy::FullEvaluation,
        }
    }

    /// The standard five-stage cascade in cheapest-first order:
    /// loudspeaker (IMU-rate magnetometer only), distance (trajectory +
    /// pilot ranging), SLD (dual-mic level difference), sound field
    /// (SVM over sweep features), speaker identity (resample + MFCC +
    /// GMM — the dominant cost per Fig. 15, so it always runs last).
    pub fn standard(
        sound_field: &'a SoundFieldModel,
        engine: &'a AsvEngine,
        speakers: &'a HashMap<u32, Arc<SpeakerModel>>,
    ) -> Self {
        Self::new(vec![
            Box::new(LoudspeakerStage),
            Box::new(DistanceStage),
            Box::new(SldStage),
            Box::new(SoundFieldStage::new(sound_field)),
            Box::new(SpeakerIdStage::new(engine, speakers)),
        ])
    }

    /// Returns the cascade with the given stage mask.
    #[must_use]
    pub fn with_mask(mut self, mask: StageMask) -> Self {
        self.mask = mask;
        self
    }

    /// Returns the cascade with the given execution policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active stage mask.
    pub fn mask(&self) -> StageMask {
        self.mask
    }

    /// The active execution policy.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// The components of the configured stages, in execution order.
    pub fn components(&self) -> Vec<Component> {
        self.stages.iter().map(|s| s.component()).collect()
    }

    /// Runs the cascade on one session.
    ///
    /// Per stage that runs: one child span under the `verify` root, one
    /// `pipeline.<name>.seconds` histogram sample, and one
    /// [`ComponentTrace`] entry. Per stage short-circuited past: a
    /// `pipeline.<name>.skipped` counter bump and a skipped trace entry,
    /// with **no** span and **no** histogram sample. Masked-out and
    /// inapplicable stages are omitted entirely.
    ///
    /// Raw stage scores are divided by the per-stage boundary from
    /// `config.stage_boundaries`, so downstream decision logic keeps its
    /// single boundary at 1.0.
    pub fn run(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> (DefenseVerdict, PipelineTrace) {
        let mut state = SessionRun::begin(session, obs, self.policy);
        if !state.invalid {
            for stage in &self.stages {
                self.step(stage.as_ref(), session, config, obs, &mut state);
            }
        }
        state.finish(obs)
    }

    /// Runs the cascade over a whole batch of sessions **stage-major**:
    /// the cheapest stage evaluates every session before the next stage
    /// starts, so under [`ExecutionPolicy::ShortCircuit`] the early
    /// magnetometer/trajectory rejections prune the batch before the
    /// expensive ASV stage touches it.
    ///
    /// Stages are pure functions of `(session, config)` and the per-stage
    /// step is the same code path as [`Cascade::run`], so the verdicts —
    /// decisions, scores, skip records — are bit-identical to running
    /// each session through [`Cascade::run`] sequentially, under either
    /// execution policy. Results are returned in input order.
    pub fn run_batch(
        &self,
        sessions: &[&SessionData],
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> Vec<(DefenseVerdict, PipelineTrace)> {
        let mut states: Vec<SessionRun> = sessions
            .iter()
            .map(|s| SessionRun::begin(s, obs, self.policy))
            .collect();
        for stage in &self.stages {
            for (state, session) in states.iter_mut().zip(sessions) {
                if !state.invalid {
                    self.step(stage.as_ref(), session, config, obs, state);
                }
            }
        }
        states.into_iter().map(|s| s.finish(obs)).collect()
    }

    /// One (stage, session) step — the single code path shared by
    /// session-major [`Cascade::run`] and stage-major
    /// [`Cascade::run_batch`], which is what makes their verdicts
    /// identical by construction.
    fn step(
        &self,
        stage: &(dyn CascadeStage + Send + Sync),
        session: &SessionData,
        config: &DefenseConfig,
        obs: &PipelineObs,
        state: &mut SessionRun,
    ) {
        let registry = &obs.registry;
        let component = stage.component();
        if !self.mask.contains(component) || !stage.applies_to(session) {
            return;
        }
        let name = component.name();
        if let (ExecutionPolicy::ShortCircuit, Some(cause)) = (self.policy, state.rejector) {
            registry.counter(&format!("pipeline.{name}.skipped")).inc();
            obs.stage_skipped
                .with(&Labels::new().stage(name).policy(self.policy.name()))
                .inc();
            state.trace.components.push(ComponentTrace {
                component: name.to_string(),
                passed: false,
                attack_score: 0.0,
                threshold_margin: 0.0,
                duration_s: 0.0,
                detail: format!("short-circuited by {}", cause.name()),
                skipped: true,
            });
            state
                .outcomes
                .push(StageOutcome::Skipped(SkippedStage { component, cause }));
            return;
        }
        let mut span = state.root.child(name);
        let stage_started = Instant::now();
        let mut r = stage.run_observed(session, config, registry);
        r.attack_score /= config.stage_boundaries.get(component);
        // Clamped to 1 ns so "every stage took strictly positive
        // time" holds even on coarse-clock platforms.
        let duration_s = stage_started.elapsed().as_secs_f64().max(1e-9);
        registry
            .histogram(&format!("pipeline.{name}.seconds"))
            .record_secs(duration_s);
        // Labeled twin with the session's trace id as exemplar: a p99
        // spike in the scrape points straight at its JSONL trace record.
        obs.stage_seconds
            .with(&Labels::new().stage(name).policy(self.policy.name()))
            .record_secs_with_exemplar(duration_s, &state.trace.session);
        span.event("attack_score", format!("{:.4}", r.attack_score));
        span.event("passed", r.passes_at(1.0));
        state.trace.components.push(ComponentTrace {
            component: name.to_string(),
            passed: r.passes_at(1.0),
            attack_score: r.attack_score,
            threshold_margin: 1.0 - r.attack_score,
            duration_s,
            detail: r.detail.clone(),
            skipped: false,
        });
        if state.rejector.is_none() && !r.passes_at(1.0) {
            state.rejector = Some(component);
        }
        state.outcomes.push(StageOutcome::Ran(r));
    }
}

/// In-flight execution state of one session walking the cascade. Owned by
/// [`Cascade::run`] for a single session and by [`Cascade::run_batch`]
/// once per batch entry; the per-stage transition is `Cascade::step`.
struct SessionRun {
    root: Span,
    trace: PipelineTrace,
    outcomes: Vec<StageOutcome>,
    rejector: Option<Component>,
    started: Instant,
    /// The cascade's execution policy, stamped as the `policy` label on
    /// this session's labeled metrics.
    policy: ExecutionPolicy,
    /// Failed [`SessionData::validate`]: no stage runs, the verdict is
    /// [`DefenseVerdict::rejected_invalid`].
    invalid: bool,
    invalid_reason: Option<String>,
}

impl SessionRun {
    fn begin(session: &SessionData, obs: &PipelineObs, policy: ExecutionPolicy) -> Self {
        let started = Instant::now();
        let mut root = Span::enter(&obs.tracer, "verify");
        let trace = PipelineTrace {
            session: format!("speaker-{}", session.claimed_speaker),
            ..PipelineTrace::default()
        };
        let invalid_reason = session.validate().err().map(|e| e.to_string());
        if let Some(reason) = &invalid_reason {
            root.event("invalid", reason);
            obs.registry.counter("pipeline.invalid").inc();
        }
        Self {
            root,
            trace,
            outcomes: Vec::new(),
            rejector: None,
            started,
            policy,
            invalid: invalid_reason.is_some(),
            invalid_reason,
        }
    }

    fn finish(mut self, obs: &PipelineObs) -> (DefenseVerdict, PipelineTrace) {
        let registry = &obs.registry;
        self.trace.total_s = self.started.elapsed().as_secs_f64().max(1e-9);
        if let Some(reason) = self.invalid_reason {
            registry.counter("pipeline.rejects").inc();
            return (DefenseVerdict::rejected_invalid(reason), self.trace);
        }
        let verdict = DefenseVerdict::from_stages(self.outcomes);
        self.trace.accepted = verdict.accepted();
        registry
            .histogram("pipeline.verify.seconds")
            .record_secs(self.trace.total_s);
        obs.verify_seconds
            .with(&Labels::new().policy(self.policy.name()))
            .record_secs_with_exemplar(self.trace.total_s, &self.trace.session);
        registry
            .counter(if self.trace.accepted {
                "pipeline.accepts"
            } else {
                "pipeline.rejects"
            })
            .inc();
        self.root.event(
            "decision",
            if self.trace.accepted {
                "accept"
            } else {
                "reject"
            },
        );
        (verdict, self.trace)
    }
}

// ---------------------------------------------------------------------------
// Streaming cascade: incremental per-stage state machines.
// ---------------------------------------------------------------------------

/// Everything a stage state machine needs at open time, owned so the
/// machine outlives the borrowed stage that opened it (the batch stages
/// [`SoundFieldStage`] / [`SpeakerIdStage`] borrow from a
/// [`ModelSnapshot`]; their states hold their own `Arc` clone instead).
#[derive(Clone)]
pub struct StreamStageCtx {
    /// The pinned model snapshot the stream is scored against.
    pub snapshot: Arc<ModelSnapshot>,
    /// Audio sample rate of the stream (Hz).
    pub audio_rate: f64,
    /// IMU sample rate of the stream (Hz).
    pub imu_rate: f64,
    /// When the ranging sweep starts (s from stream start) — fixes the
    /// close-range segment boundary for the loudspeaker deviation bound.
    pub sweep_start_s: f64,
    /// Whether the stream carries a second microphone channel.
    pub dual_mic: bool,
    /// Claimed speaker identity.
    pub claimed_speaker: u32,
}

/// What a stage state machine reports after ingesting a chunk.
#[derive(Debug, Clone)]
pub enum StageStatus {
    /// Not enough evidence yet — keep streaming.
    Continue,
    /// Sound mid-stream rejection: a **monotone lower bound** on the
    /// stage's final raw score already crosses the configured boundary,
    /// so the full-session one-shot cascade is guaranteed to reject too.
    /// The carried result is raw (factory-boundary), like
    /// [`CascadeStage::run`]'s.
    EarlyReject(ComponentResult),
    /// The stage's result is final and cannot change with more data.
    /// None of the five standard stages can settle an *accept*
    /// mid-stream (later samples can always raise their score), so the
    /// standard machines never emit this; custom stages with bounded
    /// lookahead may.
    Settled(ComponentResult),
}

/// A cascade stage that can also run as an incremental state machine
/// over a chunked session: `open → ingest(chunk)* → finalize`.
///
/// The streaming path is *conservative by construction*: `ingest` may
/// only report [`StageStatus::EarlyReject`] when the full-session
/// one-shot score provably crosses the boundary too (monotone lower
/// bound), and the authoritative result always comes from the same
/// one-shot code path [`Cascade::run`] uses — which is what keeps
/// streaming verdicts decision-identical to batch verdicts.
pub trait StreamingStage: CascadeStage {
    /// Opens an incremental state machine for one stream.
    fn open(&self, ctx: &StreamStageCtx) -> Box<dyn StageState>;
}

/// An in-flight stage state machine (see [`StreamingStage`]).
///
/// `ingest` receives the whole accumulated session prefix — every chunk
/// seen so far, already concatenated — and tracks its own consumed-data
/// cursors, so machines never observe a chunk seam.
pub trait StageState: Send {
    /// The stage's stable identity.
    fn component(&self) -> Component;

    /// Whether the stage applies to this stream at all (fixed at open
    /// time — e.g. the SLD check on a single-mic stream).
    fn applies(&self) -> bool {
        true
    }

    /// Consumes the newly arrived suffix of the accumulated prefix
    /// `session` and reports whether the stage can already conclude.
    fn ingest(&mut self, session: &SessionData, config: &DefenseConfig) -> StageStatus;

    /// A provisional raw attack score for progress reporting, if the
    /// machine has one. **Advisory only** — provisional scores may use
    /// approximations (running-mean CMN, untrimmed frames) and never
    /// feed decisions.
    fn provisional(&self, config: &DefenseConfig) -> Option<f64> {
        let _ = config;
        None
    }

    /// The stage's authoritative one-shot result on the complete
    /// session — the same computation [`CascadeStage::run`] performs.
    fn finalize(self: Box<Self>, session: &SessionData, config: &DefenseConfig) -> ComponentResult;
}

/// Opens the standard five stage machines in cheapest-first order —
/// the streaming twin of [`Cascade::standard`].
pub fn standard_stream_states(ctx: &StreamStageCtx) -> Vec<Box<dyn StageState>> {
    let snapshot = Arc::clone(&ctx.snapshot);
    vec![
        StreamingStage::open(&LoudspeakerStage, ctx),
        StreamingStage::open(&DistanceStage, ctx),
        StreamingStage::open(&SldStage, ctx),
        StreamingStage::open(&SoundFieldStage::new(&snapshot.sound_field), ctx),
        StreamingStage::open(
            &SpeakerIdStage::new(&snapshot.engine, &snapshot.speakers),
            ctx,
        ),
    ]
}

/// Loudspeaker state machine: feeds every magnetometer magnitude into a
/// [`loudspeaker::StreamingRateTracker`], whose running changing-rate
/// maximum and baseline-deviation bound lower-bound the one-shot stage
/// score — the provably sound mid-stream early reject in the standard
/// cascade.
struct LoudspeakerState {
    tracker: loudspeaker::StreamingRateTracker,
    fed: usize,
}

impl StageState for LoudspeakerState {
    fn component(&self) -> Component {
        Component::Loudspeaker
    }

    fn ingest(&mut self, session: &SessionData, config: &DefenseConfig) -> StageStatus {
        for r in &session.mag_readings[self.fed.min(session.mag_readings.len())..] {
            self.tracker.push(r.norm());
        }
        self.fed = session.mag_readings.len();
        let raw = self.tracker.raw_score_bound(config);
        if raw / config.stage_boundaries.get(Component::Loudspeaker) >= 1.0 {
            return StageStatus::EarlyReject(ComponentResult {
                component: Component::Loudspeaker,
                attack_score: raw,
                detail: format!(
                    "mid-stream deviation ≥ {:.2} µT (Mt {}), rate ≥ {:.1} µT/s (βt {}) after {} samples",
                    self.tracker.max_deviation_ut(),
                    config.mag_deviation_ut,
                    self.tracker.max_rate_ut_per_s(),
                    config.mag_rate_ut_per_s,
                    self.fed
                ),
            });
        }
        StageStatus::Continue
    }

    fn provisional(&self, config: &DefenseConfig) -> Option<f64> {
        Some(self.tracker.raw_score_bound(config))
    }

    fn finalize(self: Box<Self>, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        loudspeaker::verify(session, config).result
    }
}

impl StreamingStage for LoudspeakerStage {
    fn open(&self, ctx: &StreamStageCtx) -> Box<dyn StageState> {
        // Matches `SessionData::sweep_start_index() / 2` bitwise.
        let close_start = ((ctx.sweep_start_s * ctx.imu_rate).round() as usize) / 2;
        Box::new(LoudspeakerState {
            tracker: loudspeaker::StreamingRateTracker::new(ctx.imu_rate, close_start),
            fed: 0,
        })
    }
}

/// Distance state machine. Trajectory reconstruction and pilot ranging
/// score the *whole* approach sweep — a short prefix legitimately looks
/// close (the phone starts at the mouth), so no prefix statistic
/// lower-bounds the final score and the machine holds until finalize.
struct DistanceState;

impl StageState for DistanceState {
    fn component(&self) -> Component {
        Component::Distance
    }

    fn ingest(&mut self, _session: &SessionData, _config: &DefenseConfig) -> StageStatus {
        StageStatus::Continue
    }

    fn finalize(self: Box<Self>, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        distance::verify(session, config).result
    }
}

impl StreamingStage for DistanceStage {
    fn open(&self, _ctx: &StreamStageCtx) -> Box<dyn StageState> {
        Box::new(DistanceState)
    }
}

/// SLD state machine: applicability (dual mic) is fixed at open time;
/// the level-difference statistic is an average over the full utterance,
/// so the machine holds until finalize.
struct SldState {
    applies: bool,
}

impl StageState for SldState {
    fn component(&self) -> Component {
        Component::Sld
    }

    fn applies(&self) -> bool {
        self.applies
    }

    fn ingest(&mut self, _session: &SessionData, _config: &DefenseConfig) -> StageStatus {
        StageStatus::Continue
    }

    fn finalize(self: Box<Self>, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        sld::verify(session, config)
    }
}

impl StreamingStage for SldStage {
    fn open(&self, ctx: &StreamStageCtx) -> Box<dyn StageState> {
        Box::new(SldState {
            applies: ctx.dual_mic,
        })
    }
}

/// Sound-field state machine: the SVM classifies features of the whole
/// sweep, so the machine pins the snapshot and holds until finalize.
struct SoundFieldState {
    snapshot: Arc<ModelSnapshot>,
}

impl StageState for SoundFieldState {
    fn component(&self) -> Component {
        Component::SoundField
    }

    fn ingest(&mut self, _session: &SessionData, _config: &DefenseConfig) -> StageStatus {
        StageStatus::Continue
    }

    fn finalize(self: Box<Self>, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        sound_field::verify(session, &self.snapshot.sound_field, config)
    }
}

impl StreamingStage for SoundFieldStage<'_> {
    fn open(&self, ctx: &StreamStageCtx) -> Box<dyn StageState> {
        Box::new(SoundFieldState {
            snapshot: Arc::clone(&ctx.snapshot),
        })
    }
}

/// A borrowed row range of a [`FrameMatrix`], presented as a
/// [`FrameSource`] so the incremental LLR accumulator can score just the
/// newly stable feature rows.
struct RowRange<'a> {
    frames: &'a FrameMatrix,
    start: usize,
    end: usize,
}

impl FrameSource for RowRange<'_> {
    fn num_frames(&self) -> usize {
        self.end - self.start
    }
    fn frame(&self, i: usize) -> &[f64] {
        self.frames.row(self.start + i)
    }
    fn frame_dim(&self) -> usize {
        self.frames.cols()
    }
}

/// Rows whose delta window can still shift as more frames arrive; the
/// provisional scorer stays this far behind the newest feature row.
const DELTA_EDGE_ROWS: usize = 2;

/// Speaker-identity state machine: a genuinely incremental ASV front
/// half — chunk-fed pilot-removal/resampling
/// ([`speaker_id::StreamingAsvAudio`], bit-identical to the one-shot
/// path), chunk-fed MFCC/VAD ([`StreamingExtractor`]) and per-frame LLR
/// accumulation ([`LlrAccumulator`] on the prepared GMMs) — feeding a
/// *provisional* score trend.
///
/// The trend is advisory only: provisional features come from the
/// untrimmed signal under a running cepstral mean, while the one-shot
/// frontend trims by whole-utterance VAD and normalizes by the
/// whole-utterance mean (deltas are CMN-invariant, so those match up to
/// the clamped edge rows). The authoritative score — and the decision —
/// always comes from [`StageState::finalize`]'s one-shot path.
struct SpeakerIdState {
    snapshot: Arc<ModelSnapshot>,
    model: Option<Arc<SpeakerModel>>,
    resampler: speaker_id::StreamingAsvAudio,
    extractor: StreamingExtractor,
    accum: LlrAccumulator,
    scratch: ScoreScratch,
    provis: FrameMatrix,
    audio_fed: usize,
    voice_fed: usize,
    scored_rows: usize,
}

impl StageState for SpeakerIdState {
    fn component(&self) -> Component {
        Component::SpeakerIdentity
    }

    fn ingest(&mut self, session: &SessionData, config: &DefenseConfig) -> StageStatus {
        if self.model.is_none() {
            return StageStatus::Continue;
        }
        if session.audio.len() > self.audio_fed {
            self.resampler.push(&session.audio[self.audio_fed..]);
            self.audio_fed = session.audio.len();
        }
        let ready = self.resampler.ready();
        if ready.len() > self.voice_fed {
            let (from, to) = (self.voice_fed, ready.len());
            self.voice_fed = to;
            // Split borrow: `ready` borrows self.resampler, push borrows
            // self.extractor.
            let chunk: Vec<f64> = self.resampler.ready()[from..to].to_vec();
            self.extractor.push(&chunk);
        }
        self.extractor.provisional_into(&mut self.provis);
        let stable = self.provis.rows().saturating_sub(DELTA_EDGE_ROWS);
        if stable > self.scored_rows {
            let model = self.model.as_ref().expect("checked above").clone();
            let view = RowRange {
                frames: &self.provis,
                start: self.scored_rows,
                end: stable,
            };
            let ubm = match &self.snapshot.engine {
                AsvEngine::Ubm(b) => b,
                AsvEngine::Isv(b) => &b.ubm_backend,
            };
            if config.asv_quantized {
                self.accum.ingest_quantized(
                    model.quantized(),
                    ubm.quantized_ubm(),
                    &view,
                    config.asv_top_c,
                    &mut self.scratch,
                );
            } else {
                self.accum.ingest(
                    model.prepared(),
                    ubm.prepared_ubm(),
                    &view,
                    config.asv_top_c,
                    &mut self.scratch,
                );
            }
            self.scored_rows = stable;
        }
        StageStatus::Continue
    }

    fn provisional(&self, config: &DefenseConfig) -> Option<f64> {
        let model = self.model.as_ref()?;
        if self.accum.frames() == 0 {
            return None;
        }
        let z = model.normalize(self.accum.score());
        let threshold = model.calibrated_threshold(config.asv_threshold);
        Some(if z.is_finite() {
            (1.0 - (z - threshold) / config.asv_scale).max(0.0)
        } else {
            2.0
        })
    }

    fn finalize(self: Box<Self>, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        match &self.model {
            Some(model) => speaker_id::verify(session, &self.snapshot.engine, model, config),
            None => ComponentResult {
                component: Component::SpeakerIdentity,
                attack_score: 2.0,
                detail: format!("unknown speaker id {}", session.claimed_speaker),
            },
        }
    }
}

impl StreamingStage for SpeakerIdStage<'_> {
    fn open(&self, ctx: &StreamStageCtx) -> Box<dyn StageState> {
        let backend = match &ctx.snapshot.engine {
            AsvEngine::Ubm(b) => b,
            AsvEngine::Isv(b) => &b.ubm_backend,
        };
        let extractor = StreamingExtractor::new(&backend.extractor);
        let dim = extractor.dim();
        Box::new(SpeakerIdState {
            snapshot: Arc::clone(&ctx.snapshot),
            model: ctx.snapshot.speakers.get(&ctx.claimed_speaker).cloned(),
            resampler: speaker_id::StreamingAsvAudio::new(ctx.audio_rate),
            extractor,
            accum: LlrAccumulator::new(),
            scratch: ScoreScratch::new(),
            provis: FrameMatrix::new(dim),
            audio_fed: 0,
            voice_fed: 0,
            scored_rows: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::attacks::AttackKind;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;
    use proptest::prelude::*;

    fn replay_session(seed: u64) -> crate::session::SessionData {
        let (_, user) = crate::test_support::shared_tiny_system();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(seed))
    }

    #[test]
    fn standard_order_is_cheapest_first() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        assert_eq!(sys.cascade().components(), Component::all().to_vec());
    }

    #[test]
    fn mask_operations() {
        let all = StageMask::all();
        assert_eq!(all.len(), Component::COUNT);
        for c in Component::all() {
            assert!(all.contains(c));
            let m = all.without(c);
            assert!(!m.contains(c));
            assert_eq!(m.len(), Component::COUNT - 1);
            assert_eq!(m.with(c), all);
            assert_eq!(StageMask::only(c).len(), 1);
        }
        assert!(StageMask::none().is_empty());
    }

    #[test]
    fn masked_stage_is_truly_omitted() {
        let (sys, user) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(300));
        let mask = StageMask::all().without(Component::SpeakerIdentity);
        let (v, trace) = sys
            .cascade()
            .with_mask(mask)
            .run(&s, &sys.config, sys.obs());
        assert!(v.result_of(Component::SpeakerIdentity).is_none());
        assert!(v.skipped_of(Component::SpeakerIdentity).is_none());
        assert!(trace.component("speaker_id").is_none());
        // Omitted means no metrics either: the histogram never existed.
        let snap = sys.metrics().snapshot();
        assert!(!snap.histograms.contains_key("pipeline.speaker_id.seconds"));
    }

    #[test]
    fn short_circuit_skips_after_first_rejection() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = replay_session(310);
        let (v, trace) = sys
            .cascade()
            .with_policy(ExecutionPolicy::ShortCircuit)
            .run(&s, &sys.config, sys.obs());
        assert!(!v.accepted());
        // The loudspeaker detector fires first on a magnet at 5 cm.
        let first = v.results().next().expect("at least one stage ran");
        assert_eq!(first.component, Component::Loudspeaker);
        assert!(first.attack_score >= 1.0);
        let sk = v
            .skipped_of(Component::SpeakerIdentity)
            .expect("ASV must be short-circuited");
        assert_eq!(sk.cause, Component::Loudspeaker);
        // Skip bookkeeping: counter bumped, no latency sample, trace entry.
        assert!(sys.metrics().counter("pipeline.speaker_id.skipped").get() >= 1);
        let snap = sys.metrics().snapshot();
        assert!(!snap.histograms.contains_key("pipeline.speaker_id.seconds"));
        let t = trace.component("speaker_id").expect("skipped trace entry");
        assert!(t.skipped);
        assert_eq!(t.duration_s, 0.0);
    }

    #[test]
    fn full_evaluation_never_skips() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = replay_session(311);
        let (v, _) = sys.cascade().run(&s, &sys.config, sys.obs());
        assert!(!v.accepted());
        assert_eq!(v.skipped().count(), 0);
        assert_eq!(v.results().count(), v.stages.len());
    }

    #[test]
    fn stage_boundary_scales_the_decision() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let s = replay_session(312);
        let v = sys.verify(&s);
        let raw = v.result_of(Component::Loudspeaker).unwrap().attack_score;
        assert!(raw > 1.0, "replay at 5 cm trips the magnetometer");
        // Widen only the loudspeaker boundary far past the raw score: the
        // normalized score shrinks proportionally.
        let widened = sys
            .config
            .with_stage_boundary(Component::Loudspeaker, raw * 2.0);
        let v2 = sys.verify_with_config(&s, &widened);
        let scaled = v2.result_of(Component::Loudspeaker).unwrap().attack_score;
        assert!(
            (scaled - 0.5).abs() < 1e-9,
            "score {raw} / boundary {} should be 0.5, got {scaled}",
            raw * 2.0
        );
    }

    #[test]
    fn pruning_counters_surface_through_the_registry() {
        let (sys, user) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(77));
        // Default top-C (8) equals the tiny system's component count, so
        // nothing is pruned and the counter reads zero.
        sys.verify(&s);
        assert_eq!(
            sys.metrics().counter("asv.score.pruned_components").get(),
            0,
            "C = k must be exact"
        );
        // C=4 of 8 prunes exactly 4 speaker-side evaluations per frame.
        let pruned_cfg = DefenseConfig {
            asv_top_c: 4,
            ..sys.config
        };
        sys.verify_with_config(&s, &pruned_cfg);
        let pruned = sys.metrics().counter("asv.score.pruned_components").get();
        assert!(pruned > 0, "C < k must record pruned evaluations");
        assert_eq!(pruned % 4, 0, "4 skips per scored frame");
        // The allocation counter exists (warm scratch reads 0 growth, a
        // cold thread records its warm-up), and the decision is unchanged.
        let snap = sys.metrics().snapshot();
        assert!(snap.counters.contains_key("dsp.extract.alloc_bytes"));
    }

    proptest! {
        // Each case runs the full cascade (GMM scoring included) twice,
        // so keep the case count low; the fixture is shared.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// End-to-end decision identity of the fast path: at the default
        /// top-C the cascade's verdict is identical between sequential and
        /// stage-major batch execution under both policies; and pruned
        /// acceptance is one-sided — the pruned score lower-bounds the
        /// exact score, so a session accepted with pruning is always
        /// accepted exactly (pruning can never introduce a false accept).
        #[test]
        fn pruned_cascade_decisions_are_identical_and_one_sided(
            seed in 0u64..5000,
            attack in 0u8..2,
        ) {
            let (sys, user) = crate::test_support::shared_tiny_system();
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
            };
            let exact_cfg = DefenseConfig { asv_top_c: 0, ..sys.config };
            let pruned_cfg = DefenseConfig { asv_top_c: 4, ..sys.config };
            for policy in [ExecutionPolicy::FullEvaluation, ExecutionPolicy::ShortCircuit] {
                // Default config (top-C = component count here → exact):
                // batch and sequential agree with the exact-config run.
                let seq = sys.cascade().with_policy(policy).run(&s, &sys.config, sys.obs()).0;
                let batch = sys
                    .cascade()
                    .with_policy(policy)
                    .run_batch(&[&s], &sys.config, sys.obs())
                    .remove(0)
                    .0;
                prop_assert_eq!(seq.decision, batch.decision);
                let exact = sys.cascade().with_policy(policy).run(&s, &exact_cfg, sys.obs()).0;
                prop_assert_eq!(seq.decision, exact.decision, "default C = k must be exact");
                // Aggressive pruning: acceptance implies exact acceptance.
                let pruned = sys.cascade().with_policy(policy).run(&s, &pruned_cfg, sys.obs()).0;
                if pruned.accepted() {
                    prop_assert!(exact.accepted(), "pruning introduced a false accept");
                }
            }
        }

        /// ShortCircuit and FullEvaluation always agree on accept/reject
        /// for the same session: a rejection is final under both policies.
        #[test]
        fn policies_agree_on_decision(seed in 0u64..5000, attack in 0u8..2) {
            let (sys, user) = crate::test_support::shared_tiny_system();
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
            };
            let full = sys
                .cascade()
                .run(&s, &sys.config, sys.obs())
                .0;
            let short = sys
                .cascade()
                .with_policy(ExecutionPolicy::ShortCircuit)
                .run(&s, &sys.config, sys.obs())
                .0;
            prop_assert_eq!(full.decision, short.decision);
            // And the stages that did run scored identically.
            for r in short.results() {
                let f = full.result_of(r.component).expect("full ran every stage");
                prop_assert!((f.attack_score - r.attack_score).abs() < 1e-12);
            }
        }

        /// Under ShortCircuit, no stage after the first rejection has a
        /// recorded duration or histogram sample — only a skip counter.
        #[test]
        fn short_circuit_records_nothing_after_rejection(seed in 0u64..5000) {
            let (sys, _) = crate::test_support::shared_tiny_system();
            let sys = sys.with_fresh_obs();
            let s = replay_session(seed);
            let (v, trace) = sys
                .cascade()
                .with_policy(ExecutionPolicy::ShortCircuit)
                .run(&s, &sys.config, sys.obs());
            prop_assert!(!v.accepted(), "replay at 5 cm must reject");
            let snap = sys.metrics().snapshot();
            let mut rejected_seen = false;
            for outcome in &v.stages {
                let name = outcome.component().name();
                match outcome {
                    StageOutcome::Ran(r) => {
                        prop_assert!(!rejected_seen, "no stage runs after the first rejection");
                        let t = trace.component(name).expect("ran stage is traced");
                        prop_assert!(!t.skipped);
                        prop_assert!(t.duration_s > 0.0);
                        prop_assert!(
                            snap.histograms[&format!("pipeline.{name}.seconds")].count >= 1
                        );
                        if r.attack_score >= 1.0 {
                            rejected_seen = true;
                        }
                    }
                    StageOutcome::Skipped(_) => {
                        prop_assert!(rejected_seen, "skips only after a rejection");
                        let t = trace.component(name).expect("skipped stage is traced");
                        prop_assert!(t.skipped);
                        prop_assert!(t.duration_s == 0.0);
                        prop_assert!(
                            !snap.histograms.contains_key(&format!("pipeline.{name}.seconds")),
                            "skipped stage must not have a latency sample"
                        );
                        prop_assert!(sys.metrics().counter(&format!("pipeline.{name}.skipped")).get() >= 1);
                    }
                }
            }
        }
    }
}

//! The verification cascade as a first-class subsystem.
//!
//! The paper's defense is explicitly a *cascade* (Fig. 4, Table III):
//! complementary detectors where any rejection ends the session, with the
//! cheap magnetometer/trajectory checks gating the expensive ASV back
//! end. This module makes that structure explicit:
//!
//! - [`CascadeStage`] is the uniform stage interface — a stable
//!   [`Component`] identity, an applicability check, and a
//!   `run(&SessionData, &DefenseConfig) -> ComponentResult` body — that
//!   the five existing components implement ([`DistanceStage`],
//!   [`SldStage`], [`SoundFieldStage`], [`LoudspeakerStage`],
//!   [`SpeakerIdStage`]);
//! - [`Cascade`] is the executor: an ordered stage list, a [`StageMask`]
//!   for real ablation, and an [`ExecutionPolicy`] selecting between
//!   full evaluation and short-circuiting.
//!
//! Stages run **cheapest first** (see [`Cascade::standard`]): the
//! loudspeaker detector touches only the IMU-rate magnetometer stream,
//! while speaker identity resamples audio and scores a GMM — per the
//! Fig. 15 latency data the ASV back end dominates per-session compute,
//! so under [`ExecutionPolicy::ShortCircuit`] a session the magnetometer
//! already condemned never pays for it. The order is decision-invariant
//! under [`ExecutionPolicy::FullEvaluation`] (every stage always runs and
//! the verdict is the conjunction of all stage decisions).
//!
//! All metric, span and trace names derive from [`Component::name`]:
//! `pipeline.<name>.seconds` latency histograms for stages that ran and
//! `pipeline.<name>.skipped` counters for stages the executor
//! short-circuited past.

use crate::components::sound_field::SoundFieldModel;
use crate::components::speaker_id::AsvEngine;
use crate::components::{distance, loudspeaker, sld, sound_field, speaker_id};
use crate::config::DefenseConfig;
use crate::pipeline::PipelineObs;
use crate::session::SessionData;
use crate::verdict::{Component, ComponentResult, DefenseVerdict, SkippedStage, StageOutcome};
use magshield_asv::model::SpeakerModel;
use magshield_obs::labels::Labels;
use magshield_obs::metrics::Registry;
use magshield_obs::span::Span;
use magshield_obs::trace::{ComponentTrace, PipelineTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One stage of the verification cascade.
///
/// A stage owns no observability: it computes a [`ComponentResult`] whose
/// `attack_score` is normalized so 1.0 is the stage's *factory* decision
/// boundary. The [`Cascade`] executor handles spans, latency histograms,
/// per-session traces, and division by the per-stage boundary from
/// [`DefenseConfig::stage_boundaries`](crate::config::StageBoundaries).
pub trait CascadeStage {
    /// The stage's stable identity (names, wire tags and mask bits all
    /// derive from it).
    fn component(&self) -> Component;

    /// Whether this stage can evaluate `session` at all. Inapplicable
    /// stages are omitted from the verdict entirely (e.g. the dual-mic
    /// SLD check on a single-microphone phone).
    fn applies_to(&self, _session: &SessionData) -> bool {
        true
    }

    /// Evaluates the session, returning a raw (factory-boundary)
    /// component result.
    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult;

    /// Like [`CascadeStage::run`], but with access to the metrics
    /// registry for stage-internal counters. The default ignores the
    /// registry; stages with instrumented internals (the ASV fast path)
    /// override this. The executor always calls this variant.
    fn run_observed(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        registry: &Registry,
    ) -> ComponentResult {
        let _ = registry;
        self.run(session, config)
    }
}

/// Loudspeaker detection (§IV-B3) — magnetometer magnitude deviation and
/// changing rate. Cheapest stage: IMU-rate data only.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoudspeakerStage;

impl CascadeStage for LoudspeakerStage {
    fn component(&self) -> Component {
        Component::Loudspeaker
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        loudspeaker::verify(session, config).result
    }
}

/// Sound source distance verification (§IV-B1) — trajectory
/// reconstruction plus pilot-tone ranging.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistanceStage;

impl CascadeStage for DistanceStage {
    fn component(&self) -> Component {
        Component::Distance
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        distance::verify(session, config).result
    }
}

/// Dual-microphone sound-level-difference range check (§VII). Applies
/// only to sessions captured on a dual-mic phone.
#[derive(Debug, Clone, Copy, Default)]
pub struct SldStage;

impl CascadeStage for SldStage {
    fn component(&self) -> Component {
        Component::Sld
    }

    fn applies_to(&self, session: &SessionData) -> bool {
        session.audio2.is_some()
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        sld::verify(session, config)
    }
}

/// Sound field verification (§IV-B2) — SVM over (volume, rotation-angle)
/// features, borrowing the trained model.
#[derive(Debug, Clone, Copy)]
pub struct SoundFieldStage<'a> {
    model: &'a SoundFieldModel,
}

impl<'a> SoundFieldStage<'a> {
    /// A stage classifying against `model`.
    pub fn new(model: &'a SoundFieldModel) -> Self {
        Self { model }
    }
}

impl CascadeStage for SoundFieldStage<'_> {
    fn component(&self) -> Component {
        Component::SoundField
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        sound_field::verify(session, self.model, config)
    }
}

/// Speaker identity verification (§IV-C) — the ASV back end. Most
/// expensive stage (resampling, MFCC extraction, GMM scoring), so it runs
/// last.
#[derive(Debug, Clone, Copy)]
pub struct SpeakerIdStage<'a> {
    engine: &'a AsvEngine,
    speakers: &'a HashMap<u32, Arc<SpeakerModel>>,
}

impl<'a> SpeakerIdStage<'a> {
    /// A stage scoring against `engine` with the enrolled `speakers`
    /// (the `Arc`-held map a
    /// [`ModelSnapshot`](crate::registry::ModelSnapshot) serves).
    pub fn new(engine: &'a AsvEngine, speakers: &'a HashMap<u32, Arc<SpeakerModel>>) -> Self {
        Self { engine, speakers }
    }
}

impl SpeakerIdStage<'_> {
    fn unknown_speaker(&self, session: &SessionData) -> ComponentResult {
        ComponentResult {
            component: Component::SpeakerIdentity,
            attack_score: 2.0,
            detail: format!("unknown speaker id {}", session.claimed_speaker),
        }
    }
}

impl CascadeStage for SpeakerIdStage<'_> {
    fn component(&self) -> Component {
        Component::SpeakerIdentity
    }

    fn run(&self, session: &SessionData, config: &DefenseConfig) -> ComponentResult {
        match self.speakers.get(&session.claimed_speaker) {
            Some(model) => speaker_id::verify(session, self.engine, model, config),
            None => self.unknown_speaker(session),
        }
    }

    fn run_observed(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        registry: &Registry,
    ) -> ComponentResult {
        match self.speakers.get(&session.claimed_speaker) {
            Some(model) => {
                let (result, score) =
                    speaker_id::verify_detailed(session, self.engine, model, config);
                registry
                    .counter("asv.score.pruned_components")
                    .add(score.pruned_components);
                registry
                    .counter("dsp.extract.alloc_bytes")
                    .add(score.scratch_grew_bytes);
                result
            }
            None => self.unknown_speaker(session),
        }
    }
}

/// A bitmask over cascade stages, indexed by [`Component::index`].
///
/// Masked-out stages are omitted from the run entirely — they appear in
/// neither the verdict nor the trace, and record no metrics. This is what
/// real ablation means: the stage never executes, instead of its result
/// being filtered out afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageMask(u8);

impl Default for StageMask {
    fn default() -> Self {
        Self::all()
    }
}

impl StageMask {
    /// Every stage enabled.
    pub fn all() -> Self {
        Self((1 << Component::COUNT) - 1)
    }

    /// No stage enabled (build up with [`StageMask::with`]).
    pub fn none() -> Self {
        Self(0)
    }

    /// Only the given stage enabled.
    pub fn only(c: Component) -> Self {
        Self(1 << c.index())
    }

    /// Returns the mask with `c` enabled.
    #[must_use]
    pub fn with(self, c: Component) -> Self {
        Self(self.0 | (1 << c.index()))
    }

    /// Returns the mask with `c` disabled.
    #[must_use]
    pub fn without(self, c: Component) -> Self {
        Self(self.0 & !(1 << c.index()))
    }

    /// Whether `c` is enabled.
    pub fn contains(self, c: Component) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// Number of enabled stages.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no stage is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// How the executor walks the stage list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionPolicy {
    /// Run every enabled, applicable stage — required whenever the
    /// verdict's per-stage scores feed a boundary sweep
    /// ([`DefenseVerdict::decision_at`]), as in the Fig. 12/14 FAR/FRR
    /// experiments.
    #[default]
    FullEvaluation,
    /// Stop evaluating at the first rejecting stage. Later stages are
    /// recorded as [`StageOutcome::Skipped`] in the verdict and as
    /// skipped entries in the [`PipelineTrace`], and each bumps its
    /// `pipeline.<stage>.skipped` counter. The accept/reject decision is
    /// identical to [`ExecutionPolicy::FullEvaluation`] — a rejection is
    /// final either way — but skipped stages have no scores, so the
    /// verdict cannot be re-thresholded.
    ShortCircuit,
}

impl ExecutionPolicy {
    /// The `policy` label value this policy stamps on labeled metrics:
    /// `"full"` or `"short_circuit"`.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionPolicy::FullEvaluation => "full",
            ExecutionPolicy::ShortCircuit => "short_circuit",
        }
    }
}

/// The cascade executor: an ordered stage list, a stage mask and an
/// execution policy.
///
/// Borrow-built from a trained
/// [`DefenseSystem`](crate::pipeline::DefenseSystem) via
/// [`DefenseSystem::cascade`](crate::pipeline::DefenseSystem::cascade),
/// then customized with [`Cascade::with_mask`] / [`Cascade::with_policy`].
pub struct Cascade<'a> {
    stages: Vec<Box<dyn CascadeStage + Send + Sync + 'a>>,
    mask: StageMask,
    policy: ExecutionPolicy,
}

impl<'a> Cascade<'a> {
    /// A cascade over an explicit stage list (run in the given order),
    /// with all stages enabled and full evaluation.
    pub fn new(stages: Vec<Box<dyn CascadeStage + Send + Sync + 'a>>) -> Self {
        Self {
            stages,
            mask: StageMask::all(),
            policy: ExecutionPolicy::FullEvaluation,
        }
    }

    /// The standard five-stage cascade in cheapest-first order:
    /// loudspeaker (IMU-rate magnetometer only), distance (trajectory +
    /// pilot ranging), SLD (dual-mic level difference), sound field
    /// (SVM over sweep features), speaker identity (resample + MFCC +
    /// GMM — the dominant cost per Fig. 15, so it always runs last).
    pub fn standard(
        sound_field: &'a SoundFieldModel,
        engine: &'a AsvEngine,
        speakers: &'a HashMap<u32, Arc<SpeakerModel>>,
    ) -> Self {
        Self::new(vec![
            Box::new(LoudspeakerStage),
            Box::new(DistanceStage),
            Box::new(SldStage),
            Box::new(SoundFieldStage::new(sound_field)),
            Box::new(SpeakerIdStage::new(engine, speakers)),
        ])
    }

    /// Returns the cascade with the given stage mask.
    #[must_use]
    pub fn with_mask(mut self, mask: StageMask) -> Self {
        self.mask = mask;
        self
    }

    /// Returns the cascade with the given execution policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active stage mask.
    pub fn mask(&self) -> StageMask {
        self.mask
    }

    /// The active execution policy.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// The components of the configured stages, in execution order.
    pub fn components(&self) -> Vec<Component> {
        self.stages.iter().map(|s| s.component()).collect()
    }

    /// Runs the cascade on one session.
    ///
    /// Per stage that runs: one child span under the `verify` root, one
    /// `pipeline.<name>.seconds` histogram sample, and one
    /// [`ComponentTrace`] entry. Per stage short-circuited past: a
    /// `pipeline.<name>.skipped` counter bump and a skipped trace entry,
    /// with **no** span and **no** histogram sample. Masked-out and
    /// inapplicable stages are omitted entirely.
    ///
    /// Raw stage scores are divided by the per-stage boundary from
    /// `config.stage_boundaries`, so downstream decision logic keeps its
    /// single boundary at 1.0.
    pub fn run(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> (DefenseVerdict, PipelineTrace) {
        let mut state = SessionRun::begin(session, obs, self.policy);
        if !state.invalid {
            for stage in &self.stages {
                self.step(stage.as_ref(), session, config, obs, &mut state);
            }
        }
        state.finish(obs)
    }

    /// Runs the cascade over a whole batch of sessions **stage-major**:
    /// the cheapest stage evaluates every session before the next stage
    /// starts, so under [`ExecutionPolicy::ShortCircuit`] the early
    /// magnetometer/trajectory rejections prune the batch before the
    /// expensive ASV stage touches it.
    ///
    /// Stages are pure functions of `(session, config)` and the per-stage
    /// step is the same code path as [`Cascade::run`], so the verdicts —
    /// decisions, scores, skip records — are bit-identical to running
    /// each session through [`Cascade::run`] sequentially, under either
    /// execution policy. Results are returned in input order.
    pub fn run_batch(
        &self,
        sessions: &[&SessionData],
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> Vec<(DefenseVerdict, PipelineTrace)> {
        let mut states: Vec<SessionRun> = sessions
            .iter()
            .map(|s| SessionRun::begin(s, obs, self.policy))
            .collect();
        for stage in &self.stages {
            for (state, session) in states.iter_mut().zip(sessions) {
                if !state.invalid {
                    self.step(stage.as_ref(), session, config, obs, state);
                }
            }
        }
        states.into_iter().map(|s| s.finish(obs)).collect()
    }

    /// One (stage, session) step — the single code path shared by
    /// session-major [`Cascade::run`] and stage-major
    /// [`Cascade::run_batch`], which is what makes their verdicts
    /// identical by construction.
    fn step(
        &self,
        stage: &(dyn CascadeStage + Send + Sync),
        session: &SessionData,
        config: &DefenseConfig,
        obs: &PipelineObs,
        state: &mut SessionRun,
    ) {
        let registry = &obs.registry;
        let component = stage.component();
        if !self.mask.contains(component) || !stage.applies_to(session) {
            return;
        }
        let name = component.name();
        if let (ExecutionPolicy::ShortCircuit, Some(cause)) = (self.policy, state.rejector) {
            registry.counter(&format!("pipeline.{name}.skipped")).inc();
            obs.stage_skipped
                .with(&Labels::new().stage(name).policy(self.policy.name()))
                .inc();
            state.trace.components.push(ComponentTrace {
                component: name.to_string(),
                passed: false,
                attack_score: 0.0,
                threshold_margin: 0.0,
                duration_s: 0.0,
                detail: format!("short-circuited by {}", cause.name()),
                skipped: true,
            });
            state
                .outcomes
                .push(StageOutcome::Skipped(SkippedStage { component, cause }));
            return;
        }
        let mut span = state.root.child(name);
        let stage_started = Instant::now();
        let mut r = stage.run_observed(session, config, registry);
        r.attack_score /= config.stage_boundaries.get(component);
        // Clamped to 1 ns so "every stage took strictly positive
        // time" holds even on coarse-clock platforms.
        let duration_s = stage_started.elapsed().as_secs_f64().max(1e-9);
        registry
            .histogram(&format!("pipeline.{name}.seconds"))
            .record_secs(duration_s);
        // Labeled twin with the session's trace id as exemplar: a p99
        // spike in the scrape points straight at its JSONL trace record.
        obs.stage_seconds
            .with(&Labels::new().stage(name).policy(self.policy.name()))
            .record_secs_with_exemplar(duration_s, &state.trace.session);
        span.event("attack_score", format!("{:.4}", r.attack_score));
        span.event("passed", r.passes_at(1.0));
        state.trace.components.push(ComponentTrace {
            component: name.to_string(),
            passed: r.passes_at(1.0),
            attack_score: r.attack_score,
            threshold_margin: 1.0 - r.attack_score,
            duration_s,
            detail: r.detail.clone(),
            skipped: false,
        });
        if state.rejector.is_none() && !r.passes_at(1.0) {
            state.rejector = Some(component);
        }
        state.outcomes.push(StageOutcome::Ran(r));
    }
}

/// In-flight execution state of one session walking the cascade. Owned by
/// [`Cascade::run`] for a single session and by [`Cascade::run_batch`]
/// once per batch entry; the per-stage transition is `Cascade::step`.
struct SessionRun {
    root: Span,
    trace: PipelineTrace,
    outcomes: Vec<StageOutcome>,
    rejector: Option<Component>,
    started: Instant,
    /// The cascade's execution policy, stamped as the `policy` label on
    /// this session's labeled metrics.
    policy: ExecutionPolicy,
    /// Failed [`SessionData::validate`]: no stage runs, the verdict is
    /// [`DefenseVerdict::rejected_invalid`].
    invalid: bool,
    invalid_reason: Option<String>,
}

impl SessionRun {
    fn begin(session: &SessionData, obs: &PipelineObs, policy: ExecutionPolicy) -> Self {
        let started = Instant::now();
        let mut root = Span::enter(&obs.tracer, "verify");
        let trace = PipelineTrace {
            session: format!("speaker-{}", session.claimed_speaker),
            ..PipelineTrace::default()
        };
        let invalid_reason = session.validate().err().map(|e| e.to_string());
        if let Some(reason) = &invalid_reason {
            root.event("invalid", reason);
            obs.registry.counter("pipeline.invalid").inc();
        }
        Self {
            root,
            trace,
            outcomes: Vec::new(),
            rejector: None,
            started,
            policy,
            invalid: invalid_reason.is_some(),
            invalid_reason,
        }
    }

    fn finish(mut self, obs: &PipelineObs) -> (DefenseVerdict, PipelineTrace) {
        let registry = &obs.registry;
        self.trace.total_s = self.started.elapsed().as_secs_f64().max(1e-9);
        if let Some(reason) = self.invalid_reason {
            registry.counter("pipeline.rejects").inc();
            return (DefenseVerdict::rejected_invalid(reason), self.trace);
        }
        let verdict = DefenseVerdict::from_stages(self.outcomes);
        self.trace.accepted = verdict.accepted();
        registry
            .histogram("pipeline.verify.seconds")
            .record_secs(self.trace.total_s);
        obs.verify_seconds
            .with(&Labels::new().policy(self.policy.name()))
            .record_secs_with_exemplar(self.trace.total_s, &self.trace.session);
        registry
            .counter(if self.trace.accepted {
                "pipeline.accepts"
            } else {
                "pipeline.rejects"
            })
            .inc();
        self.root.event(
            "decision",
            if self.trace.accepted {
                "accept"
            } else {
                "reject"
            },
        );
        (verdict, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::attacks::AttackKind;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;
    use proptest::prelude::*;

    fn replay_session(seed: u64) -> crate::session::SessionData {
        let (_, user) = crate::test_support::shared_tiny_system();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(seed))
    }

    #[test]
    fn standard_order_is_cheapest_first() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        assert_eq!(sys.cascade().components(), Component::all().to_vec());
    }

    #[test]
    fn mask_operations() {
        let all = StageMask::all();
        assert_eq!(all.len(), Component::COUNT);
        for c in Component::all() {
            assert!(all.contains(c));
            let m = all.without(c);
            assert!(!m.contains(c));
            assert_eq!(m.len(), Component::COUNT - 1);
            assert_eq!(m.with(c), all);
            assert_eq!(StageMask::only(c).len(), 1);
        }
        assert!(StageMask::none().is_empty());
    }

    #[test]
    fn masked_stage_is_truly_omitted() {
        let (sys, user) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(300));
        let mask = StageMask::all().without(Component::SpeakerIdentity);
        let (v, trace) = sys
            .cascade()
            .with_mask(mask)
            .run(&s, &sys.config, sys.obs());
        assert!(v.result_of(Component::SpeakerIdentity).is_none());
        assert!(v.skipped_of(Component::SpeakerIdentity).is_none());
        assert!(trace.component("speaker_id").is_none());
        // Omitted means no metrics either: the histogram never existed.
        let snap = sys.metrics().snapshot();
        assert!(!snap.histograms.contains_key("pipeline.speaker_id.seconds"));
    }

    #[test]
    fn short_circuit_skips_after_first_rejection() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = replay_session(310);
        let (v, trace) = sys
            .cascade()
            .with_policy(ExecutionPolicy::ShortCircuit)
            .run(&s, &sys.config, sys.obs());
        assert!(!v.accepted());
        // The loudspeaker detector fires first on a magnet at 5 cm.
        let first = v.results().next().expect("at least one stage ran");
        assert_eq!(first.component, Component::Loudspeaker);
        assert!(first.attack_score >= 1.0);
        let sk = v
            .skipped_of(Component::SpeakerIdentity)
            .expect("ASV must be short-circuited");
        assert_eq!(sk.cause, Component::Loudspeaker);
        // Skip bookkeeping: counter bumped, no latency sample, trace entry.
        assert!(sys.metrics().counter("pipeline.speaker_id.skipped").get() >= 1);
        let snap = sys.metrics().snapshot();
        assert!(!snap.histograms.contains_key("pipeline.speaker_id.seconds"));
        let t = trace.component("speaker_id").expect("skipped trace entry");
        assert!(t.skipped);
        assert_eq!(t.duration_s, 0.0);
    }

    #[test]
    fn full_evaluation_never_skips() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = replay_session(311);
        let (v, _) = sys.cascade().run(&s, &sys.config, sys.obs());
        assert!(!v.accepted());
        assert_eq!(v.skipped().count(), 0);
        assert_eq!(v.results().count(), v.stages.len());
    }

    #[test]
    fn stage_boundary_scales_the_decision() {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let s = replay_session(312);
        let v = sys.verify(&s);
        let raw = v.result_of(Component::Loudspeaker).unwrap().attack_score;
        assert!(raw > 1.0, "replay at 5 cm trips the magnetometer");
        // Widen only the loudspeaker boundary far past the raw score: the
        // normalized score shrinks proportionally.
        let widened = sys
            .config
            .with_stage_boundary(Component::Loudspeaker, raw * 2.0);
        let v2 = sys.verify_with_config(&s, &widened);
        let scaled = v2.result_of(Component::Loudspeaker).unwrap().attack_score;
        assert!(
            (scaled - 0.5).abs() < 1e-9,
            "score {raw} / boundary {} should be 0.5, got {scaled}",
            raw * 2.0
        );
    }

    #[test]
    fn pruning_counters_surface_through_the_registry() {
        let (sys, user) = crate::test_support::shared_tiny_system();
        let sys = sys.with_fresh_obs();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(77));
        // Default top-C (8) equals the tiny system's component count, so
        // nothing is pruned and the counter reads zero.
        sys.verify(&s);
        assert_eq!(
            sys.metrics().counter("asv.score.pruned_components").get(),
            0,
            "C = k must be exact"
        );
        // C=4 of 8 prunes exactly 4 speaker-side evaluations per frame.
        let pruned_cfg = DefenseConfig {
            asv_top_c: 4,
            ..sys.config
        };
        sys.verify_with_config(&s, &pruned_cfg);
        let pruned = sys.metrics().counter("asv.score.pruned_components").get();
        assert!(pruned > 0, "C < k must record pruned evaluations");
        assert_eq!(pruned % 4, 0, "4 skips per scored frame");
        // The allocation counter exists (warm scratch reads 0 growth, a
        // cold thread records its warm-up), and the decision is unchanged.
        let snap = sys.metrics().snapshot();
        assert!(snap.counters.contains_key("dsp.extract.alloc_bytes"));
    }

    proptest! {
        // Each case runs the full cascade (GMM scoring included) twice,
        // so keep the case count low; the fixture is shared.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// End-to-end decision identity of the fast path: at the default
        /// top-C the cascade's verdict is identical between sequential and
        /// stage-major batch execution under both policies; and pruned
        /// acceptance is one-sided — the pruned score lower-bounds the
        /// exact score, so a session accepted with pruning is always
        /// accepted exactly (pruning can never introduce a false accept).
        #[test]
        fn pruned_cascade_decisions_are_identical_and_one_sided(
            seed in 0u64..5000,
            attack in 0u8..2,
        ) {
            let (sys, user) = crate::test_support::shared_tiny_system();
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
            };
            let exact_cfg = DefenseConfig { asv_top_c: 0, ..sys.config };
            let pruned_cfg = DefenseConfig { asv_top_c: 4, ..sys.config };
            for policy in [ExecutionPolicy::FullEvaluation, ExecutionPolicy::ShortCircuit] {
                // Default config (top-C = component count here → exact):
                // batch and sequential agree with the exact-config run.
                let seq = sys.cascade().with_policy(policy).run(&s, &sys.config, sys.obs()).0;
                let batch = sys
                    .cascade()
                    .with_policy(policy)
                    .run_batch(&[&s], &sys.config, sys.obs())
                    .remove(0)
                    .0;
                prop_assert_eq!(seq.decision, batch.decision);
                let exact = sys.cascade().with_policy(policy).run(&s, &exact_cfg, sys.obs()).0;
                prop_assert_eq!(seq.decision, exact.decision, "default C = k must be exact");
                // Aggressive pruning: acceptance implies exact acceptance.
                let pruned = sys.cascade().with_policy(policy).run(&s, &pruned_cfg, sys.obs()).0;
                if pruned.accepted() {
                    prop_assert!(exact.accepted(), "pruning introduced a false accept");
                }
            }
        }

        /// ShortCircuit and FullEvaluation always agree on accept/reject
        /// for the same session: a rejection is final under both policies.
        #[test]
        fn policies_agree_on_decision(seed in 0u64..5000, attack in 0u8..2) {
            let (sys, user) = crate::test_support::shared_tiny_system();
            let s = if attack == 1 {
                replay_session(seed)
            } else {
                ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
            };
            let full = sys
                .cascade()
                .run(&s, &sys.config, sys.obs())
                .0;
            let short = sys
                .cascade()
                .with_policy(ExecutionPolicy::ShortCircuit)
                .run(&s, &sys.config, sys.obs())
                .0;
            prop_assert_eq!(full.decision, short.decision);
            // And the stages that did run scored identically.
            for r in short.results() {
                let f = full.result_of(r.component).expect("full ran every stage");
                prop_assert!((f.attack_score - r.attack_score).abs() < 1e-12);
            }
        }

        /// Under ShortCircuit, no stage after the first rejection has a
        /// recorded duration or histogram sample — only a skip counter.
        #[test]
        fn short_circuit_records_nothing_after_rejection(seed in 0u64..5000) {
            let (sys, _) = crate::test_support::shared_tiny_system();
            let sys = sys.with_fresh_obs();
            let s = replay_session(seed);
            let (v, trace) = sys
                .cascade()
                .with_policy(ExecutionPolicy::ShortCircuit)
                .run(&s, &sys.config, sys.obs());
            prop_assert!(!v.accepted(), "replay at 5 cm must reject");
            let snap = sys.metrics().snapshot();
            let mut rejected_seen = false;
            for outcome in &v.stages {
                let name = outcome.component().name();
                match outcome {
                    StageOutcome::Ran(r) => {
                        prop_assert!(!rejected_seen, "no stage runs after the first rejection");
                        let t = trace.component(name).expect("ran stage is traced");
                        prop_assert!(!t.skipped);
                        prop_assert!(t.duration_s > 0.0);
                        prop_assert!(
                            snap.histograms[&format!("pipeline.{name}.seconds")].count >= 1
                        );
                        if r.attack_score >= 1.0 {
                            rejected_seen = true;
                        }
                    }
                    StageOutcome::Skipped(_) => {
                        prop_assert!(rejected_seen, "skips only after a rejection");
                        let t = trace.component(name).expect("skipped stage is traced");
                        prop_assert!(t.skipped);
                        prop_assert!(t.duration_s == 0.0);
                        prop_assert!(
                            !snap.histograms.contains_key(&format!("pipeline.{name}.seconds")),
                            "skipped stage must not have a latency sample"
                        );
                        prop_assert!(sys.metrics().counter(&format!("pipeline.{name}.skipped")).get() >= 1);
                    }
                }
            }
        }
    }
}

//! Verification verdicts — the Table III decision matrix.

use serde::{Deserialize, Serialize};

/// Which component produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Sound source distance verification (§IV-B1).
    Distance,
    /// Sound field verification (§IV-B2).
    SoundField,
    /// Loudspeaker detection (§IV-B3).
    Loudspeaker,
    /// Speaker identity verification (§IV-C).
    SpeakerIdentity,
}

impl Component {
    /// All components in cascade order.
    pub fn all() -> [Component; 4] {
        [
            Component::Distance,
            Component::SoundField,
            Component::Loudspeaker,
            Component::SpeakerIdentity,
        ]
    }

    /// Stable snake_case identifier, used for metric and span names
    /// (`pipeline.<name>.seconds`) and pipeline-trace components.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Distance => "distance",
            Component::SoundField => "sound_field",
            Component::Loudspeaker => "loudspeaker",
            Component::SpeakerIdentity => "speaker_id",
        }
    }
}

/// One component's normalized result.
///
/// `attack_score` is normalized so 1.0 is the decision boundary: < 1
/// passes, ≥ 1 rejects. This lets a single sweep of the boundary generate
/// FAR/FRR curves per Figs. 12/14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentResult {
    /// The component.
    pub component: Component,
    /// Normalized attack score (1.0 = boundary).
    pub attack_score: f64,
    /// Human-readable detail for logs.
    pub detail: String,
}

impl ComponentResult {
    /// Whether the component passes at boundary multiplier `t`.
    pub fn passes_at(&self, t: f64) -> bool {
        self.attack_score < t
    }
}

/// Final decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Session verified as the genuine user speaking live.
    Accept,
    /// Session rejected.
    Reject,
}

/// The cascade verdict with per-component evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseVerdict {
    /// Per-component results, cascade order.
    pub results: Vec<ComponentResult>,
    /// Decision at the nominal boundary (t = 1).
    pub decision: Decision,
}

impl DefenseVerdict {
    /// Builds a verdict from component results (decision at t = 1).
    pub fn from_results(results: Vec<ComponentResult>) -> Self {
        let decision = if results.iter().all(|r| r.passes_at(1.0)) {
            Decision::Accept
        } else {
            Decision::Reject
        };
        Self { results, decision }
    }

    /// A rejection produced before any component ran (malformed session).
    pub fn rejected_invalid(reason: String) -> Self {
        Self {
            results: vec![ComponentResult {
                component: Component::Distance,
                attack_score: f64::INFINITY,
                detail: format!("session invalid: {reason}"),
            }],
            decision: Decision::Reject,
        }
    }

    /// Whether the session was accepted at the nominal boundary.
    pub fn accepted(&self) -> bool {
        self.decision == Decision::Accept
    }

    /// The worst (largest) attack score — the cascade's combined score.
    pub fn combined_score(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.attack_score)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Decision at boundary multiplier `t` (sweeping `t` traces FAR/FRR).
    pub fn decision_at(&self, t: f64) -> Decision {
        if self.results.iter().all(|r| r.passes_at(t)) {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }

    /// The result of a specific component, if present.
    pub fn result_of(&self, c: Component) -> Option<&ComponentResult> {
        self.results.iter().find(|r| r.component == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(c: Component, s: f64) -> ComponentResult {
        ComponentResult {
            component: c,
            attack_score: s,
            detail: String::new(),
        }
    }

    #[test]
    fn accepts_when_all_pass() {
        let v = DefenseVerdict::from_results(vec![
            result(Component::Distance, 0.5),
            result(Component::Loudspeaker, 0.2),
        ]);
        assert!(v.accepted());
        assert_eq!(v.combined_score(), 0.5);
    }

    #[test]
    fn rejects_when_any_fails() {
        let v = DefenseVerdict::from_results(vec![
            result(Component::Distance, 0.5),
            result(Component::Loudspeaker, 3.0),
        ]);
        assert!(!v.accepted());
        assert_eq!(v.combined_score(), 3.0);
    }

    #[test]
    fn threshold_sweep_flips_decision() {
        let v = DefenseVerdict::from_results(vec![result(Component::SoundField, 1.5)]);
        assert_eq!(v.decision_at(1.0), Decision::Reject);
        assert_eq!(v.decision_at(2.0), Decision::Accept);
    }

    #[test]
    fn boundary_is_rejecting() {
        let v = DefenseVerdict::from_results(vec![result(Component::Distance, 1.0)]);
        assert!(!v.accepted(), "score exactly at the boundary rejects");
    }

    #[test]
    fn invalid_session_rejects() {
        let v = DefenseVerdict::rejected_invalid("empty audio".into());
        assert!(!v.accepted());
        assert_eq!(v.decision_at(1e9), Decision::Reject);
    }

    #[test]
    fn component_names_are_unique_snake_case() {
        let names: Vec<_> = Component::all().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn result_lookup() {
        let v = DefenseVerdict::from_results(vec![result(Component::SpeakerIdentity, 0.3)]);
        assert!(v.result_of(Component::SpeakerIdentity).is_some());
        assert!(v.result_of(Component::Loudspeaker).is_none());
    }
}

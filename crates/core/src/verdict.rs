//! Verification verdicts — the Table III decision matrix.

use serde::{Deserialize, Serialize};

/// Which cascade stage produced a result.
///
/// The variant is the stage's *stable identity*: metric names, span
/// names, trace component strings and wire tags are all derived from
/// [`Component::name`], so there is exactly one source of truth for
/// stage naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Loudspeaker detection (§IV-B3).
    Loudspeaker,
    /// Sound source distance verification (§IV-B1).
    Distance,
    /// Dual-microphone sound-level-difference range check (§VII).
    Sld,
    /// Sound field verification (§IV-B2).
    SoundField,
    /// Speaker identity verification (§IV-C).
    SpeakerIdentity,
}

impl Component {
    /// Number of cascade components.
    pub const COUNT: usize = 5;

    /// All components in cascade order: cheapest first (per the Fig. 15
    /// latency data), so a short-circuiting executor spends the least
    /// possible time on sessions the early stages already condemn. The
    /// expensive ASV back end always comes last.
    pub fn all() -> [Component; Component::COUNT] {
        [
            Component::Loudspeaker,
            Component::Distance,
            Component::Sld,
            Component::SoundField,
            Component::SpeakerIdentity,
        ]
    }

    /// Stable snake_case identifier — the single source of truth for
    /// metric and span names (`pipeline.<name>.seconds`,
    /// `pipeline.<name>.skipped`) and pipeline-trace component strings.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Loudspeaker => "loudspeaker",
            Component::Distance => "distance",
            Component::Sld => "sld",
            Component::SoundField => "sound_field",
            Component::SpeakerIdentity => "speaker_id",
        }
    }

    /// Dense index in cascade order (for per-stage tables and masks).
    pub fn index(&self) -> usize {
        match self {
            Component::Loudspeaker => 0,
            Component::Distance => 1,
            Component::Sld => 2,
            Component::SoundField => 3,
            Component::SpeakerIdentity => 4,
        }
    }
}

/// One component's normalized result.
///
/// `attack_score` is normalized so 1.0 is the decision boundary: < 1
/// passes, ≥ 1 rejects. This lets a single sweep of the boundary generate
/// FAR/FRR curves per Figs. 12/14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentResult {
    /// The component.
    pub component: Component,
    /// Normalized attack score (1.0 = boundary).
    pub attack_score: f64,
    /// Human-readable detail for logs.
    pub detail: String,
}

impl ComponentResult {
    /// Whether the component passes at boundary multiplier `t`.
    pub fn passes_at(&self, t: f64) -> bool {
        self.attack_score < t
    }
}

/// A stage the executor did not run: short-circuited after an earlier
/// stage already rejected the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedStage {
    /// The stage that was skipped.
    pub component: Component,
    /// The stage whose rejection short-circuited the cascade.
    pub cause: Component,
}

/// What happened to one cascade stage during a verification.
///
/// Stages that are masked out (ablation) or inapplicable to the session
/// (e.g. the SLD check on a single-microphone phone) are omitted from
/// the verdict entirely; `Skipped` records only stages the executor
/// *would* have run but cut off under
/// [`ExecutionPolicy::ShortCircuit`](crate::cascade::ExecutionPolicy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageOutcome {
    /// The stage ran and produced a result.
    Ran(ComponentResult),
    /// The stage was skipped by the short-circuiting executor.
    Skipped(SkippedStage),
}

impl StageOutcome {
    /// The stage's identity, whether it ran or not.
    pub fn component(&self) -> Component {
        match self {
            StageOutcome::Ran(r) => r.component,
            StageOutcome::Skipped(s) => s.component,
        }
    }

    /// The result, if the stage ran.
    pub fn result(&self) -> Option<&ComponentResult> {
        match self {
            StageOutcome::Ran(r) => Some(r),
            StageOutcome::Skipped(_) => None,
        }
    }
}

/// Final decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Session verified as the genuine user speaking live.
    Accept,
    /// Session rejected.
    Reject,
}

/// The cascade verdict with per-stage evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseVerdict {
    /// Per-stage outcomes, cascade order. Masked-out and inapplicable
    /// stages are omitted; short-circuited stages appear as
    /// [`StageOutcome::Skipped`].
    pub stages: Vec<StageOutcome>,
    /// Decision at the nominal boundary (t = 1).
    pub decision: Decision,
    /// `Some(reason)` when the session failed validation before any
    /// stage ran. Distinct from per-component evidence so ablation
    /// tables and traces never misattribute malformed sessions to a
    /// detector.
    pub invalid: Option<String>,
    /// The model-registry generation this session was scored against
    /// (`None` for verdicts built outside a registry-backed system).
    /// Stamped by
    /// [`CascadeSession`](crate::pipeline::CascadeSession): every verdict
    /// — including each member of a batch — is attributable to exactly
    /// one generation, even when an enrollment or bundle hot-swap lands
    /// mid-flight.
    pub generation: Option<u64>,
}

impl DefenseVerdict {
    /// Builds a verdict from component results (decision at t = 1).
    pub fn from_results(results: Vec<ComponentResult>) -> Self {
        let decision = if results.iter().all(|r| r.passes_at(1.0)) {
            Decision::Accept
        } else {
            Decision::Reject
        };
        Self {
            stages: results.into_iter().map(StageOutcome::Ran).collect(),
            decision,
            invalid: None,
            generation: None,
        }
    }

    /// Builds a verdict from per-stage outcomes (decision at t = 1 over
    /// the stages that ran).
    pub fn from_stages(stages: Vec<StageOutcome>) -> Self {
        let decision = if stages
            .iter()
            .filter_map(StageOutcome::result)
            .all(|r| r.passes_at(1.0))
        {
            Decision::Accept
        } else {
            Decision::Reject
        };
        Self {
            stages,
            decision,
            invalid: None,
            generation: None,
        }
    }

    /// A rejection produced before any component ran (malformed session).
    pub fn rejected_invalid(reason: String) -> Self {
        Self {
            stages: Vec::new(),
            decision: Decision::Reject,
            invalid: Some(reason),
            generation: None,
        }
    }

    /// Returns the verdict attributed to a registry generation.
    #[must_use]
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = Some(generation);
        self
    }

    /// Whether the session was accepted at the nominal boundary.
    pub fn accepted(&self) -> bool {
        self.decision == Decision::Accept
    }

    /// Results of the stages that ran, cascade order.
    pub fn results(&self) -> impl Iterator<Item = &ComponentResult> {
        self.stages.iter().filter_map(StageOutcome::result)
    }

    /// Stages the executor short-circuited past, cascade order.
    pub fn skipped(&self) -> impl Iterator<Item = &SkippedStage> {
        self.stages.iter().filter_map(|s| match s {
            StageOutcome::Skipped(sk) => Some(sk),
            StageOutcome::Ran(_) => None,
        })
    }

    /// The worst (largest) attack score — the cascade's combined score.
    /// Invalid sessions score `+∞` (rejected at every boundary).
    pub fn combined_score(&self) -> f64 {
        if self.invalid.is_some() {
            return f64::INFINITY;
        }
        self.results()
            .map(|r| r.attack_score)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Decision at boundary multiplier `t` (sweeping `t` traces FAR/FRR).
    ///
    /// Only meaningful for verdicts produced under
    /// [`ExecutionPolicy::FullEvaluation`](crate::cascade::ExecutionPolicy):
    /// a short-circuited verdict has no scores for its skipped stages, so
    /// raising `t` could flip a decision a skipped stage would have held.
    pub fn decision_at(&self, t: f64) -> Decision {
        if self.invalid.is_some() {
            return Decision::Reject;
        }
        if self.results().all(|r| r.passes_at(t)) {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }

    /// The result of a specific component, if that stage ran.
    pub fn result_of(&self, c: Component) -> Option<&ComponentResult> {
        self.results().find(|r| r.component == c)
    }

    /// The skip record of a specific component, if it was short-circuited.
    pub fn skipped_of(&self, c: Component) -> Option<&SkippedStage> {
        self.skipped().find(|s| s.component == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(c: Component, s: f64) -> ComponentResult {
        ComponentResult {
            component: c,
            attack_score: s,
            detail: String::new(),
        }
    }

    #[test]
    fn accepts_when_all_pass() {
        let v = DefenseVerdict::from_results(vec![
            result(Component::Distance, 0.5),
            result(Component::Loudspeaker, 0.2),
        ]);
        assert!(v.accepted());
        assert_eq!(v.combined_score(), 0.5);
        assert!(v.invalid.is_none());
    }

    #[test]
    fn rejects_when_any_fails() {
        let v = DefenseVerdict::from_results(vec![
            result(Component::Distance, 0.5),
            result(Component::Loudspeaker, 3.0),
        ]);
        assert!(!v.accepted());
        assert_eq!(v.combined_score(), 3.0);
    }

    #[test]
    fn threshold_sweep_flips_decision() {
        let v = DefenseVerdict::from_results(vec![result(Component::SoundField, 1.5)]);
        assert_eq!(v.decision_at(1.0), Decision::Reject);
        assert_eq!(v.decision_at(2.0), Decision::Accept);
    }

    #[test]
    fn boundary_is_rejecting() {
        let v = DefenseVerdict::from_results(vec![result(Component::Distance, 1.0)]);
        assert!(!v.accepted(), "score exactly at the boundary rejects");
    }

    #[test]
    fn invalid_session_rejects_without_blaming_a_component() {
        let v = DefenseVerdict::rejected_invalid("empty audio".into());
        assert!(!v.accepted());
        assert_eq!(v.decision_at(1e9), Decision::Reject);
        assert_eq!(v.combined_score(), f64::INFINITY);
        // No component carries the blame — the session never reached one.
        for c in Component::all() {
            assert!(v.result_of(c).is_none());
        }
        assert_eq!(v.invalid.as_deref(), Some("empty audio"));
    }

    #[test]
    fn component_names_are_unique_snake_case() {
        let names: Vec<_> = Component::all().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn component_indices_are_dense_cascade_order() {
        for (i, c) in Component::all().iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn result_lookup() {
        let v = DefenseVerdict::from_results(vec![result(Component::SpeakerIdentity, 0.3)]);
        assert!(v.result_of(Component::SpeakerIdentity).is_some());
        assert!(v.result_of(Component::Loudspeaker).is_none());
    }

    #[test]
    fn skipped_stages_carry_no_score_but_are_discoverable() {
        let v = DefenseVerdict::from_stages(vec![
            StageOutcome::Ran(result(Component::Loudspeaker, 2.0)),
            StageOutcome::Skipped(SkippedStage {
                component: Component::SpeakerIdentity,
                cause: Component::Loudspeaker,
            }),
        ]);
        assert!(!v.accepted());
        assert_eq!(v.combined_score(), 2.0);
        assert!(v.result_of(Component::SpeakerIdentity).is_none());
        let sk = v.skipped_of(Component::SpeakerIdentity).unwrap();
        assert_eq!(sk.cause, Component::Loudspeaker);
        assert_eq!(v.skipped().count(), 1);
    }

    #[test]
    fn empty_stage_list_accepts_vacuously() {
        let v = DefenseVerdict::from_stages(Vec::new());
        assert!(v.accepted(), "no evidence against the session");
        assert!(v.invalid.is_none());
    }
}

//! The assembled defense system (Fig. 4): training, enrollment and the
//! five-stage cascade verification.
//!
//! The cascade itself lives in [`crate::cascade`]: a [`Cascade`] executor
//! over [`CascadeStage`](crate::cascade::CascadeStage) trait objects,
//! built here from the system's trained models via
//! [`DefenseSystem::cascade`]. Every verification is instrumented against
//! `magshield-obs`: one span per stage that runs, a
//! `pipeline.<stage>.seconds` histogram per stage, a
//! `pipeline.<stage>.skipped` counter per short-circuited stage, and a
//! per-session [`PipelineTrace`] carrying each stage's decision, score,
//! threshold margin and duration (see DESIGN.md §7).

use crate::cascade::{Cascade, ExecutionPolicy, StageMask};
use crate::components::sound_field::{feature_vector, SoundFieldModel};
use crate::components::speaker_id::{self, AsvEngine};
use crate::config::DefenseConfig;
use crate::scenario::{ScenarioBuilder, UserContext};
use crate::session::SessionData;
use crate::verdict::DefenseVerdict;
use magshield_asv::frontend::FeatureExtractor;
use magshield_asv::isv::{IsvBackend, SessionSubspace};
use magshield_asv::model::{SpeakerModel, UbmBackend};
use magshield_asv::ubm::{train_ubm, UbmConfig};
use magshield_obs::metrics::Registry;
use magshield_obs::span::TraceCollector;
use magshield_obs::trace::PipelineTrace;
use magshield_physics::acoustics::tube::SoundTube;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use magshield_voice::synth::VOICE_SAMPLE_RATE;
use std::collections::HashMap;

/// Sizing of the bootstrap training run.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Speakers in the UBM training corpus.
    pub ubm_speakers: usize,
    /// UBM mixture components.
    pub ubm_components: usize,
    /// EM iterations.
    pub em_iters: usize,
    /// Use the ISV backend instead of plain GMM–UBM.
    pub use_isv: bool,
    /// Session-subspace rank for ISV.
    pub isv_rank: usize,
    /// Genuine sessions captured for sound-field training.
    pub sound_field_positives: usize,
    /// Enrollment utterances for the user's speaker model.
    pub enrollment_utterances: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            ubm_speakers: 6,
            ubm_components: 32,
            em_iters: 8,
            use_isv: false,
            isv_rank: 2,
            sound_field_positives: 10,
            enrollment_utterances: 3,
        }
    }
}

impl BootstrapConfig {
    /// A minimal configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            ubm_speakers: 3,
            ubm_components: 8,
            em_iters: 4,
            use_isv: false,
            isv_rank: 2,
            sound_field_positives: 6,
            enrollment_utterances: 2,
        }
    }
}

/// Observability handles shared by every verification this system runs.
///
/// Cloning is shallow (`Arc`-backed): clones of a [`DefenseSystem`] —
/// e.g. the copies held by server workers — feed the same registry and
/// span collector, so one snapshot sees the whole fleet.
#[derive(Debug, Clone, Default)]
pub struct PipelineObs {
    /// Named metrics: `pipeline.<stage>.seconds` histograms plus
    /// `pipeline.accepts` / `pipeline.rejects` / `pipeline.invalid`
    /// counters.
    pub registry: Registry,
    /// Finished verification spans (bounded ring, oldest evicted).
    pub tracer: TraceCollector,
}

/// The trained defense system.
#[derive(Debug, Clone)]
pub struct DefenseSystem {
    /// Cascade thresholds.
    pub config: DefenseConfig,
    engine: AsvEngine,
    speakers: HashMap<u32, SpeakerModel>,
    sound_field: SoundFieldModel,
    obs: PipelineObs,
}

impl DefenseSystem {
    /// Trains a complete system for `user`:
    ///
    /// 1. a UBM (and optionally an ISV subspace) on a background corpus;
    /// 2. the user's MAP-adapted speaker model from enrollment utterances;
    /// 3. the sound-field SVM from genuine enrollment sessions (positive)
    ///    and synthetic machine-source sessions (negative) — the negative
    ///    templates ship with the system, no attacker data required.
    pub fn bootstrap(user: &UserContext, cfg: BootstrapConfig, rng: &SimRng) -> Self {
        // --- ASV backend ---
        let extractor = FeatureExtractor::new(VOICE_SAMPLE_RATE);
        let corpus =
            magshield_voice::corpus::voxforge_like(cfg.ubm_speakers, &rng.fork("ubm-corpus"));
        let utts: Vec<&[f64]> = corpus
            .utterances
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let ubm = train_ubm(
            &extractor,
            &utts,
            UbmConfig {
                components: cfg.ubm_components,
                em_iters: cfg.em_iters,
                max_frames: 20_000,
            },
            &rng.fork("ubm-train"),
        );
        let ubm_backend = UbmBackend::new(extractor.clone(), ubm).with_cohort(&utts);
        let engine = if cfg.use_isv {
            let groups: Vec<(u32, u32, magshield_dsp::frame::FrameMatrix)> = corpus
                .utterances
                .iter()
                .map(|u| (u.speaker_id, u.session, extractor.extract(&u.audio)))
                .collect();
            let subspace = SessionSubspace::estimate(&ubm_backend.ubm, &groups, cfg.isv_rank);
            AsvEngine::Isv(IsvBackend::new(ubm_backend, subspace))
        } else {
            AsvEngine::Ubm(ubm_backend)
        };

        // --- enrollment sessions ---
        // The genuine enrollment captures serve double duty, exactly as in
        // the paper ("the voice samples are also used for the sound source
        // verification"): their pilot-filtered, channel-matched audio
        // enrolls the speaker model, and their sound-field features are
        // the SVM positives. Enrolling through the same capture chain as
        // verification keeps the ASV channel matched.
        let config = DefenseConfig::default();
        let n_sessions = cfg.sound_field_positives.max(cfg.enrollment_utterances);
        let mut positives = Vec::new();
        let mut enrollment_audio: Vec<Vec<f64>> = Vec::new();
        for i in 0..n_sessions {
            let d = 0.04 + 0.02 * (i as f64 / n_sessions.max(1) as f64);
            let s = ScenarioBuilder::genuine(user)
                .at_distance(d)
                .capture(&rng.fork_indexed("sf-pos", i as u64));
            if i < cfg.sound_field_positives {
                if let Some(v) = feature_vector(&s, config.sound_field_bins) {
                    positives.push(v);
                }
            }
            if i < cfg.enrollment_utterances {
                enrollment_audio.push(speaker_id::asv_audio(&s));
            }
        }
        let refs: Vec<&[f64]> = enrollment_audio.iter().map(|u| u.as_slice()).collect();
        let model = engine.enroll(user.profile.id, &refs);
        let mut speakers = HashMap::new();
        speakers.insert(user.profile.id, model);
        let mut negatives = Vec::new();
        let catalog = table_iv_catalog();
        let attacker = SpeakerProfile::sample(999, &rng.fork("sf-attacker"));
        let negative_devices = [
            "Apple EarPods",
            "Samsung Galaxy S Headset",
            "Logitech LS21",
            "Pioneer SP-FS52",
        ];
        for (i, key) in negative_devices.iter().enumerate() {
            if let Some(dev) = catalog.iter().find(|d| d.name.contains(key)) {
                for take in 0..2u64 {
                    let s = ScenarioBuilder::machine_attack(
                        user,
                        AttackKind::Replay,
                        dev.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05)
                    .capture(&rng.fork_indexed("sf-neg", (i as u64) << 8 | take));
                    if let Some(v) = feature_vector(&s, config.sound_field_bins) {
                        negatives.push(v);
                    }
                }
            }
        }
        // Large-panel negatives (electrostatic-class aperture), covering
        // both replayed and synthesized audio — the spatial signature must
        // be learned independently of the audio's temporal structure.
        if let Some(esl) = magshield_voice::devices::unconventional_catalog().first() {
            for (k, kind) in [AttackKind::Replay, AttackKind::Synthesis]
                .iter()
                .enumerate()
            {
                for take in 0..2u64 {
                    let s =
                        ScenarioBuilder::machine_attack(user, *kind, esl.clone(), attacker.clone())
                            .at_distance(0.05)
                            .capture(&rng.fork_indexed("sf-neg-esl", (k as u64) << 8 | take));
                    if let Some(v) = feature_vector(&s, config.sound_field_bins) {
                        negatives.push(v);
                    }
                }
            }
        }
        // Tube negative.
        {
            let dev = catalog[0].clone();
            let mut s = ScenarioBuilder::machine_attack(
                user,
                AttackKind::Replay,
                dev.clone(),
                attacker.clone(),
            )
            .at_distance(0.05);
            s.source = crate::scenario::SourceKind::DeviceViaTube {
                device: dev,
                tube: SoundTube::new(0.30, 0.0125),
            };
            if let Some(v) = feature_vector(
                &s.capture(&rng.fork("sf-neg-tube")),
                config.sound_field_bins,
            ) {
                negatives.push(v);
            }
        }
        let sound_field = SoundFieldModel::train(
            &positives,
            &negatives,
            config.sound_field_bins,
            &rng.fork("sf-train"),
        );

        Self {
            config,
            engine,
            speakers,
            sound_field,
            obs: PipelineObs::default(),
        }
    }

    /// Enrolls an additional user from raw utterances.
    pub fn enroll_speaker(&mut self, speaker_id: u32, utterances: &[&[f64]]) {
        let model = self.engine.enroll(speaker_id, utterances);
        self.speakers.insert(speaker_id, model);
    }

    /// Whether a speaker id has an enrolled model.
    pub fn is_enrolled(&self, speaker_id: u32) -> bool {
        self.speakers.contains_key(&speaker_id)
    }

    /// The ASV engine (for experiment harnesses comparing backends).
    pub fn engine(&self) -> &AsvEngine {
        &self.engine
    }

    /// The metrics registry this system records into
    /// (`pipeline.<stage>.seconds` histograms, accept/reject counters).
    pub fn metrics(&self) -> &Registry {
        &self.obs.registry
    }

    /// The span collector receiving one `verify` span (with one child per
    /// cascade component) per verification.
    pub fn tracer(&self) -> &TraceCollector {
        &self.obs.tracer
    }

    /// A clone of this system recording into a brand-new registry and
    /// span collector. The trained models stay shared; only the
    /// observability state is reset — useful for isolating measurement
    /// phases (or tests) that would otherwise pollute each other's
    /// counters through the shallow-shared [`PipelineObs`].
    #[must_use]
    pub fn with_fresh_obs(&self) -> Self {
        Self {
            obs: PipelineObs::default(),
            ..self.clone()
        }
    }

    /// The observability handles every verification records into.
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }

    /// The standard five-stage cascade borrowing this system's trained
    /// models, in cheapest-first order with all stages enabled and
    /// [`ExecutionPolicy::FullEvaluation`]. Customize with
    /// [`Cascade::with_mask`] / [`Cascade::with_policy`] and run via
    /// [`Cascade::run`].
    pub fn cascade(&self) -> Cascade<'_> {
        Cascade::standard(&self.sound_field, &self.engine, &self.speakers)
    }

    /// Runs the full cascade at the nominal thresholds.
    pub fn verify(&self, session: &SessionData) -> DefenseVerdict {
        self.verify_traced(session).0
    }

    /// Runs the cascade under explicit thresholds (adaptive thresholding
    /// and FAR/FRR sweeps use this).
    pub fn verify_with_config(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
    ) -> DefenseVerdict {
        self.verify_traced_with_config(session, config).0
    }

    /// Runs the cascade at the nominal thresholds under the given
    /// execution policy. Servers front-loading cheap liveness checks use
    /// [`ExecutionPolicy::ShortCircuit`] here to spare the ASV back end
    /// sessions the magnetometer already condemned.
    pub fn verify_with_policy(
        &self,
        session: &SessionData,
        policy: ExecutionPolicy,
    ) -> DefenseVerdict {
        self.cascade()
            .with_policy(policy)
            .run(session, &self.config, &self.obs)
            .0
    }

    /// Verifies a batch of sessions stage-major under `policy`: each
    /// cascade stage runs across the whole batch before the next stage
    /// starts, so under [`ExecutionPolicy::ShortCircuit`] the cheap
    /// magnetometer stages prune the expensive ASV workload. Verdicts are
    /// bit-identical to sequential [`DefenseSystem::verify_with_policy`]
    /// calls and preserve input order. For a pooled, admission-controlled
    /// deployment of this, see [`crate::batch::BatchEngine`].
    pub fn verify_batch_with_policy(
        &self,
        sessions: &[&SessionData],
        policy: ExecutionPolicy,
    ) -> Vec<DefenseVerdict> {
        self.cascade()
            .with_policy(policy)
            .run_batch(sessions, &self.config, &self.obs)
            .into_iter()
            .map(|(verdict, _trace)| verdict)
            .collect()
    }

    /// Runs only the stages in `mask` at the nominal thresholds — real
    /// ablation: masked-out stages never execute and are omitted from the
    /// verdict (used by `exp_ablation`).
    pub fn verify_masked(&self, session: &SessionData, mask: StageMask) -> DefenseVerdict {
        self.cascade()
            .with_mask(mask)
            .run(session, &self.config, &self.obs)
            .0
    }

    /// Runs the full cascade at the nominal thresholds, returning the
    /// verdict together with its per-session [`PipelineTrace`].
    pub fn verify_traced(&self, session: &SessionData) -> (DefenseVerdict, PipelineTrace) {
        self.verify_traced_with_config(session, &self.config)
    }

    /// Runs the cascade under explicit thresholds, returning the verdict
    /// together with a [`PipelineTrace`] carrying each stage's decision,
    /// attack score, threshold margin and duration. Also emits one span
    /// per stage and updates the system's metrics registry.
    pub fn verify_traced_with_config(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
    ) -> (DefenseVerdict, PipelineTrace) {
        self.cascade().run(session, config, &self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::Component;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::synth::{FormantSynthesizer, SessionEffects};

    fn system() -> &'static (DefenseSystem, UserContext) {
        crate::test_support::shared_tiny_system()
    }

    #[test]
    fn genuine_session_accepted() {
        let (sys, user) = system();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(100));
        let v = sys.verify(&s);
        assert!(
            v.accepted(),
            "genuine session rejected: {:#?}",
            v.results()
                .map(|r| format!("{:?}: {:.2} ({})", r.component, r.attack_score, r.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_attack_rejected_by_loudspeaker_detector() {
        let (sys, user) = system();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        let s = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(101));
        let v = sys.verify(&s);
        assert!(!v.accepted());
        let ld = v.result_of(Component::Loudspeaker).unwrap();
        assert!(
            ld.attack_score > 1.0,
            "loudspeaker score {}",
            ld.attack_score
        );
    }

    #[test]
    fn unknown_speaker_rejected() {
        let (sys, user) = system();
        let mut s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(102));
        s.claimed_speaker = 4242;
        assert!(!sys.verify(&s).accepted());
    }

    #[test]
    fn malformed_session_rejected() {
        let (sys, user) = system();
        let mut s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(103));
        s.audio.clear();
        let v = sys.verify(&s);
        assert!(!v.accepted());
    }

    #[test]
    fn extra_enrollment_works() {
        let mut sys = system().0.clone();
        let other = SpeakerProfile::sample(5, &SimRng::from_seed(9));
        let synth = FormantSynthesizer::default();
        let utt = synth.render_digits(
            &other,
            "123456",
            SessionEffects::neutral(),
            &SimRng::from_seed(10),
        );
        sys.enroll_speaker(5, &[&utt]);
        assert!(sys.is_enrolled(5));
        assert!(!sys.is_enrolled(77));
    }

    #[test]
    fn traced_verify_reports_every_stage() {
        let (sys, user) = system();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(104));
        let (v, trace) = sys.verify_traced(&s);
        assert_eq!(v.accepted(), trace.accepted);
        let mut expected = vec!["loudspeaker", "distance", "sound_field", "speaker_id"];
        if s.audio2.is_some() {
            expected.push("sld");
        }
        assert_eq!(trace.components.len(), expected.len());
        for name in expected {
            let c = trace
                .component(name)
                .unwrap_or_else(|| panic!("missing component trace for {name}"));
            assert!(c.duration_s > 0.0, "{name} duration must be positive");
            assert!(
                (c.threshold_margin - (1.0 - c.attack_score)).abs() < 1e-12,
                "{name} margin inconsistent"
            );
            assert_eq!(c.passed, c.attack_score < 1.0);
        }
        assert!(trace.total_s >= trace.components_s() * 0.5);
        // Metrics and spans landed too.
        let snap = sys.metrics().snapshot();
        assert!(snap.histograms["pipeline.verify.seconds"].count >= 1);
        assert!(snap.histograms["pipeline.distance.seconds"].count >= 1);
        let spans = sys.tracer().records();
        assert!(spans.iter().any(|r| r.name == "verify"));
        assert!(spans.iter().any(|r| r.name == "speaker_id"));
    }

    #[test]
    fn invalid_session_still_traced() {
        let (sys, user) = system();
        let mut s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(105));
        s.audio.clear();
        let before = sys.metrics().counter("pipeline.invalid").get();
        let (v, trace) = sys.verify_traced(&s);
        assert!(!v.accepted());
        assert!(!trace.accepted);
        assert!(trace.components.is_empty());
        assert!(trace.total_s > 0.0);
        // `>`: the shared fixture's metrics are cumulative and other
        // tests run concurrently.
        assert!(sys.metrics().counter("pipeline.invalid").get() > before);
    }
}

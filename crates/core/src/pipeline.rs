//! The assembled defense system (Fig. 4): serving the five-stage cascade
//! from a versioned model registry.
//!
//! Training lives in [`crate::trainer`]: a
//! [`Trainer`] produces an immutable [`ModelBundle`], and a
//! [`DefenseSystem`] is *constructed from* a bundle
//! ([`DefenseSystem::from_bundle`]). The models are held in a
//! [`ModelRegistry`]:
//! online enrollment ([`DefenseSystem::enroll_speaker`]) and whole-bundle
//! hot-swap ([`DefenseSystem::swap_bundle`]) publish new generations
//! without restarting the server, while in-flight verifications finish on
//! the snapshot they pinned.
//!
//! The cascade itself lives in [`crate::cascade`]: a [`Cascade`] executor
//! over [`CascadeStage`](crate::cascade::CascadeStage) trait objects.
//! [`DefenseSystem::cascade`] pins the current registry generation into a
//! [`CascadeSession`], which builds the executor over that snapshot and
//! stamps every verdict with the generation that produced it. Every
//! verification is instrumented against `magshield-obs`: one span per
//! stage that runs, a `pipeline.<stage>.seconds` histogram per stage, a
//! `pipeline.<stage>.skipped` counter per short-circuited stage, and a
//! per-session [`PipelineTrace`] carrying each stage's decision, score,
//! threshold margin and duration (see DESIGN.md §7).

use crate::artifact::ModelBundle;
use crate::cascade::{Cascade, ExecutionPolicy, StageMask};
use crate::config::{ConfigError, DefenseConfig};
use crate::registry::{ModelRegistry, ModelSnapshot};
use crate::scenario::UserContext;
use crate::session::SessionData;
use crate::store::{DurableStore, RecoveredState, StoreError, StoreMetrics};
use crate::trainer::Trainer;
use crate::verdict::{Component, DefenseVerdict};
use magshield_obs::metrics::{CounterVec, HistogramVec, Registry};
use magshield_obs::span::TraceCollector;
use magshield_obs::trace::PipelineTrace;
use magshield_simkit::rng::SimRng;
use std::path::Path;
use std::sync::Arc;

pub use crate::trainer::BootstrapConfig;

/// Observability handles shared by every verification this system runs.
///
/// Cloning is shallow (`Arc`-backed): clones of a [`DefenseSystem`] —
/// e.g. the copies held by server workers — feed the same registry and
/// span collector, so one snapshot sees the whole fleet.
#[derive(Debug, Clone)]
pub struct PipelineObs {
    /// Named metrics: `pipeline.<stage>.seconds` histograms plus
    /// `pipeline.accepts` / `pipeline.rejects` / `pipeline.invalid`
    /// counters and the `registry.*` serving-state gauges.
    pub registry: Registry,
    /// Finished verification spans (bounded ring, oldest evicted).
    pub tracer: TraceCollector,
    /// Labeled per-stage latency: `pipeline.stage.seconds{stage,policy}`
    /// with the session's trace id as the slow-sample exemplar. The
    /// family handle lives here so its interning cache persists across
    /// verifications — the hot path never re-parses label sets.
    pub stage_seconds: HistogramVec,
    /// Labeled short-circuit skips: `pipeline.stage.skipped{stage,policy}`.
    pub stage_skipped: CounterVec,
    /// Labeled end-to-end latency: `pipeline.session.seconds{policy}`,
    /// exemplared like [`PipelineObs::stage_seconds`].
    pub verify_seconds: HistogramVec,
}

impl Default for PipelineObs {
    fn default() -> Self {
        let registry = Registry::default();
        Self {
            stage_seconds: registry.histogram_vec("pipeline.stage.seconds"),
            stage_skipped: registry.counter_vec("pipeline.stage.skipped"),
            verify_seconds: registry.histogram_vec("pipeline.session.seconds"),
            tracer: TraceCollector::default(),
            registry,
        }
    }
}

/// The serving half of the defense: a model registry plus thresholds.
///
/// Cloning is shallow: clones share the [`ModelRegistry`] (and the
/// observability handles), so an enrollment or bundle swap through any
/// clone is immediately visible to all of them — this is what lets a
/// multi-worker server pick up new tenants without a restart. To get an
/// *isolated* system (e.g. in tests that mutate the registry), export the
/// snapshot with [`DefenseSystem::models`] +
/// [`ModelBundle::from_snapshot`] and rebuild via
/// [`DefenseSystem::from_bundle`].
#[derive(Debug, Clone)]
pub struct DefenseSystem {
    /// Nominal cascade thresholds, copied from the bundle this system was
    /// constructed from. [`DefenseSystem::verify`] uses these; explicit
    /// configs (adaptive thresholding, FAR/FRR sweeps) go through
    /// [`DefenseSystem::verify_with_config`]. A later
    /// [`DefenseSystem::swap_bundle`] updates the registry snapshot's
    /// config for *new* systems built from it, but deliberately does not
    /// reach into existing clones' nominal thresholds.
    pub config: DefenseConfig,
    registry: Arc<ModelRegistry>,
    obs: PipelineObs,
    /// The durable store journaling this system's mutations, when one is
    /// attached ([`DefenseSystem::create_durable`] /
    /// [`DefenseSystem::open_durable`]). Shared by clones, like the
    /// registry, so any worker's enrollment hits the same WAL.
    durable: Option<Arc<DurableStore>>,
}

impl DefenseSystem {
    /// Trains a complete system for `user` and serves it immediately —
    /// [`Trainer::train`] followed by [`DefenseSystem::from_bundle`].
    pub fn bootstrap(user: &UserContext, cfg: BootstrapConfig, rng: &SimRng) -> Self {
        Self::from_bundle(Trainer::new(cfg).train(user, rng))
            .expect("freshly trained bundles are valid")
    }

    /// Constructs a serving system from a validated model bundle.
    ///
    /// This is the only way models enter a [`DefenseSystem`] at build
    /// time: the bundle is checked with
    /// [`ModelBundle::validate`] and becomes generation
    /// [`ModelRegistry::FIRST_GENERATION`] of a fresh registry.
    pub fn from_bundle(bundle: ModelBundle) -> Result<Self, ConfigError> {
        bundle.validate()?;
        let config = bundle.config;
        let system = Self {
            config,
            registry: Arc::new(ModelRegistry::new(bundle.into_snapshot())),
            obs: PipelineObs::default(),
            durable: None,
        };
        system.publish_registry_gauges();
        Ok(system)
    }

    /// Creates a fresh durable store at `dir` from `bundle` and serves it:
    /// [`DefenseSystem::from_bundle`] plus a write-ahead log, so every
    /// subsequent [`DefenseSystem::try_enroll_speaker`] /
    /// [`DefenseSystem::try_swap_bundle`] is journaled and survives a
    /// crash. Refuses a directory that already holds a store (recover it
    /// with [`DefenseSystem::open_durable`] instead).
    pub fn create_durable(bundle: ModelBundle, dir: &Path) -> Result<Self, StoreError> {
        let obs = PipelineObs::default();
        let store = DurableStore::create(dir, &bundle, StoreMetrics::from_registry(&obs.registry))?;
        let config = bundle.config;
        let system = Self {
            config,
            registry: Arc::new(ModelRegistry::new(bundle.into_snapshot())),
            obs,
            durable: Some(Arc::new(store)),
        };
        system.publish_registry_gauges();
        Ok(system)
    }

    /// Recovers a durable store from `dir` and serves the recovered
    /// state: decodes the golden base, replays the write-ahead log (bit
    /// exactly, truncating a torn tail), and starts the registry at the
    /// exact pre-crash generation. Returns the system together with the
    /// [`RecoveredState`] describing what replay did.
    pub fn open_durable(dir: &Path) -> Result<(Self, RecoveredState), StoreError> {
        let obs = PipelineObs::default();
        let (store, recovered) =
            DurableStore::open(dir, StoreMetrics::from_registry(&obs.registry))?;
        let system = Self {
            config: recovered.snapshot.config,
            registry: Arc::new(ModelRegistry::new_at(
                recovered.snapshot.clone(),
                recovered.generation,
            )),
            obs,
            durable: Some(Arc::new(store)),
        };
        system.publish_registry_gauges();
        Ok((system, recovered))
    }

    /// Enrolls an additional speaker from raw utterances and publishes a
    /// new registry generation (returned). Visible to every clone of this
    /// system — server workers see the new tenant on their next pin.
    ///
    /// Exactly [`DefenseSystem::try_enroll_speaker`]: on a durable system
    /// the enrollment is journaled too — there is no unjournaled side
    /// door that would desynchronize the write-ahead log from the served
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics when journaling to an attached durable store fails;
    /// fallible callers (servers) use
    /// [`DefenseSystem::try_enroll_speaker`].
    pub fn enroll_speaker(&self, speaker_id: u32, utterances: &[&[f64]]) -> u64 {
        self.try_enroll_speaker(speaker_id, utterances)
            .expect("journaling the enrollment failed (use try_enroll_speaker to handle this)")
    }

    /// Atomically replaces every served model with `bundle`'s, returning
    /// the new generation. In-flight verifications (including whole
    /// batches) finish on the generation they pinned; no verification
    /// ever mixes models from two generations.
    ///
    /// Exactly [`DefenseSystem::try_swap_bundle`]: on a durable system
    /// the swap is journaled too.
    ///
    /// # Panics
    ///
    /// Panics when journaling to an attached durable store fails;
    /// fallible callers (servers) use [`DefenseSystem::try_swap_bundle`].
    pub fn swap_bundle(&self, bundle: ModelBundle) -> Result<u64, ConfigError> {
        self.try_swap_bundle(bundle).map_err(|e| match e {
            StoreError::Config(e) => e,
            other => panic!(
                "journaling the bundle swap failed (use try_swap_bundle to handle this): {other}"
            ),
        })
    }

    /// [`DefenseSystem::enroll_speaker`] with durability: when a store is
    /// attached, the new model is journaled to the write-ahead log (as a
    /// kilobyte delta record off the UBM the registry serves at journal
    /// time) and fsynced *before* the registry publishes it, so the
    /// returned generation survives a crash. Without a store this just
    /// enrolls into the in-memory registry.
    pub fn try_enroll_speaker(
        &self,
        speaker_id: u32,
        utterances: &[&[f64]],
    ) -> Result<u64, StoreError> {
        let snapshot = self.registry.snapshot();
        let model = snapshot.engine.enroll(speaker_id, utterances);
        let generation = match &self.durable {
            Some(store) => store.journal_enroll(&self.registry, model)?,
            None => self.registry.enroll(model),
        };
        self.publish_registry_gauges();
        Ok(generation)
    }

    /// [`DefenseSystem::swap_bundle`] with durability: the full bundle is
    /// journaled and fsynced before the registry swaps to it. Without an
    /// attached store this validates and swaps in memory only.
    pub fn try_swap_bundle(&self, bundle: ModelBundle) -> Result<u64, StoreError> {
        let generation = match &self.durable {
            Some(store) => store.journal_swap(&self.registry, bundle)?,
            None => {
                bundle.validate()?;
                self.registry.swap(bundle.into_snapshot())
            }
        };
        self.obs.registry.counter("registry.swap").inc();
        // Labeled twin: which generation each swap published.
        self.obs
            .registry
            .counter_with(
                "registry.swaps",
                &magshield_obs::labels::Labels::new().generation(generation),
            )
            .inc();
        self.publish_registry_gauges();
        Ok(generation)
    }

    /// Folds the write-ahead log into a fresh golden base at the current
    /// generation and truncates the log (see [`DurableStore::compact`]).
    /// Returns the compacted generation. Errors with
    /// [`StoreError::Io`](crate::store::StoreError) of kind `Unsupported`
    /// when no store is attached.
    pub fn compact_store(&self) -> Result<u64, StoreError> {
        match &self.durable {
            Some(store) => store.compact(&self.registry),
            None => Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no durable store attached to this system",
            ))),
        }
    }

    /// Whether this system journals mutations to a durable store.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The attached durable store, if any — admin surfaces (the
    /// `store_admin` example) reach the store directory through this.
    pub fn store(&self) -> Option<&DurableStore> {
        self.durable.as_deref()
    }

    /// Whether a speaker id has an enrolled model in the current
    /// generation.
    pub fn is_enrolled(&self, speaker_id: u32) -> bool {
        self.registry.is_enrolled(speaker_id)
    }

    /// The registry generation currently being served.
    pub fn generation(&self) -> u64 {
        self.registry.generation()
    }

    /// Pins and returns the currently served model snapshot (engine,
    /// speakers, sound-field model and the config they shipped with).
    /// Experiment harnesses comparing backends read the engine from here.
    pub fn models(&self) -> Arc<ModelSnapshot> {
        self.registry.snapshot()
    }

    /// The metrics registry this system records into
    /// (`pipeline.<stage>.seconds` histograms, accept/reject counters,
    /// `registry.{generation,speakers,swap}` serving state).
    pub fn metrics(&self) -> &Registry {
        &self.obs.registry
    }

    /// The span collector receiving one `verify` span (with one child per
    /// cascade component) per verification.
    pub fn tracer(&self) -> &TraceCollector {
        &self.obs.tracer
    }

    /// A clone of this system recording into a brand-new registry and
    /// span collector. The trained models stay shared; only the
    /// observability state is reset — useful for isolating measurement
    /// phases (or tests) that would otherwise pollute each other's
    /// counters through the shallow-shared [`PipelineObs`].
    #[must_use]
    pub fn with_fresh_obs(&self) -> Self {
        let fresh = Self {
            obs: PipelineObs::default(),
            ..self.clone()
        };
        fresh.publish_registry_gauges();
        fresh
    }

    /// The observability handles every verification records into.
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }

    /// Mirrors the registry's serving state into the metrics registry.
    fn publish_registry_gauges(&self) {
        self.obs
            .registry
            .gauge("registry.generation")
            .set(self.registry.generation() as i64);
        self.obs
            .registry
            .gauge("registry.speakers")
            .set(self.registry.speaker_count() as i64);
    }

    /// Pins the current registry generation into a [`CascadeSession`]:
    /// the standard five-stage cascade over that snapshot, cheapest-first,
    /// with all stages enabled and [`ExecutionPolicy::FullEvaluation`].
    /// Customize with [`CascadeSession::with_mask`] /
    /// [`CascadeSession::with_policy`] and run via [`CascadeSession::run`].
    ///
    /// Everything run through one session — including a whole batch — is
    /// scored against that single pinned snapshot, even if an enrollment
    /// or bundle swap lands mid-flight.
    pub fn cascade(&self) -> CascadeSession {
        let (generation, snapshot) = self.registry.load();
        CascadeSession {
            snapshot,
            generation,
            mask: StageMask::all(),
            policy: ExecutionPolicy::default(),
        }
    }

    /// Opens a streaming verification pinned to the currently served
    /// registry generation (see [`crate::stream`] for the chunked
    /// protocol and its decision-identity contract). Feed it with
    /// [`StreamingVerification::ingest`](crate::stream::StreamingVerification::ingest)
    /// and close with
    /// [`StreamingVerification::finalize`](crate::stream::StreamingVerification::finalize),
    /// passing this system's config and [`DefenseSystem::obs`].
    pub fn open_stream(
        &self,
        info: &crate::stream::StreamOpenInfo,
        stream: crate::stream::StreamConfig,
    ) -> crate::stream::StreamingVerification {
        let (generation, snapshot) = self.registry.load();
        self.obs.registry.counter("pipeline.stream.opened").inc();
        crate::stream::StreamingVerification::open(snapshot, generation, info, stream)
    }

    /// Runs the full cascade at the nominal thresholds.
    pub fn verify(&self, session: &SessionData) -> DefenseVerdict {
        self.verify_traced(session).0
    }

    /// Runs the cascade under explicit thresholds (adaptive thresholding
    /// and FAR/FRR sweeps use this).
    pub fn verify_with_config(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
    ) -> DefenseVerdict {
        self.verify_traced_with_config(session, config).0
    }

    /// Runs the cascade at the nominal thresholds under the given
    /// execution policy. Servers front-loading cheap liveness checks use
    /// [`ExecutionPolicy::ShortCircuit`] here to spare the ASV back end
    /// sessions the magnetometer already condemned.
    pub fn verify_with_policy(
        &self,
        session: &SessionData,
        policy: ExecutionPolicy,
    ) -> DefenseVerdict {
        self.cascade()
            .with_policy(policy)
            .run(session, &self.config, &self.obs)
            .0
    }

    /// Verifies a batch of sessions stage-major under `policy`: each
    /// cascade stage runs across the whole batch before the next stage
    /// starts, so under [`ExecutionPolicy::ShortCircuit`] the cheap
    /// magnetometer stages prune the expensive ASV workload. Verdicts are
    /// bit-identical to sequential [`DefenseSystem::verify_with_policy`]
    /// calls and preserve input order (the whole batch is scored against
    /// one pinned generation). For a pooled, admission-controlled
    /// deployment of this, see [`crate::batch::BatchEngine`].
    pub fn verify_batch_with_policy(
        &self,
        sessions: &[&SessionData],
        policy: ExecutionPolicy,
    ) -> Vec<DefenseVerdict> {
        self.cascade()
            .with_policy(policy)
            .run_batch(sessions, &self.config, &self.obs)
            .into_iter()
            .map(|(verdict, _trace)| verdict)
            .collect()
    }

    /// Runs only the stages in `mask` at the nominal thresholds — real
    /// ablation: masked-out stages never execute and are omitted from the
    /// verdict (used by `exp_ablation`).
    pub fn verify_masked(&self, session: &SessionData, mask: StageMask) -> DefenseVerdict {
        self.cascade()
            .with_mask(mask)
            .run(session, &self.config, &self.obs)
            .0
    }

    /// Runs the full cascade at the nominal thresholds, returning the
    /// verdict together with its per-session [`PipelineTrace`].
    pub fn verify_traced(&self, session: &SessionData) -> (DefenseVerdict, PipelineTrace) {
        self.verify_traced_with_config(session, &self.config)
    }

    /// Runs the cascade under explicit thresholds, returning the verdict
    /// together with a [`PipelineTrace`] carrying each stage's decision,
    /// attack score, threshold margin and duration. Also emits one span
    /// per stage and updates the system's metrics registry.
    pub fn verify_traced_with_config(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
    ) -> (DefenseVerdict, PipelineTrace) {
        self.cascade().run(session, config, &self.obs)
    }
}

/// A cascade execution pinned to one registry generation.
///
/// Produced by [`DefenseSystem::cascade`]. Owns an
/// `Arc<ModelSnapshot>`, so the models it scores against cannot change
/// under it — a hot-swap mid-batch only affects *later* sessions. Every
/// verdict it produces carries [`DefenseVerdict::generation`] naming the
/// pinned generation.
pub struct CascadeSession {
    snapshot: Arc<ModelSnapshot>,
    generation: u64,
    mask: StageMask,
    policy: ExecutionPolicy,
}

impl CascadeSession {
    /// The registry generation this session is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned model snapshot.
    pub fn snapshot(&self) -> &ModelSnapshot {
        &self.snapshot
    }

    /// Returns the session with the given stage mask.
    #[must_use]
    pub fn with_mask(mut self, mask: StageMask) -> Self {
        self.mask = mask;
        self
    }

    /// Returns the session with the given execution policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active stage mask.
    pub fn mask(&self) -> StageMask {
        self.mask
    }

    /// The active execution policy.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// The components of the configured stages, in execution order.
    pub fn components(&self) -> Vec<Component> {
        self.build().components()
    }

    /// The cascade executor over the pinned snapshot.
    fn build(&self) -> Cascade<'_> {
        Cascade::standard(
            &self.snapshot.sound_field,
            &self.snapshot.engine,
            &self.snapshot.speakers,
        )
        .with_mask(self.mask)
        .with_policy(self.policy)
    }

    /// Runs the cascade on one session (see [`Cascade::run`]); the
    /// verdict is stamped with the pinned generation.
    pub fn run(
        &self,
        session: &SessionData,
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> (DefenseVerdict, PipelineTrace) {
        let (mut verdict, trace) = self.build().run(session, config, obs);
        verdict.generation = Some(self.generation);
        (verdict, trace)
    }

    /// Runs the cascade over a whole batch stage-major (see
    /// [`Cascade::run_batch`]); every verdict is stamped with the single
    /// pinned generation.
    pub fn run_batch(
        &self,
        sessions: &[&SessionData],
        config: &DefenseConfig,
        obs: &PipelineObs,
    ) -> Vec<(DefenseVerdict, PipelineTrace)> {
        let mut out = self.build().run_batch(sessions, config, obs);
        for (verdict, _trace) in &mut out {
            verdict.generation = Some(self.generation);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{BundleMeta, ModelBundle};
    use crate::registry::ModelRegistry;
    use crate::scenario::ScenarioBuilder;
    use magshield_ml::codec::BinaryCodec;
    use magshield_voice::attacks::AttackKind;
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;
    use magshield_voice::synth::{FormantSynthesizer, SessionEffects};

    fn system() -> &'static (DefenseSystem, UserContext) {
        crate::test_support::shared_tiny_system()
    }

    /// An isolated system serving the same models as the shared fixture
    /// (fresh registry, so enroll/swap tests cannot race other tests).
    fn isolated_system() -> DefenseSystem {
        let bundle = ModelBundle::from_snapshot(
            BundleMeta {
                producer: "pipeline-tests".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: String::new(),
            },
            &system().0.models(),
        );
        DefenseSystem::from_bundle(bundle).unwrap()
    }

    #[test]
    fn genuine_session_accepted() {
        let (sys, user) = system();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(100));
        let v = sys.verify(&s);
        assert!(
            v.accepted(),
            "genuine session rejected: {:#?}",
            v.results()
                .map(|r| format!("{:?}: {:.2} ({})", r.component, r.attack_score, r.detail))
                .collect::<Vec<_>>()
        );
        assert!(v.generation.is_some(), "verdicts carry their generation");
    }

    #[test]
    fn replay_attack_rejected_by_loudspeaker_detector() {
        let (sys, user) = system();
        let attacker = SpeakerProfile::sample(7, &SimRng::from_seed(1));
        let dev = table_iv_catalog()[0].clone();
        let s = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker)
            .at_distance(0.05)
            .capture(&SimRng::from_seed(101));
        let v = sys.verify(&s);
        assert!(!v.accepted());
        let ld = v.result_of(Component::Loudspeaker).unwrap();
        assert!(
            ld.attack_score > 1.0,
            "loudspeaker score {}",
            ld.attack_score
        );
    }

    #[test]
    fn unknown_speaker_rejected() {
        let (sys, user) = system();
        let mut s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(102));
        s.claimed_speaker = 4242;
        assert!(!sys.verify(&s).accepted());
    }

    #[test]
    fn malformed_session_rejected() {
        let (sys, user) = system();
        let mut s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(103));
        s.audio.clear();
        let v = sys.verify(&s);
        assert!(!v.accepted());
    }

    #[test]
    fn extra_enrollment_works_and_bumps_the_generation() {
        let sys = isolated_system();
        assert_eq!(sys.generation(), ModelRegistry::FIRST_GENERATION);
        let other = SpeakerProfile::sample(5, &SimRng::from_seed(9));
        let synth = FormantSynthesizer::default();
        let utt = synth.render_digits(
            &other,
            "123456",
            SessionEffects::neutral(),
            &SimRng::from_seed(10),
        );
        let generation = sys.enroll_speaker(5, &[&utt]);
        assert_eq!(generation, ModelRegistry::FIRST_GENERATION + 1);
        assert!(sys.is_enrolled(5));
        assert!(!sys.is_enrolled(77));
        // Clones share the registry: the tenant is visible through them.
        assert!(sys.clone().is_enrolled(5));
        // Serving-state gauges track the registry.
        let snap = sys.metrics().snapshot();
        assert_eq!(snap.gauges["registry.generation"], generation as i64);
        assert_eq!(
            snap.gauges["registry.speakers"],
            sys.models().speakers.len() as i64
        );
    }

    #[test]
    fn bundle_round_trip_preserves_verdicts_bit_for_bit() {
        let (sys, user) = system();
        let bundle = ModelBundle::from_snapshot(
            BundleMeta {
                producer: "round-trip".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: String::new(),
            },
            &sys.models(),
        );
        let reloaded =
            DefenseSystem::from_bundle(ModelBundle::from_bytes(&bundle.to_bytes()).unwrap())
                .unwrap();
        for seed in [100, 101, 102] {
            let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed));
            let a = sys.verify(&s);
            let b = reloaded.verify(&s);
            assert_eq!(a.decision, b.decision, "seed {seed}");
            assert_eq!(a.stages, b.stages, "seed {seed}: stage-for-stage identical");
        }
    }

    #[test]
    fn swap_bundle_changes_the_served_generation() {
        let sys = isolated_system();
        let worker = sys.clone();
        let mut bundle = ModelBundle::from_snapshot(
            BundleMeta {
                producer: "swap-test".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: "second generation".to_string(),
            },
            &sys.models(),
        );
        // An invalid bundle is refused without touching the registry.
        bundle.config.sound_field_bins = 1;
        assert!(sys.swap_bundle(bundle.clone()).is_err());
        assert_eq!(sys.generation(), ModelRegistry::FIRST_GENERATION);
        bundle.config.sound_field_bins = sys.config.sound_field_bins;
        let generation = sys.swap_bundle(bundle).unwrap();
        assert_eq!(generation, ModelRegistry::FIRST_GENERATION + 1);
        // Visible through the worker clone, counted in metrics.
        assert_eq!(worker.generation(), generation);
        assert_eq!(sys.metrics().counter("registry.swap").get(), 1);
    }

    #[test]
    fn cascade_session_pins_a_generation() {
        let sys = isolated_system();
        let (_, user) = system();
        let pinned = sys.cascade();
        let g1 = pinned.generation();
        // A swap lands while the session is outstanding.
        let bundle = ModelBundle::from_snapshot(
            BundleMeta {
                producer: "pin-test".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: String::new(),
            },
            &sys.models(),
        );
        let g2 = sys.swap_bundle(bundle).unwrap();
        assert!(g2 > g1);
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(900));
        let (v, _) = pinned.run(&s, &sys.config, sys.obs());
        assert_eq!(v.generation, Some(g1), "pinned session serves its pin");
        let fresh = sys.verify(&s);
        assert_eq!(fresh.generation, Some(g2), "new sessions see the swap");
        assert_eq!(v.decision, fresh.decision, "same models, same decision");
    }

    #[test]
    fn traced_verify_reports_every_stage() {
        let (sys, user) = system();
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(104));
        let (v, trace) = sys.verify_traced(&s);
        assert_eq!(v.accepted(), trace.accepted);
        let mut expected = vec!["loudspeaker", "distance", "sound_field", "speaker_id"];
        if s.audio2.is_some() {
            expected.push("sld");
        }
        assert_eq!(trace.components.len(), expected.len());
        for name in expected {
            let c = trace
                .component(name)
                .unwrap_or_else(|| panic!("missing component trace for {name}"));
            assert!(c.duration_s > 0.0, "{name} duration must be positive");
            assert!(
                (c.threshold_margin - (1.0 - c.attack_score)).abs() < 1e-12,
                "{name} margin inconsistent"
            );
            assert_eq!(c.passed, c.attack_score < 1.0);
        }
        assert!(trace.total_s >= trace.components_s() * 0.5);
        // Metrics and spans landed too.
        let snap = sys.metrics().snapshot();
        assert!(snap.histograms["pipeline.verify.seconds"].count >= 1);
        assert!(snap.histograms["pipeline.distance.seconds"].count >= 1);
        let spans = sys.tracer().records();
        assert!(spans.iter().any(|r| r.name == "verify"));
        assert!(spans.iter().any(|r| r.name == "speaker_id"));
    }

    #[test]
    fn invalid_session_still_traced() {
        let (sys, user) = system();
        let mut s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(105));
        s.audio.clear();
        let before = sys.metrics().counter("pipeline.invalid").get();
        let (v, trace) = sys.verify_traced(&s);
        assert!(!v.accepted());
        assert!(!trace.accepted);
        assert!(trace.components.is_empty());
        assert!(trace.total_s > 0.0);
        // `>`: the shared fixture's metrics are cumulative and other
        // tests run concurrently.
        assert!(sys.metrics().counter("pipeline.invalid").get() > before);
    }
}

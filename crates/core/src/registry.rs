//! Versioned, multi-tenant model registry — the serving-side model store.
//!
//! [`ModelRegistry`] holds the models a [`DefenseSystem`] serves with:
//! one immutable [`ModelSnapshot`] (ASV engine + enrolled speakers +
//! sound-field classifier + the thresholds they shipped with) tagged with
//! a monotonically increasing **generation** number. Mutations never edit
//! models in place:
//!
//! * [`ModelRegistry::enroll`] publishes a copy-on-write snapshot with
//!   one more speaker (the `Arc`-held models themselves are shared, only
//!   the map is rebuilt);
//! * [`ModelRegistry::swap`] atomically replaces the whole snapshot —
//!   hot-swapping a freshly trained
//!   [`ModelBundle`](crate::artifact::ModelBundle) under live traffic.
//!
//! Readers pin a snapshot once per verification (or per batch) via
//! [`ModelRegistry::load`] and keep scoring against that `Arc` even if a
//! swap lands mid-flight — every verdict is attributable to exactly one
//! generation and no verification ever observes a half-updated model set.
//! In-flight work on the old generation simply finishes on the old `Arc`,
//! which is freed when the last reader drops it.
//!
//! The steady-state read path is lock-free: a per-thread cache keyed by
//! (registry instance, generation) is revalidated with a single atomic
//! load, and the `RwLock` protecting the published snapshot is only
//! touched when the generation actually moved.
//!
//! [`DefenseSystem`]: crate::pipeline::DefenseSystem

use crate::components::sound_field::SoundFieldModel;
use crate::components::speaker_id::AsvEngine;
use crate::config::DefenseConfig;
use magshield_asv::model::SpeakerModel;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An immutable, internally consistent set of serving models.
///
/// Snapshots are only ever published whole: verification code that holds
/// an `Arc<ModelSnapshot>` is guaranteed the engine, the speaker map and
/// the sound-field model were trained (or enrolled) together.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The thresholds this model set was validated against — what the
    /// producing [`ModelBundle`](crate::artifact::ModelBundle) shipped.
    pub config: DefenseConfig,
    /// The ASV backend (UBM or ISV).
    pub engine: AsvEngine,
    /// Enrolled speaker models by speaker id. Models are `Arc`-shared so
    /// copy-on-write enrollment only clones the map, not the GMMs.
    pub speakers: HashMap<u32, Arc<SpeakerModel>>,
    /// The sound-field classifier.
    pub sound_field: SoundFieldModel,
}

/// One published registry state: a snapshot plus the generation it was
/// published at. Immutable after publication.
#[derive(Debug)]
struct Versioned {
    generation: u64,
    snapshot: Arc<ModelSnapshot>,
}

/// Concurrent, versioned `speaker id → model` store with atomic hot-swap.
///
/// See the [module docs](self) for the consistency model. Constructed via
/// [`DefenseSystem::from_bundle`](crate::pipeline::DefenseSystem::from_bundle);
/// shared (`Arc`) by every clone of that system, so an enrollment through
/// one server worker is visible to all of them.
#[derive(Debug)]
pub struct ModelRegistry {
    /// Process-unique instance id keying the per-thread snapshot cache.
    id: u64,
    current: RwLock<Arc<Versioned>>,
    /// Mirror of `current.generation` for lock-free cache revalidation.
    generation: AtomicU64,
}

/// Process-wide source of registry instance ids (cache keys).
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    /// Per-thread `(registry id, generation, snapshot)` cache: the verify
    /// hot path revalidates it with one atomic load instead of taking the
    /// read lock. Holds at most one snapshot `Arc` per thread; it is
    /// replaced the next time the thread reads a registry whose
    /// generation moved.
    static SNAPSHOT_CACHE: RefCell<Option<(u64, u64, Arc<ModelSnapshot>)>> =
        const { RefCell::new(None) };
}

impl ModelRegistry {
    /// First generation number a fresh registry publishes at.
    pub const FIRST_GENERATION: u64 = 1;

    /// A registry serving `snapshot` at [`Self::FIRST_GENERATION`].
    pub fn new(snapshot: ModelSnapshot) -> Self {
        Self::new_at(snapshot, Self::FIRST_GENERATION)
    }

    /// A registry serving `snapshot` at an explicit `generation` — how
    /// crash recovery ([`DurableStore`](crate::store::DurableStore))
    /// resumes publishing exactly where the write-ahead log left off
    /// instead of restarting the counter.
    ///
    /// # Panics
    ///
    /// Panics if `generation` precedes [`Self::FIRST_GENERATION`].
    pub fn new_at(snapshot: ModelSnapshot, generation: u64) -> Self {
        assert!(
            generation >= Self::FIRST_GENERATION,
            "registry generations start at {}, got {generation}",
            Self::FIRST_GENERATION
        );
        Self {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            current: RwLock::new(Arc::new(Versioned {
                generation,
                snapshot: Arc::new(snapshot),
            })),
            generation: AtomicU64::new(generation),
        }
    }

    /// The current generation (bumped by every enroll and swap).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Pins the current `(generation, snapshot)` pair.
    ///
    /// Lock-free in the steady state: when this thread already cached the
    /// current generation of this registry, the call is one atomic load
    /// plus an `Arc` clone. The pair is internally consistent — the
    /// returned snapshot is exactly the one published at the returned
    /// generation.
    pub fn load(&self) -> (u64, Arc<ModelSnapshot>) {
        let current_gen = self.generation.load(Ordering::Acquire);
        let hit = SNAPSHOT_CACHE.with(|cache| {
            cache.borrow().as_ref().and_then(|(id, generation, snap)| {
                (*id == self.id && *generation == current_gen)
                    .then(|| (*generation, Arc::clone(snap)))
            })
        });
        if let Some(pinned) = hit {
            return pinned;
        }
        let v = self.current.read().expect("registry lock poisoned").clone();
        SNAPSHOT_CACHE.with(|cache| {
            *cache.borrow_mut() = Some((self.id, v.generation, Arc::clone(&v.snapshot)));
        });
        (v.generation, Arc::clone(&v.snapshot))
    }

    /// The pinned snapshot alone (see [`Self::load`]).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.load().1
    }

    /// Whether `speaker_id` has an enrolled model in the current
    /// generation.
    pub fn is_enrolled(&self, speaker_id: u32) -> bool {
        self.snapshot().speakers.contains_key(&speaker_id)
    }

    /// Number of speakers enrolled in the current generation.
    pub fn speaker_count(&self) -> usize {
        self.snapshot().speakers.len()
    }

    /// Publishes a copy-on-write snapshot with `model` enrolled (replacing
    /// any previous model for that speaker id) and returns the new
    /// generation. In-flight verifications keep the snapshot they pinned.
    pub fn enroll(&self, model: SpeakerModel) -> u64 {
        let mut guard = self.current.write().expect("registry lock poisoned");
        let mut next = (*guard.snapshot).clone();
        next.speakers.insert(model.speaker_id, Arc::new(model));
        Self::publish(&mut guard, &self.generation, next)
    }

    /// Atomically replaces the entire snapshot — models, speakers and the
    /// bundled thresholds — and returns the new generation. In-flight
    /// verifications finish on the snapshot they pinned; new pins see the
    /// replacement.
    pub fn swap(&self, snapshot: ModelSnapshot) -> u64 {
        let mut guard = self.current.write().expect("registry lock poisoned");
        Self::publish(&mut guard, &self.generation, snapshot)
    }

    /// Publishes `snapshot` at the next generation under the held write
    /// lock, then releases the new generation number to lock-free readers.
    fn publish(guard: &mut Arc<Versioned>, generation: &AtomicU64, snapshot: ModelSnapshot) -> u64 {
        let next_gen = guard.generation + 1;
        *guard = Arc::new(Versioned {
            generation: next_gen,
            snapshot: Arc::new(snapshot),
        });
        generation.store(next_gen, Ordering::Release);
        next_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    /// A cheap snapshot derived from the shared tiny system, with
    /// `distance_tolerance` stamped to `marker` so tests can tell
    /// snapshots apart without retraining anything.
    fn marked_snapshot(marker: f64) -> ModelSnapshot {
        let (sys, _) = crate::test_support::shared_tiny_system();
        let mut snap = (*sys.models()).clone();
        snap.config.distance_tolerance = marker;
        snap
    }

    #[test]
    fn starts_at_first_generation() {
        let reg = ModelRegistry::new(marked_snapshot(1.0));
        assert_eq!(reg.generation(), ModelRegistry::FIRST_GENERATION);
        let (generation, snap) = reg.load();
        assert_eq!(generation, ModelRegistry::FIRST_GENERATION);
        assert_eq!(snap.config.distance_tolerance, 1.0);
    }

    #[test]
    fn enroll_is_copy_on_write_and_bumps_the_generation() {
        let reg = ModelRegistry::new(marked_snapshot(1.0));
        let (g1, before) = reg.load();
        let n = before.speakers.len();
        let donor = before.speakers.values().next().expect("enrolled fixture");
        let mut extra = (**donor).clone();
        extra.speaker_id = 4040;
        let g2 = reg.enroll(extra);
        assert_eq!(g2, g1 + 1);
        assert_eq!(reg.generation(), g2);
        assert!(reg.is_enrolled(4040));
        assert_eq!(reg.speaker_count(), n + 1);
        // The pinned snapshot from before the enrollment is untouched.
        assert!(!before.speakers.contains_key(&4040));
        assert_eq!(before.speakers.len(), n);
        // The surviving models are shared, not cloned.
        let after = reg.snapshot();
        let old_id = donor.speaker_id;
        assert!(Arc::ptr_eq(
            &before.speakers[&old_id],
            &after.speakers[&old_id]
        ));
    }

    #[test]
    fn swap_replaces_the_whole_snapshot() {
        let reg = ModelRegistry::new(marked_snapshot(10.0));
        let pinned = reg.snapshot();
        let g2 = reg.swap(marked_snapshot(20.0));
        assert_eq!(g2, 2);
        assert_eq!(reg.snapshot().config.distance_tolerance, 20.0);
        // The old pin still reads the old state.
        assert_eq!(pinned.config.distance_tolerance, 10.0);
    }

    #[test]
    fn load_is_generation_consistent_under_concurrent_swaps() {
        // The marker encodes the generation that published it: gen g
        // carries marker g as distance_tolerance. Readers must never see
        // a (generation, snapshot) pair that disagrees.
        let reg = Arc::new(ModelRegistry::new(marked_snapshot(1.0)));
        let stop = Arc::new(AtomicBool::new(false));
        let swapper = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                for _ in 0..200 {
                    let next = reg.generation() + 1;
                    let published = reg.swap(marked_snapshot(next as f64));
                    assert_eq!(published, next);
                }
                stop.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last_seen = 0u64;
                    let mut observations = 0u64;
                    while !stop.load(Ordering::Acquire) || observations == 0 {
                        let (generation, snap) = reg.load();
                        assert_eq!(
                            snap.config.distance_tolerance, generation as f64,
                            "snapshot/generation pair torn"
                        );
                        assert!(generation >= last_seen, "generation went backwards");
                        last_seen = generation;
                        observations += 1;
                    }
                    observations
                })
            })
            .collect();
        swapper.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(reg.generation(), 201);
    }

    #[test]
    fn starts_at_an_explicit_generation_for_recovery() {
        let reg = ModelRegistry::new_at(marked_snapshot(5.0), 7);
        assert_eq!(reg.generation(), 7);
        let (generation, snap) = reg.load();
        assert_eq!(generation, 7);
        assert_eq!(snap.config.distance_tolerance, 5.0);
        assert_eq!(
            reg.enroll((**snap.speakers.values().next().unwrap()).clone()),
            8
        );
    }

    #[test]
    #[should_panic(expected = "generations start at")]
    fn rejects_generation_zero() {
        ModelRegistry::new_at(marked_snapshot(1.0), 0);
    }

    #[test]
    fn cache_survives_registry_drop_and_recreate() {
        // ABA hazard: recovery tests drop a registry and open a new one
        // that can land at the same heap address AND the same generation.
        // The per-thread cache is keyed by a process-unique instance id
        // (not the pointer), so the stale entry must never be served.
        let marker_of = |reg: &ModelRegistry| reg.snapshot().config.distance_tolerance;
        let first = ModelRegistry::new_at(marked_snapshot(111.0), 3);
        assert_eq!(marker_of(&first), 111.0); // warm this thread's cache
        drop(first);
        for attempt in 0..8 {
            // Same generation as the dropped registry; the allocator is
            // free to reuse the freed address on any of these attempts.
            let reborn = ModelRegistry::new_at(marked_snapshot(222.0 + attempt as f64), 3);
            assert_eq!(
                marker_of(&reborn),
                222.0 + attempt as f64,
                "stale cached snapshot served for a re-created registry"
            );
        }
    }

    #[test]
    fn per_thread_cache_distinguishes_registries() {
        // Two live registries on one thread: the cache must never serve
        // one registry's snapshot for the other.
        let a = ModelRegistry::new(marked_snapshot(100.0));
        let b = ModelRegistry::new(marked_snapshot(200.0));
        for _ in 0..3 {
            assert_eq!(a.snapshot().config.distance_tolerance, 100.0);
            assert_eq!(b.snapshot().config.distance_tolerance, 200.0);
        }
        a.swap(marked_snapshot(101.0));
        assert_eq!(a.snapshot().config.distance_tolerance, 101.0);
        assert_eq!(b.snapshot().config.distance_tolerance, 200.0);
    }
}

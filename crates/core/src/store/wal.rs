//! On-disk formats of the durable store: golden base, WAL header and
//! WAL records, plus the torn-tail-tolerant scanner and the fsyncing
//! appender.
//!
//! All three artifacts use the workspace codec envelope
//! ([`magshield_ml::codec`]): magic, version, length prefix, FNV-1a/64
//! checksum. Frames are therefore self-delimiting — the scanner walks
//! the log by length prefix alone and a frame that fails to decode
//! marks the torn tail (see [`scan_wal`]).
//!
//! | frame | magic | versions | payload |
//! |---|---|---|---|
//! | [`GoldenBase`] | `MWGB` | 1 | `generation u64`, nested [`ModelBundle`] |
//! | [`WalHeader`] | `MWAL` | 1 | `base_generation u64` |
//! | [`WalRecord`] | `MWLR` | 1–2 | `generation u64`, kind `u8`, nested artifact |
//!
//! Record kinds: `1` = delta enrollment
//! ([`DeltaSpeakerRecord`], v2 only — v1 logs predate delta records),
//! `2` = bundle swap (nested [`ModelBundle`]), `3` = full-model
//! enrollment (nested [`SpeakerModel`], the fallback when a model is
//! not a means-only adaptation of the serving UBM).

use crate::artifact::ModelBundle;
use magshield_asv::delta::DeltaSpeakerRecord;
use magshield_asv::model::SpeakerModel;
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Codec envelope prefix: magic (4) + version (1) + payload length (4).
const FRAME_HEADER_LEN: usize = 9;
/// Trailing FNV-1a/64 checksum.
const FRAME_CHECKSUM_LEN: usize = 8;

/// The compacted serving state a WAL replays on top of: a full
/// [`ModelBundle`] stamped with the generation it was exported at.
#[derive(Debug, Clone)]
pub struct GoldenBase {
    /// Registry generation this bundle is the exact serving state of.
    pub generation: u64,
    /// The serving models.
    pub bundle: ModelBundle,
}

impl BinaryCodec for GoldenBase {
    const MAGIC: u32 = codec::magic(b"MWGB");
    const VERSION: u8 = 1;
    const NAME: &'static str = "GoldenBase";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u64(self.generation);
        w.put_nested(&self.bundle.to_bytes());
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let generation = r.get_u64()?;
        if generation == 0 {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "base generation must be positive".to_string(),
            });
        }
        Ok(Self {
            generation,
            bundle: ModelBundle::from_bytes(r.get_nested()?)?,
        })
    }
}

/// First frame of every WAL file: names the base generation the records
/// that follow apply on top of. Rewritten only by compaction, via an
/// atomic tmp + rename, so a torn header is real corruption — replay
/// refuses it rather than guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Generation of the golden base this log extends.
    pub base_generation: u64,
}

impl BinaryCodec for WalHeader {
    const MAGIC: u32 = codec::magic(b"MWAL");
    const VERSION: u8 = 1;
    const NAME: &'static str = "WalHeader";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u64(self.base_generation);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let base_generation = r.get_u64()?;
        if base_generation == 0 {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "base generation must be positive".to_string(),
            });
        }
        Ok(Self { base_generation })
    }
}

/// What one WAL record did to the registry.
#[derive(Debug, Clone)]
pub enum WalOp {
    /// An enrollment stored as a sparse delta against the serving UBM —
    /// the kilobyte-scale common case.
    EnrollDelta(DeltaSpeakerRecord),
    /// A whole-bundle hot-swap.
    Swap(Box<ModelBundle>),
    /// An enrollment stored as a full model — the fallback when the
    /// model is not a means-only adaptation of the serving UBM.
    EnrollFull(Box<SpeakerModel>),
}

impl WalOp {
    /// Short human-readable kind name (admin tooling).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::EnrollDelta(_) => "enroll-delta",
            Self::Swap(_) => "swap",
            Self::EnrollFull(_) => "enroll-full",
        }
    }
}

/// One journaled registry mutation: the generation it published plus
/// the operation. Appended (and fsynced) *before* the registry
/// publishes the generation.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Generation this record's publication produced.
    pub generation: u64,
    /// The mutation.
    pub op: WalOp,
}

impl BinaryCodec for WalRecord {
    const MAGIC: u32 = codec::magic(b"MWLR");
    /// v2 added delta enrollments (kind 1); v1 logs carry only swaps and
    /// full enrollments.
    const VERSION: u8 = 2;
    const MIN_VERSION: u8 = 1;
    const NAME: &'static str = "WalRecord";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u64(self.generation);
        match &self.op {
            WalOp::EnrollDelta(rec) => {
                w.put_u8(1);
                w.put_nested(&rec.to_bytes());
            }
            WalOp::Swap(bundle) => {
                w.put_u8(2);
                w.put_nested(&bundle.to_bytes());
            }
            WalOp::EnrollFull(model) => {
                w.put_u8(3);
                w.put_nested(&model.to_bytes());
            }
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Self::decode_versioned_payload(Self::VERSION, r)
    }

    fn decode_versioned_payload(version: u8, r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let generation = r.get_u64()?;
        if generation == 0 {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "record generation must be positive".to_string(),
            });
        }
        let kind = r.get_u8()?;
        let op = match kind {
            // Delta enrollments only exist from v2 on; a v1 frame
            // claiming kind 1 is lying about its version.
            1 if version >= 2 => {
                WalOp::EnrollDelta(DeltaSpeakerRecord::from_bytes(r.get_nested()?)?)
            }
            2 => WalOp::Swap(Box::new(ModelBundle::from_bytes(r.get_nested()?)?)),
            3 => WalOp::EnrollFull(Box::new(SpeakerModel::from_bytes(r.get_nested()?)?)),
            found => {
                return Err(CodecError::BadTag {
                    what: "WAL record kind",
                    found,
                })
            }
        };
        Ok(Self { generation, op })
    }
}

/// State of the bytes after the last whole record in a scanned WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly on a record boundary.
    Clean,
    /// The log ends in a torn or corrupt frame: `bytes` bytes starting
    /// at `offset` failed to parse as a record. Recovery truncates them
    /// — they are the in-flight append the crash interrupted.
    Torn {
        /// Byte offset of the first unparseable frame.
        offset: usize,
        /// Bytes from `offset` to end of log.
        bytes: usize,
    },
}

/// One record recovered by [`scan_wal`], with its position in the log.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame.
    pub offset: usize,
    /// Frame length in bytes (envelope included).
    pub frame_len: usize,
    /// The decoded record.
    pub record: WalRecord,
}

/// Result of scanning a WAL byte image: the header, every whole record
/// in append order, and the tail status.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// The log's header frame.
    pub header: WalHeader,
    /// Whole, checksum-valid records in append order.
    pub records: Vec<ScannedRecord>,
    /// Whether the log ends cleanly or in a torn frame.
    pub tail: TailStatus,
}

impl WalScan {
    /// The generation the log replays to: the last record's, or the
    /// header's base generation for an empty log.
    pub fn last_generation(&self) -> u64 {
        self.records
            .last()
            .map_or(self.header.base_generation, |r| r.record.generation)
    }
}

/// Frame length (envelope included) promised by the length prefix at
/// `bytes[offset..]`, or `None` if even the prefix is truncated.
fn framed_len(bytes: &[u8], offset: usize) -> Option<usize> {
    let rest = &bytes[offset..];
    if rest.len() < FRAME_HEADER_LEN {
        return None;
    }
    let payload = u32::from_le_bytes(rest[5..9].try_into().unwrap()) as usize;
    Some(FRAME_HEADER_LEN + payload + FRAME_CHECKSUM_LEN)
}

/// Scans a WAL byte image: decodes the header, then every whole record
/// until the first torn or corrupt frame.
///
/// Pure over the bytes — never touches the filesystem, so admin tooling
/// can inspect a log without mutating it. A bad *header* is a hard
/// [`CodecError`] (headers are written atomically; see [`WalHeader`]);
/// a bad record marks the torn tail and scanning stops — append-only
/// logs cannot have valid data after an unsynced tail, and replaying
/// past corruption would serve models of unknown provenance.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, CodecError> {
    let header_len = framed_len(bytes, 0).ok_or(CodecError::Truncated {
        needed: FRAME_HEADER_LEN,
        available: bytes.len(),
    })?;
    if bytes.len() < header_len {
        return Err(CodecError::Truncated {
            needed: header_len,
            available: bytes.len(),
        });
    }
    let header = WalHeader::from_bytes(&bytes[..header_len])?;
    let mut records = Vec::new();
    let mut offset = header_len;
    let mut tail = TailStatus::Clean;
    while offset < bytes.len() {
        let whole = framed_len(bytes, offset)
            .filter(|&len| offset + len <= bytes.len())
            .and_then(|len| {
                WalRecord::from_bytes(&bytes[offset..offset + len])
                    .ok()
                    .map(|record| (len, record))
            });
        match whole {
            Some((frame_len, record)) => {
                records.push(ScannedRecord {
                    offset,
                    frame_len,
                    record,
                });
                offset += frame_len;
            }
            None => {
                tail = TailStatus::Torn {
                    offset,
                    bytes: bytes.len() - offset,
                };
                break;
            }
        }
    }
    Ok(WalScan {
        header,
        records,
        tail,
    })
}

/// Append handle on a WAL file: writes one fsynced frame per record.
///
/// Durability contract: [`WalAppender::append`] returns only after the
/// record's bytes have been flushed **and** `sync_data`'d, so a crash
/// at any later point cannot lose the record — only an append cut down
/// mid-call can tear, and the torn frame fails its checksum on replay.
#[derive(Debug)]
pub struct WalAppender {
    file: File,
    path: PathBuf,
}

impl WalAppender {
    /// Creates a fresh WAL at `path` containing only `header` (fsynced),
    /// failing if the file already exists.
    pub fn create(path: &Path, header: WalHeader) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
        file.write_all(&header.to_bytes())?;
        file.sync_data()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing WAL for appending at its current end. The
    /// caller is responsible for having truncated any torn tail first
    /// (see [`scan_wal`]).
    pub fn open_end(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record frame and fsyncs it; returns the frame size in
    /// bytes.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<usize> {
        let frame = record.to_bytes();
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(frame.len())
    }

    /// Path of the log being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::BundleMeta;
    use magshield_ml::codec::assert_hostile_input_fails;

    fn fixture_bundle() -> ModelBundle {
        let (sys, _) = crate::test_support::shared_tiny_system();
        ModelBundle::from_snapshot(
            BundleMeta {
                producer: "wal-tests".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: String::new(),
            },
            &sys.models(),
        )
    }

    fn delta_record(generation: u64) -> WalRecord {
        let bundle = fixture_bundle();
        let model = bundle.speakers[0].clone();
        let delta =
            magshield_asv::delta::DeltaSpeakerRecord::encode(bundle.engine.ubm(), &model).unwrap();
        WalRecord {
            generation,
            op: WalOp::EnrollDelta(delta),
        }
    }

    #[test]
    fn header_and_records_round_trip() {
        let header = WalHeader { base_generation: 3 };
        assert_eq!(WalHeader::from_bytes(&header.to_bytes()).unwrap(), header);

        let rec = delta_record(4);
        let back = WalRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back.generation, 4);
        assert!(matches!(back.op, WalOp::EnrollDelta(_)));
        assert_eq!(back.to_bytes(), rec.to_bytes());
    }

    #[test]
    fn scan_walks_a_multi_record_log() {
        let header = WalHeader { base_generation: 1 };
        let mut log = header.to_bytes();
        let full = WalRecord {
            generation: 2,
            op: WalOp::EnrollFull(Box::new(fixture_bundle().speakers[0].clone())),
        };
        let swap = WalRecord {
            generation: 3,
            op: WalOp::Swap(Box::new(fixture_bundle())),
        };
        for r in [&full, &swap, &delta_record(4)] {
            log.extend_from_slice(&r.to_bytes());
        }
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.header, header);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.last_generation(), 4);
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.record.op.kind())
                .collect::<Vec<_>>(),
            ["enroll-full", "swap", "enroll-delta"]
        );
        // Offsets + lengths tile the log exactly.
        let mut expect = scan.records[0].offset;
        for r in &scan.records {
            assert_eq!(r.offset, expect);
            expect += r.frame_len;
        }
        assert_eq!(expect, log.len());
    }

    #[test]
    fn scan_stops_at_a_torn_tail() {
        let mut log = WalHeader { base_generation: 1 }.to_bytes();
        log.extend_from_slice(&delta_record(2).to_bytes());
        let torn_start = log.len();
        log.extend_from_slice(&delta_record(3).to_bytes()[..17]); // torn append
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(
            scan.tail,
            TailStatus::Torn {
                offset: torn_start,
                bytes: log.len() - torn_start
            }
        );
        assert_eq!(scan.last_generation(), 2);
    }

    #[test]
    fn scan_refuses_a_corrupt_header() {
        let mut log = WalHeader { base_generation: 1 }.to_bytes();
        log[6] ^= 0x40; // corrupt the header's length prefix
        assert!(scan_wal(&log).is_err());
        assert!(scan_wal(&[]).is_err());
        assert!(scan_wal(&log[..4]).is_err());
    }

    #[test]
    fn v1_frames_decode_but_not_with_delta_kind() {
        // Rewrite a record frame as version 1, recomputing the checksum:
        // swap/full kinds must decode, the delta kind must be refused.
        let downgrade = |rec: &WalRecord| {
            let mut frame = rec.to_bytes();
            frame[4] = 1;
            let body_end = frame.len() - 8;
            let checksum = magshield_ml::codec::fnv1a_64(&frame[..body_end]);
            frame[body_end..].copy_from_slice(&checksum.to_le_bytes());
            frame
        };
        let swap = WalRecord {
            generation: 2,
            op: WalOp::Swap(Box::new(fixture_bundle())),
        };
        let back = WalRecord::from_bytes(&downgrade(&swap)).unwrap();
        assert!(matches!(back.op, WalOp::Swap(_)));

        match WalRecord::from_bytes(&downgrade(&delta_record(2))) {
            Err(CodecError::BadTag { what, found: 1 }) => {
                assert_eq!(what, "WAL record kind");
            }
            other => panic!("v1 delta record must be a bad tag, got {other:?}"),
        }
    }

    #[test]
    fn golden_base_round_trips() {
        let base = GoldenBase {
            generation: 5,
            bundle: fixture_bundle(),
        };
        let back = GoldenBase::from_bytes(&base.to_bytes()).unwrap();
        assert_eq!(back.generation, 5);
        assert_eq!(back.to_bytes(), base.to_bytes());
    }

    #[test]
    fn hostile_input_yields_typed_errors() {
        assert_hostile_input_fails::<WalHeader>(&WalHeader { base_generation: 9 }.to_bytes());
        assert_hostile_input_fails::<WalRecord>(&delta_record(2).to_bytes());
    }

    pub(crate) use super::test_support::tempdir;

    #[test]
    fn appender_journal_survives_reopen() {
        let dir = tempdir("wal-appender");
        let path = dir.join(crate::store::WAL_FILE);
        let mut ap = WalAppender::create(&path, WalHeader { base_generation: 1 }).unwrap();
        ap.append(&delta_record(2)).unwrap();
        ap.append(&delta_record(3)).unwrap();
        drop(ap);
        let mut ap = WalAppender::open_end(&path).unwrap();
        ap.append(&delta_record(4)).unwrap();
        let scan = scan_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.last_generation(), 4);
        assert_eq!(scan.tail, TailStatus::Clean);
        assert!(WalAppender::create(&path, WalHeader { base_generation: 1 }).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared scratch-directory helper for store tests.
    use std::path::PathBuf;

    /// A fresh per-test scratch directory under the system temp dir.
    pub(crate) fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "magshield-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}

//! The durable model store: crash-safe persistence for serving state.
//!
//! The [`ModelRegistry`](crate::registry::ModelRegistry) is purely
//! in-memory — a restart loses every online enrollment since the last
//! manual bundle export. This module layers durability under it:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ DefenseSystem::{try_enroll_speaker, try_swap_bundle}         │  API
//! ├──────────────────────────────────────────────────────────────┤
//! │ DurableStore   journal-before-publish, replay, compaction    │  durable
//! ├──────────────────────────┬───────────────────────────────────┤
//! │ base.bin (GoldenBase)    │ wal.log (WalHeader + WalRecord*)  │  files
//! └──────────────────────────┴───────────────────────────────────┘
//! ```
//!
//! * **`base.bin`** — a golden [`ModelBundle`] frame tagged with the
//!   generation it represents ([`wal::GoldenBase`], magic `MWGB`).
//! * **`wal.log`** — a [`wal::WalHeader`] frame (magic `MWAL`) followed
//!   by append-only [`wal::WalRecord`] frames (magic `MWLR`), one per
//!   enrollment or bundle swap, each carrying the generation it
//!   published. Enrollments ship as kilobyte
//!   [`DeltaSpeakerRecord`](magshield_asv::delta::DeltaSpeakerRecord)s
//!   when the model is a means-only MAP adaptation of the serving UBM
//!   (always true for models produced by the engine itself), falling
//!   back to full `SpeakerModel` frames otherwise.
//!
//! **Invariants** (proved by the kill-point suite in
//! `tests/durable_store.rs`):
//!
//! 1. *Journal before publish.* A mutation is appended and fsynced to
//!    the WAL before the registry publishes it, under one lock, so WAL
//!    order equals publication order and no served generation can be
//!    lost by a crash. Delta enrollments resolve their UBM prior *under
//!    that lock* (a model adapted from an older engine falls back to a
//!    full record), and a registry that moved without a WAL record is
//!    refused with [`StoreError::GenerationSkew`] rather than journaled
//!    over.
//! 2. *Torn tails are data loss of at most the in-flight record.* Every
//!    frame is length-prefixed and FNV-1a/64 checksummed; replay stops
//!    at the first bad frame and truncates it away. Anything before it
//!    was fsynced and replays exactly.
//! 3. *Replay is bit-exact.* [`DefenseSystem::open_durable`] recovers
//!    the exact pre-crash generation, and the recovered models serve
//!    verdicts bit-identical to the pre-crash system.
//! 4. *Compaction is crash-ordered.* [`DurableStore::compact`] renames
//!    the new golden base into place **before** rewriting the WAL, with
//!    a directory fsync after each rename so the ordering survives
//!    power loss, and replay skips records at or below the base
//!    generation — a crash between the two renames recovers to the
//!    same state.
//!
//! [`DefenseSystem::open_durable`]: crate::pipeline::DefenseSystem::open_durable
//! [`ModelBundle`]: crate::artifact::ModelBundle

pub mod admin;
pub mod durable;
pub mod wal;

pub use admin::{inspect, StoreInspection};
pub use durable::{DurableStore, RecoveredState, StoreMetrics};
pub use wal::{GoldenBase, TailStatus, WalHeader, WalOp, WalRecord, WalScan};

use crate::config::ConfigError;
use magshield_ml::codec::CodecError;
use magshield_ml::delta::DeltaError;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Name of the golden-base file inside a store directory.
pub const BASE_FILE: &str = "base.bin";
/// Name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Typed failure opening, replaying or mutating a durable store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (open, append, fsync, rename, truncate).
    Io(io::Error),
    /// A frame decoded to a typed codec error that tail-truncation
    /// cannot excuse: the golden base, or a nested artifact inside an
    /// otherwise checksum-valid record.
    Codec(CodecError),
    /// A replayed bundle or snapshot failed semantic validation.
    Config(ConfigError),
    /// A delta record refused to reconstruct (wrong UBM fingerprint or
    /// shape) — the WAL and base disagree about the engine.
    Delta(DeltaError),
    /// The WAL header frame is missing or corrupt. Headers are written
    /// atomically (tmp + rename), so this is real corruption, not a
    /// torn append — refuse to guess rather than replay garbage.
    CorruptHeader {
        /// Path of the offending WAL.
        path: PathBuf,
        /// Why the header frame failed to decode.
        source: CodecError,
    },
    /// Replayable records are not contiguous from the base generation —
    /// a record was lost from the *middle* of the log, which append-only
    /// truncation can never produce.
    GenerationGap {
        /// The generation replay expected next.
        expected: u64,
        /// The generation actually found.
        found: u64,
    },
    /// The WAL header claims a newer base than the golden-base file —
    /// impossible under the compaction ordering (base renamed first),
    /// so one of the files was swapped from a different store.
    HeaderAheadOfBase {
        /// Generation of the golden base on disk.
        base: u64,
        /// Base generation the WAL header claims.
        header: u64,
    },
    /// The registry's generation diverged from the write-ahead log's —
    /// a mutation reached the registry without being journaled. The
    /// store refuses further journaling rather than writing records
    /// that replay would reject as a [`StoreError::GenerationGap`].
    GenerationSkew {
        /// Last generation the write-ahead log accounts for.
        wal: u64,
        /// Generation the registry actually published.
        registry: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O failure: {e}"),
            Self::Codec(e) => write!(f, "store artifact failure: {e}"),
            Self::Config(e) => write!(f, "store replayed an invalid model set: {e}"),
            Self::Delta(e) => write!(f, "store delta record failure: {e}"),
            Self::CorruptHeader { path, source } => {
                write!(f, "corrupt WAL header in {}: {source}", path.display())
            }
            Self::GenerationGap { expected, found } => write!(
                f,
                "WAL generation gap: expected generation {expected}, found {found}"
            ),
            Self::HeaderAheadOfBase { base, header } => write!(
                f,
                "WAL header claims base generation {header} but the golden base is at {base}"
            ),
            Self::GenerationSkew { wal, registry } => write!(
                f,
                "registry generation {registry} diverged from the write-ahead log's {wal}: \
                 a mutation bypassed the journal"
            ),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Codec(e) => Some(e),
            Self::Config(e) => Some(e),
            Self::Delta(e) => Some(e),
            Self::CorruptHeader { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

impl From<ConfigError> for StoreError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<DeltaError> for StoreError {
    fn from(e: DeltaError) -> Self {
        Self::Delta(e)
    }
}

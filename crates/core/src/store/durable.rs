//! [`DurableStore`]: journal-before-publish persistence around the
//! model registry, with crash-recovery replay and log compaction.
//!
//! See the [module docs](crate::store) for the file layout and the four
//! durability invariants. This type owns the filesystem side; the
//! [`DefenseSystem`](crate::pipeline::DefenseSystem) wires it to its
//! registry via `open_durable` / `create_durable` /
//! `try_enroll_speaker` / `try_swap_bundle` / `compact_store`.

use super::wal::{scan_wal, GoldenBase, TailStatus, WalAppender, WalHeader, WalOp, WalRecord};
use super::{StoreError, BASE_FILE, WAL_FILE};
use crate::artifact::{BundleMeta, ModelBundle};
use crate::registry::{ModelRegistry, ModelSnapshot};
use magshield_asv::delta::DeltaSpeakerRecord;
use magshield_asv::model::SpeakerModel;
use magshield_ml::codec::BinaryCodec;
use magshield_obs::metrics::{Counter, Histogram, Registry};
use parking_lot::Mutex;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Observability handles for the store (cheap clones, shared sinks).
///
/// All four live in the system's metrics [`Registry`] under the
/// `store.wal.*` names documented in DESIGN.md §16.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// `store.wal.append.seconds` — append + fsync latency per record.
    pub append_seconds: Histogram,
    /// `store.wal.replay.seconds` — full open-and-replay latency.
    pub replay_seconds: Histogram,
    /// `store.wal.compact.seconds` — compaction latency.
    pub compact_seconds: Histogram,
    /// `store.wal.records` — records appended or replayed through this
    /// store handle.
    pub records: Counter,
}

impl StoreMetrics {
    /// Handles bound into `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        Self {
            append_seconds: registry.histogram("store.wal.append.seconds"),
            replay_seconds: registry.histogram("store.wal.replay.seconds"),
            compact_seconds: registry.histogram("store.wal.compact.seconds"),
            records: registry.counter("store.wal.records"),
        }
    }

    /// Handles recording into a throwaway registry (admin tooling that
    /// has no metrics plane).
    pub fn detached() -> Self {
        Self::from_registry(&Registry::default())
    }
}

/// What [`DurableStore::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// The exact pre-crash registry generation.
    pub generation: u64,
    /// The serving models at that generation.
    pub snapshot: ModelSnapshot,
    /// Bundle provenance carried forward for future compactions.
    pub meta: BundleMeta,
    /// WAL records replayed on top of the golden base.
    pub records_replayed: usize,
    /// Bytes of torn tail truncated away (0 for a clean shutdown).
    pub torn_bytes_truncated: usize,
}

/// State every mutation serializes through: the append handle, the
/// provenance the next compaction will stamp its golden base with, and
/// the last generation the log accounts for.
#[derive(Debug)]
struct StoreState {
    appender: WalAppender,
    meta: BundleMeta,
    /// Generation the WAL replays to: base generation at creation,
    /// recovered generation at open, bumped by every journaled record.
    /// Journaling refuses ([`StoreError::GenerationSkew`]) when the
    /// registry's generation disagrees — that means a mutation reached
    /// the registry without going through the journal, and any further
    /// record would replay as a [`StoreError::GenerationGap`].
    last_generation: u64,
}

/// The durability layer under a served model registry.
///
/// One mutex serializes every journaled mutation; it is held across
/// *append-then-publish*, so WAL order always equals publication order
/// and the journaled generation is exactly the one the registry
/// publishes. Reads (verification traffic) never touch the store.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    state: Mutex<StoreState>,
    metrics: StoreMetrics,
}

impl DurableStore {
    /// Initializes a store directory from a validated bundle: writes the
    /// golden base at `generation` [`ModelRegistry::FIRST_GENERATION`]
    /// and an empty WAL on top of it. Fails if either file already
    /// exists — a store is created once and thereafter only
    /// [`DurableStore::open`]ed.
    pub fn create(
        dir: &Path,
        bundle: &ModelBundle,
        metrics: StoreMetrics,
    ) -> Result<Self, StoreError> {
        bundle.validate()?;
        fs::create_dir_all(dir)?;
        let base_path = dir.join(BASE_FILE);
        if base_path.exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a store", dir.display()),
            )));
        }
        let base = GoldenBase {
            generation: ModelRegistry::FIRST_GENERATION,
            bundle: bundle.clone(),
        };
        write_atomically(&base_path, &base.to_bytes())?;
        let appender = WalAppender::create(
            &dir.join(WAL_FILE),
            WalHeader {
                base_generation: base.generation,
            },
        )?;
        // The WAL's directory entry must survive power loss too.
        fsync_dir(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(StoreState {
                appender,
                meta: bundle.meta.clone(),
                last_generation: base.generation,
            }),
            metrics,
        })
    }

    /// Opens an existing store: decodes the golden base, scans the WAL,
    /// truncates any torn tail in place, and replays every surviving
    /// record to reconstruct the exact pre-crash serving state.
    ///
    /// Records at or below the base generation are skipped (they were
    /// folded into the base by a compaction whose WAL rewrite a crash
    /// interrupted); the remaining records must be contiguous from the
    /// base generation — a gap means mid-log data loss, which
    /// append-only truncation cannot produce, so replay refuses it.
    pub fn open(dir: &Path, metrics: StoreMetrics) -> Result<(Self, RecoveredState), StoreError> {
        let t = Instant::now();
        let base = GoldenBase::from_bytes(&fs::read(dir.join(BASE_FILE))?)?;
        base.bundle.validate()?;

        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = fs::read(&wal_path)?;
        let scan = scan_wal(&wal_bytes).map_err(|source| StoreError::CorruptHeader {
            path: wal_path.clone(),
            source,
        })?;
        if scan.header.base_generation > base.generation {
            return Err(StoreError::HeaderAheadOfBase {
                base: base.generation,
                header: scan.header.base_generation,
            });
        }
        let torn_bytes_truncated = match scan.tail {
            TailStatus::Clean => 0,
            TailStatus::Torn { offset, bytes } => {
                let wal_file = fs::OpenOptions::new().write(true).open(&wal_path)?;
                wal_file.set_len(offset as u64)?;
                wal_file.sync_all()?;
                bytes
            }
        };

        let mut meta = base.bundle.meta.clone();
        let base_generation = base.generation;
        let mut snapshot = base.bundle.into_snapshot();
        let mut generation = base_generation;
        let mut records_replayed = 0usize;
        for scanned in &scan.records {
            let record = &scanned.record;
            if record.generation <= generation && records_replayed == 0 {
                // Folded into the base by a compaction that crashed
                // before rewriting the WAL header.
                continue;
            }
            if record.generation != generation + 1 {
                return Err(StoreError::GenerationGap {
                    expected: generation + 1,
                    found: record.generation,
                });
            }
            apply(&mut snapshot, &mut meta, &record.op)?;
            generation = record.generation;
            records_replayed += 1;
        }

        let store = Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(StoreState {
                appender: WalAppender::open_end(&wal_path)?,
                meta: meta.clone(),
                last_generation: generation,
            }),
            metrics,
        };
        store.metrics.records.add(records_replayed as u64);
        store.metrics.replay_seconds.record(t.elapsed());
        Ok((
            store,
            RecoveredState {
                generation,
                snapshot,
                meta,
                records_replayed,
                torn_bytes_truncated,
            },
        ))
    }

    /// Journals an enrollment, then publishes it to `registry` —
    /// returning the new generation.
    ///
    /// The model ships as a sparse delta against the UBM `registry`
    /// serves *at journal time, under the store lock* — which is exactly
    /// the UBM replay will have reconstructed when it reaches this
    /// record, because every UBM-changing swap is journaled through the
    /// same lock. A model adapted from an older engine (its enrollment
    /// raced a swap) refuses to delta-encode and ships as a full,
    /// UBM-independent record instead.
    pub fn journal_enroll(
        &self,
        registry: &ModelRegistry,
        model: SpeakerModel,
    ) -> Result<u64, StoreError> {
        let mut state = self.state.lock();
        let generation = Self::next_generation(&state, registry)?;
        let serving = registry.snapshot();
        let op = match DeltaSpeakerRecord::encode(serving.engine.ubm(), &model) {
            Ok(delta) => WalOp::EnrollDelta(delta),
            Err(_) => WalOp::EnrollFull(Box::new(model.clone())),
        };
        drop(serving);
        self.append(&mut state, WalRecord { generation, op })?;
        state.last_generation = generation;
        let published = registry.enroll(model);
        if published != generation {
            return Err(StoreError::GenerationSkew {
                wal: generation,
                registry: published,
            });
        }
        Ok(published)
    }

    /// Journals a whole-bundle swap, then publishes it to `registry` —
    /// returning the new generation.
    pub fn journal_swap(
        &self,
        registry: &ModelRegistry,
        bundle: ModelBundle,
    ) -> Result<u64, StoreError> {
        bundle.validate()?;
        let mut state = self.state.lock();
        let generation = Self::next_generation(&state, registry)?;
        self.append(
            &mut state,
            WalRecord {
                generation,
                op: WalOp::Swap(Box::new(bundle.clone())),
            },
        )?;
        state.last_generation = generation;
        state.meta = bundle.meta.clone();
        let published = registry.swap(bundle.into_snapshot());
        if published != generation {
            return Err(StoreError::GenerationSkew {
                wal: generation,
                registry: published,
            });
        }
        Ok(published)
    }

    /// The generation the next record will journal, verifying (in release
    /// builds too) that the registry has not moved without a WAL record —
    /// journaling on top of an unjournaled mutation would write a record
    /// replay rejects as a [`StoreError::GenerationGap`].
    fn next_generation(state: &StoreState, registry: &ModelRegistry) -> Result<u64, StoreError> {
        let published = registry.generation();
        if published != state.last_generation {
            return Err(StoreError::GenerationSkew {
                wal: state.last_generation,
                registry: published,
            });
        }
        Ok(state.last_generation + 1)
    }

    /// Folds the registry's current state into a fresh golden base and
    /// truncates the WAL to just a header — bounding replay cost.
    /// Returns the generation the base was exported at.
    ///
    /// Crash-ordering: the new base is renamed into place **and made
    /// durable** (file + directory fsync) *before* the WAL is rewritten.
    /// A crash between the two leaves old records alongside a newer
    /// base; replay skips records at or below the base generation, so
    /// recovery lands on the same state either way. The directory fsync
    /// is what makes the ordering real: without it a power loss could
    /// persist the WAL rename but not the base rename, a state replay
    /// refuses as [`StoreError::HeaderAheadOfBase`].
    pub fn compact(&self, registry: &ModelRegistry) -> Result<u64, StoreError> {
        let t = Instant::now();
        let mut state = self.state.lock();
        let (generation, snapshot) = registry.load();
        if generation != state.last_generation {
            return Err(StoreError::GenerationSkew {
                wal: state.last_generation,
                registry: generation,
            });
        }
        let bundle = ModelBundle::from_snapshot(state.meta.clone(), &snapshot);
        let base = GoldenBase { generation, bundle };
        write_atomically(&self.dir.join(BASE_FILE), &base.to_bytes())?;
        let wal_path = self.dir.join(WAL_FILE);
        let header = WalHeader {
            base_generation: generation,
        };
        write_atomically(&wal_path, &header.to_bytes())?;
        state.appender = WalAppender::open_end(&wal_path)?;
        self.metrics.compact_seconds.record(t.elapsed());
        Ok(generation)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The provenance the next compaction will stamp its base with.
    pub fn meta(&self) -> BundleMeta {
        self.state.lock().meta.clone()
    }

    fn append(&self, state: &mut StoreState, record: WalRecord) -> Result<(), StoreError> {
        let t = Instant::now();
        state.appender.append(&record)?;
        self.metrics.append_seconds.record(t.elapsed());
        self.metrics.records.inc();
        Ok(())
    }
}

/// Applies one WAL operation to a snapshot under replay, mirroring what
/// the registry did when the record was journaled.
fn apply(
    snapshot: &mut ModelSnapshot,
    meta: &mut BundleMeta,
    op: &WalOp,
) -> Result<(), StoreError> {
    match op {
        WalOp::EnrollDelta(record) => {
            let model = record.reconstruct(snapshot.engine.ubm())?;
            snapshot.speakers.insert(model.speaker_id, Arc::new(model));
        }
        WalOp::EnrollFull(model) => {
            snapshot
                .speakers
                .insert(model.speaker_id, Arc::new(model.as_ref().clone()));
        }
        WalOp::Swap(bundle) => {
            bundle.validate()?;
            *meta = bundle.meta.clone();
            *snapshot = bundle.as_ref().clone().into_snapshot();
        }
    }
    Ok(())
}

/// Writes `bytes` to `path` via a same-directory temp file + rename +
/// directory fsync, so the file is either the old content or the new
/// content (never a torn mix) **and** the rename itself survives power
/// loss before the caller's next step — compaction's base-before-WAL
/// ordering depends on this barrier.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        use std::io::Write;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    fsync_dir(path.parent().unwrap_or_else(|| Path::new(".")))
}

/// Fsyncs a directory, making its entry mutations (renames, newly
/// created files) durable — data fsyncs alone do not cover them.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir; // Windows has no directory fsync; renames are best-effort.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::BundleMeta;
    use crate::store::wal::test_support::tempdir;

    fn fixture_bundle(notes: &str) -> ModelBundle {
        let (sys, _) = crate::test_support::shared_tiny_system();
        ModelBundle::from_snapshot(
            BundleMeta {
                producer: "durable-tests".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: notes.to_string(),
            },
            &sys.models(),
        )
    }

    fn enrollable_model(bundle: &ModelBundle, speaker_id: u32) -> SpeakerModel {
        let mut model = bundle.speakers[0].clone();
        model.speaker_id = speaker_id;
        model
    }

    #[test]
    fn journal_replay_round_trip_restores_generation_and_speakers() {
        let dir = tempdir("durable-roundtrip");
        let bundle = fixture_bundle("v0");
        let store = DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        let registry = ModelRegistry::new(bundle.clone().into_snapshot());
        let g2 = store
            .journal_enroll(&registry, enrollable_model(&bundle, 7001))
            .unwrap();
        let g3 = store.journal_swap(&registry, fixture_bundle("v1")).unwrap();
        let g4 = store
            .journal_enroll(&registry, enrollable_model(&bundle, 7002))
            .unwrap();
        assert_eq!((g2, g3, g4), (2, 3, 4));

        let (_, recovered) = DurableStore::open(&dir, StoreMetrics::detached()).unwrap();
        assert_eq!(recovered.generation, 4);
        assert_eq!(recovered.records_replayed, 3);
        assert_eq!(recovered.torn_bytes_truncated, 0);
        assert_eq!(recovered.meta.notes, "v1");
        // The swap dropped speaker 7001; 7002 was enrolled after it.
        assert!(!recovered.snapshot.speakers.contains_key(&7001));
        assert!(recovered.snapshot.speakers.contains_key(&7002));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = tempdir("durable-torn");
        let bundle = fixture_bundle("v0");
        let store = DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        let registry = ModelRegistry::new(bundle.clone().into_snapshot());
        store
            .journal_enroll(&registry, enrollable_model(&bundle, 7001))
            .unwrap();
        drop(store);
        // Simulate a crash mid-append: garbage after the last record.
        let wal = dir.join(WAL_FILE);
        let clean_len = std::fs::metadata(&wal).unwrap().len();
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0xAB; 13]);
        std::fs::write(&wal, &bytes).unwrap();

        let (_, recovered) = DurableStore::open(&dir, StoreMetrics::detached()).unwrap();
        assert_eq!(recovered.generation, 2);
        assert_eq!(recovered.torn_bytes_truncated, 13);
        assert!(recovered.snapshot.speakers.contains_key(&7001));
        assert_eq!(std::fs::metadata(&wal).unwrap().len(), clean_len);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_the_log_and_preserves_state() {
        let dir = tempdir("durable-compact");
        let bundle = fixture_bundle("v0");
        let store = DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        let registry = ModelRegistry::new(bundle.clone().into_snapshot());
        for id in [7001, 7002, 7003] {
            store
                .journal_enroll(&registry, enrollable_model(&bundle, id))
                .unwrap();
        }
        let wal_before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(store.compact(&registry).unwrap(), 4);
        let wal_after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(wal_after < wal_before, "{wal_after} !< {wal_before}");

        // Appends continue on the compacted log and replay correctly.
        store
            .journal_enroll(&registry, enrollable_model(&bundle, 7004))
            .unwrap();
        let (_, recovered) = DurableStore::open(&dir, StoreMetrics::detached()).unwrap();
        assert_eq!(recovered.generation, 5);
        assert_eq!(recovered.records_replayed, 1);
        for id in [7001, 7002, 7003, 7004] {
            assert!(recovered.snapshot.speakers.contains_key(&id), "{id}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_compaction_renames_recovers_identically() {
        // Reproduce the window where the base rename landed but the WAL
        // rewrite did not: old records sit below a newer base.
        let dir = tempdir("durable-compact-crash");
        let bundle = fixture_bundle("v0");
        let store = DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        let registry = ModelRegistry::new(bundle.clone().into_snapshot());
        for id in [7001, 7002] {
            store
                .journal_enroll(&registry, enrollable_model(&bundle, id))
                .unwrap();
        }
        let old_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        store.compact(&registry).unwrap();
        drop(store);
        // "Crash": restore the pre-compaction WAL next to the new base.
        std::fs::write(dir.join(WAL_FILE), &old_wal).unwrap();

        let (_, recovered) = DurableStore::open(&dir, StoreMetrics::detached()).unwrap();
        assert_eq!(recovered.generation, 3);
        assert_eq!(recovered.records_replayed, 0, "records below base skipped");
        for id in [7001, 7002] {
            assert!(recovered.snapshot.speakers.contains_key(&id), "{id}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_gap_is_refused() {
        let dir = tempdir("durable-gap");
        let bundle = fixture_bundle("v0");
        let store = DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        let registry = ModelRegistry::new(bundle.clone().into_snapshot());
        for id in [7001, 7002, 7003] {
            store
                .journal_enroll(&registry, enrollable_model(&bundle, id))
                .unwrap();
        }
        drop(store);
        // Surgically delete the *middle* record (generation 3).
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        let scan = scan_wal(&bytes).unwrap();
        let mid = &scan.records[1];
        let mut cut = bytes[..mid.offset].to_vec();
        cut.extend_from_slice(&bytes[mid.offset + mid.frame_len..]);
        std::fs::write(&wal_path, &cut).unwrap();

        match DurableStore::open(&dir, StoreMetrics::detached()) {
            Err(StoreError::GenerationGap { expected, found }) => {
                assert_eq!((expected, found), (3, 4));
            }
            other => panic!("expected GenerationGap, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unjournaled_registry_mutation_is_refused_as_skew() {
        // A mutation that bypasses the journal desynchronizes the
        // registry from the WAL; the next journaled call must refuse
        // (in release builds too) instead of appending a record that
        // replay would reject as a generation gap.
        let dir = tempdir("durable-skew");
        let bundle = fixture_bundle("v0");
        let store = DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        let registry = ModelRegistry::new(bundle.clone().into_snapshot());
        registry.enroll(enrollable_model(&bundle, 7001));

        match store.journal_enroll(&registry, enrollable_model(&bundle, 7002)) {
            Err(StoreError::GenerationSkew { wal, registry }) => {
                assert_eq!((wal, registry), (1, 2));
            }
            other => panic!("expected GenerationSkew, got {other:?}"),
        }
        match store.journal_swap(&registry, fixture_bundle("v1")) {
            Err(StoreError::GenerationSkew { .. }) => {}
            other => panic!("expected GenerationSkew, got {other:?}"),
        }
        match store.compact(&registry) {
            Err(StoreError::GenerationSkew { .. }) => {}
            other => panic!("expected GenerationSkew, got {other:?}"),
        }
        // Nothing was appended: the store still replays to the base.
        let (_, recovered) = DurableStore::open(&dir, StoreMetrics::detached()).unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.records_replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = tempdir("durable-exists");
        let bundle = fixture_bundle("v0");
        DurableStore::create(&dir, &bundle, StoreMetrics::detached()).unwrap();
        assert!(matches!(
            DurableStore::create(&dir, &bundle, StoreMetrics::detached()),
            Err(StoreError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

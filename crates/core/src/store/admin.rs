//! Read-only store inspection and the deterministic demo store — the
//! library half of the `store_admin` example bin, kept here so a smoke
//! test can exercise the exact logic the CLI ships.

use super::wal::{scan_wal, GoldenBase, TailStatus};
use super::{StoreError, BASE_FILE, WAL_FILE};
use crate::pipeline::DefenseSystem;
use magshield_ml::codec::BinaryCodec;
use std::fmt;
use std::fs;
use std::path::Path;

/// Everything [`inspect`] reports about a store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInspection {
    /// Generation of the golden base.
    pub base_generation: u64,
    /// Base generation the WAL header claims (differs from
    /// `base_generation` only in the compaction crash window).
    pub header_base_generation: u64,
    /// Whole, checksum-valid records in the log.
    pub wal_records: usize,
    /// Per-kind record counts: `(enroll-delta, swap, enroll-full)`.
    pub record_kinds: (usize, usize, usize),
    /// The generation the log replays to.
    pub last_generation: u64,
    /// Torn/corrupt bytes at the log's tail (0 = clean shutdown).
    pub torn_tail_bytes: usize,
    /// Size of the golden base file in bytes.
    pub base_bytes: u64,
    /// Size of the WAL file in bytes.
    pub wal_bytes: u64,
    /// Speakers enrolled in the golden base (before replay).
    pub base_speakers: usize,
}

impl fmt::Display for StoreInspection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "golden base: generation {} ({} speakers, {} bytes)",
            self.base_generation, self.base_speakers, self.base_bytes
        )?;
        writeln!(
            f,
            "wal: {} records to generation {} ({} bytes, header base {})",
            self.wal_records, self.last_generation, self.wal_bytes, self.header_base_generation
        )?;
        let (delta, swap, full) = self.record_kinds;
        writeln!(
            f,
            "records: {delta} enroll-delta, {swap} swap, {full} enroll-full"
        )?;
        match self.torn_tail_bytes {
            0 => writeln!(f, "tail: clean (all checksums valid)"),
            n => writeln!(
                f,
                "tail: TORN — {n} unparseable bytes (truncated on next open)"
            ),
        }
    }
}

/// Inspects a store directory without mutating it: decodes the golden
/// base, scans the WAL (checksums validated per record) and reports
/// counts, generations and tail state. Unlike
/// [`DefenseSystem::open_durable`], a torn tail is *reported*, not
/// truncated.
pub fn inspect(dir: &Path) -> Result<StoreInspection, StoreError> {
    let base_path = dir.join(BASE_FILE);
    let wal_path = dir.join(WAL_FILE);
    let base_bytes_raw = fs::read(&base_path)?;
    let base = GoldenBase::from_bytes(&base_bytes_raw)?;
    let wal_bytes_raw = fs::read(&wal_path)?;
    let scan = scan_wal(&wal_bytes_raw).map_err(|source| StoreError::CorruptHeader {
        path: wal_path,
        source,
    })?;
    let mut record_kinds = (0usize, 0usize, 0usize);
    for r in &scan.records {
        match r.record.op.kind() {
            "enroll-delta" => record_kinds.0 += 1,
            "swap" => record_kinds.1 += 1,
            _ => record_kinds.2 += 1,
        }
    }
    Ok(StoreInspection {
        base_generation: base.generation,
        header_base_generation: scan.header.base_generation,
        wal_records: scan.records.len(),
        record_kinds,
        last_generation: scan.last_generation(),
        torn_tail_bytes: match scan.tail {
            TailStatus::Clean => 0,
            TailStatus::Torn { bytes, .. } => bytes,
        },
        base_bytes: base_bytes_raw.len() as u64,
        wal_bytes: wal_bytes_raw.len() as u64,
        base_speakers: base.bundle.speakers.len(),
    })
}

/// Speaker ids the demo store enrolls on top of its base bundle.
pub const DEMO_SPEAKERS: [u32; 3] = [9001, 9002, 9003];

/// Seed the demo enrollments are rendered from.
pub const DEMO_SEED: u64 = 424_242;

/// Builds a deterministic demo store at `dir`: creates a fresh store
/// from `bundle`, then enrolls the three [`DEMO_SPEAKERS`] with
/// synthesized utterances derived from [`DEMO_SEED`]. Byte-identical
/// output for identical input bundles — this is how the committed
/// `results/golden_wal_v1.bin` fixture was produced (from
/// `results/golden_bundle_v2.bin`), and how CI re-derives it.
pub fn build_demo_store(
    dir: &Path,
    bundle: crate::artifact::ModelBundle,
) -> Result<DefenseSystem, StoreError> {
    use magshield_simkit::rng::SimRng;
    use magshield_voice::profile::SpeakerProfile;
    use magshield_voice::synth::{FormantSynthesizer, SessionEffects};

    let system = DefenseSystem::create_durable(bundle, dir)?;
    let rng = SimRng::from_seed(DEMO_SEED);
    let synth = FormantSynthesizer::default();
    for (i, &speaker_id) in DEMO_SPEAKERS.iter().enumerate() {
        let profile =
            SpeakerProfile::sample(speaker_id, &rng.fork_indexed("demo-speaker", i as u64));
        let utterance = synth.render_digits(
            &profile,
            "31415926",
            SessionEffects::neutral(),
            &rng.fork_indexed("demo-utterance", i as u64),
        );
        system.try_enroll_speaker(speaker_id, &[&utterance])?;
    }
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{BundleMeta, ModelBundle};
    use crate::registry::ModelRegistry;
    use crate::store::wal::test_support::tempdir;

    fn fixture_bundle() -> ModelBundle {
        let (sys, _) = crate::test_support::shared_tiny_system();
        ModelBundle::from_snapshot(
            BundleMeta {
                producer: "admin-tests".to_string(),
                ubm_speakers: 3,
                ubm_components: 8,
                em_iters: 4,
                use_isv: false,
                notes: String::new(),
            },
            &sys.models(),
        )
    }

    #[test]
    fn demo_store_is_deterministic_and_inspectable() {
        // The smoke test for the `store_admin` example: build the demo
        // store twice and require byte-identical artifacts, then check
        // the inspection numbers the CLI prints.
        let dir_a = tempdir("admin-demo-a");
        let dir_b = tempdir("admin-demo-b");
        let sys = build_demo_store(&dir_a, fixture_bundle()).unwrap();
        build_demo_store(&dir_b, fixture_bundle()).unwrap();
        assert_eq!(
            std::fs::read(dir_a.join(WAL_FILE)).unwrap(),
            std::fs::read(dir_b.join(WAL_FILE)).unwrap(),
            "demo WAL must be deterministic"
        );
        assert_eq!(
            std::fs::read(dir_a.join(BASE_FILE)).unwrap(),
            std::fs::read(dir_b.join(BASE_FILE)).unwrap(),
            "demo base must be deterministic"
        );

        let report = inspect(&dir_a).unwrap();
        assert_eq!(report.base_generation, ModelRegistry::FIRST_GENERATION);
        assert_eq!(report.wal_records, DEMO_SPEAKERS.len());
        assert_eq!(report.record_kinds, (DEMO_SPEAKERS.len(), 0, 0));
        assert_eq!(
            report.last_generation,
            ModelRegistry::FIRST_GENERATION + DEMO_SPEAKERS.len() as u64
        );
        assert_eq!(report.torn_tail_bytes, 0);
        assert!(
            report.wal_bytes < report.base_bytes / 4,
            "delta WAL stays small"
        );
        for id in DEMO_SPEAKERS {
            assert!(sys.is_enrolled(id));
        }
        // The Display form carries the headline numbers.
        let text = report.to_string();
        assert!(text.contains("3 enroll-delta"));
        assert!(text.contains("tail: clean"));

        // Inspection is read-only even on a torn log.
        let wal = dir_a.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0x7F; 21]);
        std::fs::write(&wal, &bytes).unwrap();
        let torn = inspect(&dir_a).unwrap();
        assert_eq!(torn.torn_tail_bytes, 21);
        assert_eq!(std::fs::read(&wal).unwrap().len(), bytes.len());
        assert!(torn.to_string().contains("TORN"));

        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn compaction_through_the_system_resets_the_log() {
        let dir = tempdir("admin-compact");
        let sys = build_demo_store(&dir, fixture_bundle()).unwrap();
        let before = inspect(&dir).unwrap();
        assert_eq!(before.wal_records, 3);
        let generation = sys.compact_store().unwrap();
        assert_eq!(generation, 4);
        let after = inspect(&dir).unwrap();
        assert_eq!(after.wal_records, 0);
        assert_eq!(after.base_generation, 4);
        assert_eq!(after.header_base_generation, 4);
        assert_eq!(after.base_speakers, before.base_speakers + 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Property-based tests for the DSP kernels.

use magshield_dsp::filter::{moving_average, pre_emphasis, Biquad, OnePole};
use magshield_dsp::goertzel::{goertzel, tone_amplitude};
use magshield_dsp::level::{amplitude_to_dbfs, rms};
use magshield_dsp::mel::MfccExtractor;
use magshield_dsp::vad::{detect, VadConfig};
use magshield_dsp::window::WindowKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Goertzel matches the corresponding FFT bin for on-grid frequencies.
    #[test]
    fn goertzel_matches_fft_bin(bin in 1usize..31, phase in 0.0f64..std::f64::consts::TAU) {
        let n = 64;
        let fs = 6400.0;
        let f = bin as f64 * fs / n as f64;
        let sig: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs + phase).cos())
            .collect();
        let g = goertzel(&sig, f, fs);
        let spec = magshield_dsp::fft::rfft(&sig);
        prop_assert!((g.re - spec[bin].re).abs() < 1e-6);
        prop_assert!((g.im - spec[bin].im).abs() < 1e-6);
    }

    /// A unit tone reads amplitude ≈ 1 for any on-grid frequency.
    #[test]
    fn tone_amplitude_calibration(bin in 2usize..30) {
        let n = 256;
        let fs = 25_600.0;
        let f = bin as f64 * fs / n as f64;
        let sig: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
            .collect();
        let a = tone_amplitude(&sig, f, fs);
        prop_assert!((a - 1.0).abs() < 1e-6, "amp {a}");
    }

    /// Biquad filters are BIBO stable on bounded input.
    #[test]
    fn biquad_stability(
        cutoff in 100.0f64..7000.0,
        q in 0.2f64..5.0,
        input in prop::collection::vec(-1.0f64..1.0, 64..256),
    ) {
        let mut f = Biquad::lowpass(16_000.0, cutoff, q);
        for &x in &input {
            let y = f.process(x);
            prop_assert!(y.is_finite());
            prop_assert!(y.abs() < 100.0, "unstable output {y}");
        }
    }

    /// A one-pole smoother's output stays within the input's range.
    #[test]
    fn one_pole_bounded(
        tau in 0.001f64..1.0,
        input in prop::collection::vec(-5.0f64..5.0, 2..128),
    ) {
        let mut s = OnePole::with_time_constant(100.0, tau);
        let lo = input.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = input.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &x in &input {
            let y = s.process(x);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    /// Moving average preserves the mean of a constant signal and stays
    /// within input bounds.
    #[test]
    fn moving_average_bounds(
        window in 1usize..9,
        input in prop::collection::vec(-10.0f64..10.0, 1..64),
    ) {
        let out = moving_average(&input, window);
        prop_assert_eq!(out.len(), input.len());
        let lo = input.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = input.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &y in &out {
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    /// Pre-emphasis is invertible (it is a FIR with known coefficient).
    #[test]
    fn pre_emphasis_invertible(
        alpha in 0.5f64..0.99,
        input in prop::collection::vec(-1.0f64..1.0, 1..64),
    ) {
        let out = pre_emphasis(&input, alpha);
        // Reconstruct: x[n] = y[n] + α x[n−1].
        let mut rec = Vec::with_capacity(out.len());
        let mut prev = 0.0;
        for &y in &out {
            let x = y + alpha * prev;
            rec.push(x);
            prev = x;
        }
        for (a, b) in rec.iter().zip(&input) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// All analysis windows are bounded in [0, 1].
    #[test]
    fn windows_bounded(n in 1usize..200) {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            for c in kind.generate(n) {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c), "{kind:?}: {c}");
            }
        }
    }

    /// MFCC output is always finite with the expected shape.
    #[test]
    fn mfcc_finite(freq in 80.0f64..4000.0, amp in 0.01f64..1.0) {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..4000)
            .map(|i| amp * (std::f64::consts::TAU * freq * i as f64 / fs).sin())
            .collect();
        let frames = MfccExtractor::new(fs).extract(&sig);
        prop_assert!(!frames.is_empty());
        prop_assert_eq!(frames.cols(), 13);
        for v in frames.as_slice() {
            prop_assert!(v.is_finite());
        }
    }

    /// VAD activity is within [0, 1] and silence is always inactive.
    #[test]
    fn vad_sane(amp in 0.1f64..1.0) {
        let fs = 8000.0;
        let mut sig = vec![0.0; 4000];
        sig.extend((0..4000).map(|i| amp * (std::f64::consts::TAU * 300.0 * i as f64 / fs).sin()));
        let v = detect(&sig, fs, VadConfig::default());
        let r = v.activity_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(r > 0.2 && r < 0.8, "half-speech signal: {r}");
    }

    /// dBFS conversion is monotone.
    #[test]
    fn dbfs_monotone(a in 1e-6f64..10.0, b in 1e-6f64..10.0) {
        if a < b {
            prop_assert!(amplitude_to_dbfs(a) <= amplitude_to_dbfs(b));
        }
    }

    /// RMS of a scaled signal scales linearly.
    #[test]
    fn rms_homogeneous(
        k in 0.1f64..10.0,
        input in prop::collection::vec(-1.0f64..1.0, 1..64),
    ) {
        let scaled: Vec<f64> = input.iter().map(|x| k * x).collect();
        prop_assert!((rms(&scaled) - k * rms(&input)).abs() < 1e-9);
    }
}

//! Mel filterbank and MFCC extraction.
//!
//! The ASV stack (Spear stand-in, §IV-C of the paper) verifies speakers on
//! spectral features; MFCCs are the standard front end for GMM–UBM systems.
//! This implementation follows the conventional pipeline: pre-emphasis →
//! Hamming-windowed frames → power spectrum → triangular mel filterbank →
//! log → DCT-II, with optional delta features.

use crate::fft::rfft;
use crate::filter::pre_emphasis;
use crate::window::WindowKind;

/// Converts frequency in Hz to mel (O'Shaughnessy formula).
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel back to Hz.
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// Triangular mel filterbank over FFT bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// filters[m][k] = weight of FFT bin k in mel band m.
    filters: Vec<Vec<f64>>,
}

impl MelFilterbank {
    /// Builds `num_filters` triangular filters spanning `[lo_hz, hi_hz]` for
    /// an FFT of `nfft` points at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `hi_hz <= lo_hz`, `hi_hz > sample_rate / 2`, or
    /// `num_filters == 0`.
    pub fn new(num_filters: usize, nfft: usize, sample_rate: f64, lo_hz: f64, hi_hz: f64) -> Self {
        assert!(num_filters > 0, "need at least one mel filter");
        assert!(hi_hz > lo_hz, "hi_hz must exceed lo_hz");
        assert!(
            hi_hz <= sample_rate / 2.0 + 1e-9,
            "hi_hz {hi_hz} exceeds Nyquist {}",
            sample_rate / 2.0
        );
        let half = nfft / 2 + 1;
        let mel_lo = hz_to_mel(lo_hz);
        let mel_hi = hz_to_mel(hi_hz);
        // num_filters + 2 breakpoints, evenly spaced in mel.
        let points: Vec<f64> = (0..num_filters + 2)
            .map(|i| {
                let mel = mel_lo + (mel_hi - mel_lo) * i as f64 / (num_filters + 1) as f64;
                mel_to_hz(mel)
            })
            .collect();
        let bin_freq = |k: usize| k as f64 * sample_rate / nfft as f64;
        let filters = (0..num_filters)
            .map(|m| {
                let (f_lo, f_c, f_hi) = (points[m], points[m + 1], points[m + 2]);
                (0..half)
                    .map(|k| {
                        let f = bin_freq(k);
                        if f <= f_lo || f >= f_hi {
                            0.0
                        } else if f <= f_c {
                            (f - f_lo) / (f_c - f_lo)
                        } else {
                            (f_hi - f) / (f_hi - f_c)
                        }
                    })
                    .collect()
            })
            .collect();
        Self { filters }
    }

    /// Number of mel bands.
    pub fn num_filters(&self) -> usize {
        self.filters.len()
    }

    /// Applies the bank to a power spectrum (length must be ≥ bin count).
    pub fn apply(&self, power_spectrum: &[f64]) -> Vec<f64> {
        self.filters
            .iter()
            .map(|f| {
                f.iter()
                    .zip(power_spectrum)
                    .map(|(w, p)| w * p)
                    .sum::<f64>()
            })
            .collect()
    }
}

/// Orthonormal DCT-II of `input`, keeping `num_coeffs` coefficients.
pub fn dct2(input: &[f64], num_coeffs: usize) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return vec![0.0; num_coeffs];
    }
    (0..num_coeffs)
        .map(|k| {
            let scale = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            scale
                * input
                    .iter()
                    .enumerate()
                    .map(|(j, &x)| {
                        x * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / n as f64).cos()
                    })
                    .sum::<f64>()
        })
        .collect()
}

/// Configurable MFCC extraction pipeline.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    /// Audio sample rate (Hz).
    pub sample_rate: f64,
    /// Frame length in samples (25 ms default).
    pub frame_len: usize,
    /// Hop in samples (10 ms default).
    pub hop: usize,
    /// Number of cepstral coefficients (including C0).
    pub num_coeffs: usize,
    /// Number of mel bands.
    pub num_filters: usize,
    /// Pre-emphasis coefficient.
    pub pre_emphasis: f64,
    filterbank: MelFilterbank,
    window: Vec<f64>,
}

impl MfccExtractor {
    /// Creates an extractor with speech-standard defaults (25 ms frames,
    /// 10 ms hop, 26 mel bands, 13 coefficients, 0.97 pre-emphasis).
    pub fn new(sample_rate: f64) -> Self {
        Self::with_config(sample_rate, 0.025, 0.010, 13, 26)
    }

    /// Creates an extractor with explicit frame/hop durations (s) and sizes.
    ///
    /// # Panics
    ///
    /// Panics if durations are non-positive or `num_coeffs > num_filters`.
    pub fn with_config(
        sample_rate: f64,
        frame_s: f64,
        hop_s: f64,
        num_coeffs: usize,
        num_filters: usize,
    ) -> Self {
        assert!(
            frame_s > 0.0 && hop_s > 0.0,
            "frame and hop must be positive"
        );
        assert!(
            num_coeffs <= num_filters,
            "cannot keep more cepstra than mel bands"
        );
        let frame_len = (sample_rate * frame_s).round() as usize;
        let hop = (sample_rate * hop_s).round() as usize;
        let nfft = frame_len.next_power_of_two();
        let filterbank =
            MelFilterbank::new(num_filters, nfft, sample_rate, 80.0, sample_rate / 2.0);
        let window = WindowKind::Hamming.generate(frame_len);
        Self {
            sample_rate,
            frame_len,
            hop,
            num_coeffs,
            num_filters,
            pre_emphasis: 0.97,
            filterbank,
            window,
        }
    }

    /// Extracts MFCC frames from `signal`. Each row has `num_coeffs` values.
    pub fn extract(&self, signal: &[f64]) -> Vec<Vec<f64>> {
        let emphasized = pre_emphasis(signal, self.pre_emphasis);
        let mut out = Vec::new();
        let mut start = 0;
        while start + self.frame_len <= emphasized.len() {
            let mut frame: Vec<f64> = emphasized[start..start + self.frame_len].to_vec();
            for (x, w) in frame.iter_mut().zip(&self.window) {
                *x *= w;
            }
            let spec = rfft(&frame);
            let half = spec.len() / 2 + 1;
            let power: Vec<f64> = spec[..half]
                .iter()
                .map(|z| z.norm_sqr() / self.frame_len as f64)
                .collect();
            let mel_energies = self.filterbank.apply(&power);
            let log_mel: Vec<f64> = mel_energies.iter().map(|&e| (e.max(1e-12)).ln()).collect();
            out.push(dct2(&log_mel, self.num_coeffs));
            start += self.hop;
        }
        out
    }

    /// Extracts MFCCs and appends delta (first-difference) features,
    /// doubling the dimensionality.
    pub fn extract_with_deltas(&self, signal: &[f64]) -> Vec<Vec<f64>> {
        let base = self.extract(signal);
        append_deltas(&base)
    }
}

/// Appends two-frame-window delta features to each frame.
pub fn append_deltas(frames: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = frames.len();
    (0..n)
        .map(|t| {
            let prev = if t > 0 { &frames[t - 1] } else { &frames[t] };
            let next = if t + 1 < n {
                &frames[t + 1]
            } else {
                &frames[t]
            };
            let mut row = frames[t].clone();
            row.extend(prev.iter().zip(next).map(|(p, nx)| (nx - p) / 2.0));
            row
        })
        .collect()
}

/// Cepstral mean normalization: subtracts the per-dimension mean over the
/// utterance, removing stationary channel coloration.
pub fn cepstral_mean_normalize(frames: &mut [Vec<f64>]) {
    if frames.is_empty() {
        return;
    }
    let dim = frames[0].len();
    let n = frames.len() as f64;
    for d in 0..dim {
        let mean = frames.iter().map(|f| f[d]).sum::<f64>() / n;
        for f in frames.iter_mut() {
            f[d] -= mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_scale_round_trip() {
        for &hz in &[0.0, 100.0, 1000.0, 8000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn mel_1000hz_is_about_1000mel() {
        assert!((hz_to_mel(1000.0) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn filterbank_partitions_energy() {
        let fb = MelFilterbank::new(20, 512, 16_000.0, 80.0, 8000.0);
        assert_eq!(fb.num_filters(), 20);
        // A flat spectrum should produce all-positive band energies.
        let flat = vec![1.0; 257];
        let e = fb.apply(&flat);
        assert!(e.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn dct2_constant_input_concentrates_in_c0() {
        let c = dct2(&[3.0; 16], 4);
        assert!(c[0] > 1.0);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn dct2_orthonormal_energy() {
        // Orthonormal DCT preserves energy when all coeffs kept.
        let x = [1.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0, 1.5];
        let c = dct2(&x, 8);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9);
    }

    #[test]
    fn mfcc_output_shape() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..16_000)
            .map(|i| (std::f64::consts::TAU * 300.0 * i as f64 / fs).sin())
            .collect();
        let ex = MfccExtractor::new(fs);
        let frames = ex.extract(&sig);
        // 1 s at 10 ms hop with 25 ms frames → about 98 frames.
        assert!(frames.len() >= 95 && frames.len() <= 99, "{}", frames.len());
        assert!(frames.iter().all(|f| f.len() == 13));
        assert!(frames.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn mfcc_distinguishes_spectra() {
        let fs = 16_000.0;
        let mk = |f0: f64| -> Vec<f64> {
            (0..8000)
                .map(|i| {
                    let t = i as f64 / fs;
                    (std::f64::consts::TAU * f0 * t).sin()
                        + 0.5 * (std::f64::consts::TAU * 2.0 * f0 * t).sin()
                })
                .collect()
        };
        let ex = MfccExtractor::new(fs);
        let a = ex.extract(&mk(200.0));
        let b = ex.extract(&mk(800.0));
        let mean = |fr: &[Vec<f64>]| -> Vec<f64> {
            let mut m = vec![0.0; fr[0].len()];
            for f in fr {
                for (mi, v) in m.iter_mut().zip(f) {
                    *mi += v;
                }
            }
            m.iter().map(|v| v / fr.len() as f64).collect()
        };
        let (ma, mb) = (mean(&a), mean(&b));
        let dist: f64 = ma
            .iter()
            .zip(&mb)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "MFCC means too close: {dist}");
    }

    #[test]
    fn deltas_double_dimension() {
        let frames = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let with = append_deltas(&frames);
        assert_eq!(with[0].len(), 4);
        // Delta of middle frame dim 0: (5−1)/2 = 2.
        assert_eq!(with[1][2], 2.0);
    }

    #[test]
    fn cmn_zeroes_means() {
        let mut frames = vec![vec![1.0, 10.0], vec![3.0, 20.0]];
        cepstral_mean_normalize(&mut frames);
        assert_eq!(frames[0][0] + frames[1][0], 0.0);
        assert_eq!(frames[0][1] + frames[1][1], 0.0);
    }

    #[test]
    #[should_panic(expected = "more cepstra")]
    fn rejects_too_many_coeffs() {
        MfccExtractor::with_config(16_000.0, 0.025, 0.01, 30, 20);
    }
}

//! Mel filterbank and MFCC extraction.
//!
//! The ASV stack (Spear stand-in, §IV-C of the paper) verifies speakers on
//! spectral features; MFCCs are the standard front end for GMM–UBM systems.
//! This implementation follows the conventional pipeline: pre-emphasis →
//! Hamming-windowed frames → power spectrum → triangular mel filterbank →
//! log → DCT-II, with optional delta features.
//!
//! Two code paths produce bit-identical output:
//!
//! * [`MfccExtractor::extract_into`] — the production fast path: writes into
//!   a [`FrameMatrix`] through a caller-owned [`ScratchPad`], performing zero
//!   heap allocations once the scratch buffers have reached their high-water
//!   mark. The filterbank sums only each band's non-zero bin span and the
//!   DCT-II uses a cosine table precomputed at construction.
//! * [`MfccExtractor::extract_reference`] — the straightforward
//!   `Vec<Vec<f64>>` pipeline retained as the oracle for parity tests.
//!
//! Both paths evaluate the same floating-point operations in the same order
//! (zero filter weights contribute exactly `+0.0`, and the cosine table
//! stores the raw `cos` values with the orthonormal scale applied last), so
//! the parity contract is bitwise equality, not a tolerance.

use crate::fft::{next_pow2, rfft, FftPlan, RealFftPlan};
use crate::filter::{pre_emphasis, pre_emphasis_into};
use crate::frame::{FrameMatrix, ScratchPad};
use crate::window::WindowKind;

/// Converts frequency in Hz to mel (O'Shaughnessy formula).
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel back to Hz.
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// Triangular mel filterbank over FFT bins, stored sparsely: each band keeps
/// only its non-zero bin span, all weights in one flat buffer.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// Concatenated non-zero weights of every band.
    weights: Vec<f64>,
    /// Per-band (first FFT bin, offset into `weights`, span length).
    spans: Vec<(usize, usize, usize)>,
    /// One-sided spectrum length the bank was built for (`nfft / 2 + 1`).
    half: usize,
}

impl MelFilterbank {
    /// Builds `num_filters` triangular filters spanning `[lo_hz, hi_hz]` for
    /// an FFT of `nfft` points at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `hi_hz <= lo_hz`, `hi_hz > sample_rate / 2`, or
    /// `num_filters == 0`.
    pub fn new(num_filters: usize, nfft: usize, sample_rate: f64, lo_hz: f64, hi_hz: f64) -> Self {
        assert!(num_filters > 0, "need at least one mel filter");
        assert!(hi_hz > lo_hz, "hi_hz must exceed lo_hz");
        assert!(
            hi_hz <= sample_rate / 2.0 + 1e-9,
            "hi_hz {hi_hz} exceeds Nyquist {}",
            sample_rate / 2.0
        );
        let half = nfft / 2 + 1;
        let mel_lo = hz_to_mel(lo_hz);
        let mel_hi = hz_to_mel(hi_hz);
        // num_filters + 2 breakpoints, evenly spaced in mel.
        let points: Vec<f64> = (0..num_filters + 2)
            .map(|i| {
                let mel = mel_lo + (mel_hi - mel_lo) * i as f64 / (num_filters + 1) as f64;
                mel_to_hz(mel)
            })
            .collect();
        let bin_freq = |k: usize| k as f64 * sample_rate / nfft as f64;
        let weight = |m: usize, k: usize| -> f64 {
            let (f_lo, f_c, f_hi) = (points[m], points[m + 1], points[m + 2]);
            let f = bin_freq(k);
            if f <= f_lo || f >= f_hi {
                0.0
            } else if f <= f_c {
                (f - f_lo) / (f_c - f_lo)
            } else {
                (f_hi - f) / (f_hi - f_c)
            }
        };
        let mut weights = Vec::new();
        let mut spans = Vec::with_capacity(num_filters);
        for m in 0..num_filters {
            let first = (0..half).find(|&k| weight(m, k) != 0.0).unwrap_or(half);
            let last = (first..half).take_while(|&k| weight(m, k) != 0.0).last();
            let offset = weights.len();
            let len = match last {
                Some(l) => l + 1 - first,
                None => 0,
            };
            weights.extend((first..first + len).map(|k| weight(m, k)));
            spans.push((first, offset, len));
        }
        Self {
            weights,
            spans,
            half,
        }
    }

    /// Number of mel bands.
    pub fn num_filters(&self) -> usize {
        self.spans.len()
    }

    /// Applies the bank to a power spectrum (length must be ≥ bin count).
    pub fn apply(&self, power_spectrum: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.apply_into(power_spectrum, &mut out);
        out
    }

    /// [`Self::apply`] into a caller-owned buffer, reusing its allocation.
    ///
    /// Each band sums `weight * power` over its non-zero span only; because
    /// the skipped weights are exactly zero and power values are finite, the
    /// result is bit-identical to the dense dot product.
    ///
    /// # Panics
    ///
    /// Panics if `power_spectrum` is shorter than the bank's bin count.
    pub fn apply_into(&self, power_spectrum: &[f64], out: &mut Vec<f64>) {
        assert!(
            power_spectrum.len() >= self.half,
            "power spectrum has {} bins, filterbank needs {}",
            power_spectrum.len(),
            self.half
        );
        out.clear();
        out.extend(self.spans.iter().map(|&(first, offset, len)| {
            let w = &self.weights[offset..offset + len];
            let p = &power_spectrum[first..first + len];
            w.iter().zip(p).map(|(w, p)| w * p).sum::<f64>()
        }));
    }
}

/// Orthonormal DCT-II of `input`, keeping `num_coeffs` coefficients.
pub fn dct2(input: &[f64], num_coeffs: usize) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return vec![0.0; num_coeffs];
    }
    (0..num_coeffs)
        .map(|k| {
            let scale = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            scale
                * input
                    .iter()
                    .enumerate()
                    .map(|(j, &x)| {
                        x * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / n as f64).cos()
                    })
                    .sum::<f64>()
        })
        .collect()
}

/// Configurable MFCC extraction pipeline.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    /// Audio sample rate (Hz).
    pub sample_rate: f64,
    /// Frame length in samples (25 ms default).
    pub frame_len: usize,
    /// Hop in samples (10 ms default).
    pub hop: usize,
    /// Number of cepstral coefficients (including C0).
    pub num_coeffs: usize,
    /// Number of mel bands.
    pub num_filters: usize,
    /// Pre-emphasis coefficient.
    pub pre_emphasis: f64,
    filterbank: MelFilterbank,
    window: Vec<f64>,
    /// Precomputed FFT plan for the frame size — bit-identical to the free
    /// [`fft`](crate::fft::fft) the reference path runs via [`rfft`].
    fft_plan: FftPlan,
    /// Half-size real-FFT plan for the fused front end
    /// ([`Self::extract_fused_into`]); `None` only for the degenerate
    /// `nfft < 2` geometry, where the fused path falls back to the exact
    /// one.
    real_plan: Option<RealFftPlan>,
    /// DCT-II basis, row-major: `dct_cos[k * num_filters + j] =
    /// cos(π k (j + ½) / num_filters)`. Raw cosines — the orthonormal scale
    /// is applied after the dot product, matching [`dct2`] bit for bit.
    dct_cos: Vec<f64>,
    /// Orthonormal DCT scale per kept coefficient.
    dct_scale: Vec<f64>,
}

impl MfccExtractor {
    /// Creates an extractor with speech-standard defaults (25 ms frames,
    /// 10 ms hop, 26 mel bands, 13 coefficients, 0.97 pre-emphasis).
    pub fn new(sample_rate: f64) -> Self {
        Self::with_config(sample_rate, 0.025, 0.010, 13, 26)
    }

    /// Creates an extractor with explicit frame/hop durations (s) and sizes.
    ///
    /// # Panics
    ///
    /// Panics if durations are non-positive or `num_coeffs > num_filters`.
    pub fn with_config(
        sample_rate: f64,
        frame_s: f64,
        hop_s: f64,
        num_coeffs: usize,
        num_filters: usize,
    ) -> Self {
        assert!(
            frame_s > 0.0 && hop_s > 0.0,
            "frame and hop must be positive"
        );
        assert!(
            num_coeffs <= num_filters,
            "cannot keep more cepstra than mel bands"
        );
        let frame_len = (sample_rate * frame_s).round() as usize;
        let hop = (sample_rate * hop_s).round() as usize;
        let nfft = frame_len.next_power_of_two();
        let filterbank =
            MelFilterbank::new(num_filters, nfft, sample_rate, 80.0, sample_rate / 2.0);
        let window = WindowKind::Hamming.generate(frame_len);
        let n = num_filters as f64;
        let dct_cos = (0..num_coeffs)
            .flat_map(|k| {
                (0..num_filters)
                    .map(move |j| (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / n).cos())
            })
            .collect();
        let dct_scale = (0..num_coeffs)
            .map(|k| {
                if k == 0 {
                    (1.0 / n).sqrt()
                } else {
                    (2.0 / n).sqrt()
                }
            })
            .collect();
        Self {
            sample_rate,
            frame_len,
            hop,
            num_coeffs,
            num_filters,
            pre_emphasis: 0.97,
            filterbank,
            window,
            fft_plan: FftPlan::new(nfft),
            real_plan: (nfft >= 2).then(|| RealFftPlan::new(nfft)),
            dct_cos,
            dct_scale,
        }
    }

    /// Extracts MFCC frames from `signal`. Each row has `num_coeffs` values.
    ///
    /// Convenience wrapper over [`Self::extract_into`] with throwaway
    /// scratch; hot paths should hold a [`ScratchPad`] and an output
    /// [`FrameMatrix`] and call `extract_into` directly.
    pub fn extract(&self, signal: &[f64]) -> FrameMatrix {
        let mut pad = ScratchPad::new();
        let mut out = FrameMatrix::new(self.num_coeffs);
        self.extract_into(signal, &mut pad, &mut out);
        out
    }

    /// Zero-allocation MFCC extraction into a caller-owned matrix.
    ///
    /// All intermediate state lives in `pad`; once its buffers have grown to
    /// the signal's high-water mark, repeated calls allocate nothing. Output
    /// is bit-identical to [`Self::extract_reference`].
    pub fn extract_into(&self, signal: &[f64], pad: &mut ScratchPad, out: &mut FrameMatrix) {
        out.reset(self.num_coeffs);
        pre_emphasis_into(signal, self.pre_emphasis, &mut pad.emphasized);
        let nfft = next_pow2(self.frame_len);
        let half = nfft / 2 + 1;
        let mut start = 0;
        while start + self.frame_len <= pad.emphasized.len() {
            pad.fft.resize(nfft, crate::complex::Complex::ZERO);
            for ((slot, &x), &w) in pad
                .fft
                .iter_mut()
                .zip(&pad.emphasized[start..start + self.frame_len])
                .zip(&self.window)
            {
                *slot = crate::complex::Complex::new(x * w, 0.0);
            }
            // Only the zero-padding tail needs clearing — the windowed
            // samples just overwrote the head.
            for slot in pad.fft[self.frame_len..].iter_mut() {
                *slot = crate::complex::Complex::ZERO;
            }
            self.fft_plan.forward(&mut pad.fft);
            pad.power.clear();
            pad.power.extend(
                pad.fft[..half]
                    .iter()
                    .map(|z| z.norm_sqr() / self.frame_len as f64),
            );
            self.mel_dct_row(pad, out);
            start += self.hop;
        }
    }

    /// The shared back half of every extraction path: mel filterbank →
    /// log → DCT-II over `pad.power`, appending one row to `out`. Same
    /// operations in the same order as [`dct2`], so paths differ only in
    /// how they produce the power spectrum.
    fn mel_dct_row(&self, pad: &mut ScratchPad, out: &mut FrameMatrix) {
        self.filterbank.apply_into(&pad.power, &mut pad.mel);
        for e in pad.mel.iter_mut() {
            *e = (e.max(1e-12)).ln();
        }
        let row = out.alloc_row();
        for (k, slot) in row.iter_mut().enumerate() {
            let basis = &self.dct_cos[k * self.num_filters..(k + 1) * self.num_filters];
            let acc: f64 = pad.mel.iter().zip(basis).map(|(x, c)| x * c).sum();
            *slot = self.dct_scale[k] * acc;
        }
    }

    /// Fused front end: pre-emphasis, Hamming window and real-FFT packing
    /// evaluated in a **single pass per frame**, with the spectrum computed
    /// by a half-size transform ([`RealFftPlan`]) — no whole-signal
    /// emphasized copy, no full-length complex buffer, half the butterfly
    /// work.
    ///
    /// Numerically equivalent to [`Self::extract_into`] to rounding error,
    /// but **not bitwise identical**: the half-size transform evaluates the
    /// same spectrum through a different operation order. The exact path
    /// stays the default everywhere a committed score could shift; this
    /// path is the opt-in hot-loop variant (see
    /// `FeatureExtractor::fused_frontend` in `magshield-asv`).
    ///
    /// Frames overlap by `frame_len − hop` samples, so pre-emphasis is
    /// recomputed per frame rather than shared — one fused multiply-add
    /// per sample against the raw signal, which profiles cheaper than the
    /// extra whole-signal write+read pass it replaces.
    pub fn extract_fused_into(&self, signal: &[f64], pad: &mut ScratchPad, out: &mut FrameMatrix) {
        let Some(real_plan) = &self.real_plan else {
            // Degenerate nfft < 2 geometry: the half-size trick has no
            // half to use; the exact path is already optimal.
            self.extract_into(signal, pad, out);
            return;
        };
        out.reset(self.num_coeffs);
        let m = real_plan.packed_len();
        let a = self.pre_emphasis;
        let inv_len = 1.0 / self.frame_len as f64;
        let mut start = 0;
        while start + self.frame_len <= signal.len() {
            let frame = &signal[start..start + self.frame_len];
            // One pass: emphasize both samples of each pair, window them,
            // and pack them as one complex entry.
            pad.packed.clear();
            pad.packed.resize(m, crate::complex::Complex::ZERO);
            let prev0 = if start == 0 { 0.0 } else { signal[start - 1] };
            for (j, slot) in pad.packed[..self.frame_len / 2].iter_mut().enumerate() {
                let t = 2 * j;
                let p = if t == 0 { prev0 } else { frame[t - 1] };
                let e0 = frame[t] - a * p;
                let e1 = frame[t + 1] - a * frame[t];
                *slot = crate::complex::Complex::new(e0 * self.window[t], e1 * self.window[t + 1]);
            }
            if self.frame_len % 2 == 1 {
                let t = self.frame_len - 1;
                let p = if t == 0 { prev0 } else { frame[t - 1] };
                pad.packed[self.frame_len / 2] =
                    crate::complex::Complex::new((frame[t] - a * p) * self.window[t], 0.0);
            }
            real_plan.power_from_packed(&mut pad.packed, inv_len, &mut pad.power);
            self.mel_dct_row(pad, out);
            start += self.hop;
        }
    }

    /// [`Self::extract_fused_into`] with throwaway scratch.
    pub fn extract_fused(&self, signal: &[f64]) -> FrameMatrix {
        let mut pad = ScratchPad::new();
        let mut out = FrameMatrix::new(self.num_coeffs);
        self.extract_fused_into(signal, &mut pad, &mut out);
        out
    }

    /// Reference MFCC pipeline over `Vec<Vec<f64>>`, kept as the oracle the
    /// fast path is verified against (bitwise, see the module docs).
    pub fn extract_reference(&self, signal: &[f64]) -> Vec<Vec<f64>> {
        let emphasized = pre_emphasis(signal, self.pre_emphasis);
        let mut out = Vec::new();
        let mut frame = vec![0.0; self.frame_len];
        let mut start = 0;
        while start + self.frame_len <= emphasized.len() {
            for (f, (&x, &w)) in frame.iter_mut().zip(
                emphasized[start..start + self.frame_len]
                    .iter()
                    .zip(&self.window),
            ) {
                *f = x * w;
            }
            let spec = rfft(&frame);
            let half = spec.len() / 2 + 1;
            let power: Vec<f64> = spec[..half]
                .iter()
                .map(|z| z.norm_sqr() / self.frame_len as f64)
                .collect();
            let mel_energies = self.filterbank.apply(&power);
            let log_mel: Vec<f64> = mel_energies.iter().map(|&e| (e.max(1e-12)).ln()).collect();
            out.push(dct2(&log_mel, self.num_coeffs));
            start += self.hop;
        }
        out
    }

    /// Extracts MFCCs and appends delta (first-difference) features,
    /// doubling the dimensionality.
    pub fn extract_with_deltas(&self, signal: &[f64]) -> FrameMatrix {
        let base = self.extract(signal);
        let mut out = FrameMatrix::new(base.cols() * 2);
        append_deltas_into(&base, &mut out);
        out
    }

    /// Computes one MFCC row from a single already pre-emphasized frame of
    /// exactly `frame_len` samples, appending it to `out`.
    ///
    /// Runs the same operations in the same order as the frame loop inside
    /// [`Self::extract_into`], so a caller that frames the emphasized signal
    /// itself (e.g. [`StreamingMfcc`]) produces bit-identical rows.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != self.frame_len`.
    pub fn emphasized_frame_into(
        &self,
        frame: &[f64],
        pad: &mut ScratchPad,
        out: &mut FrameMatrix,
    ) {
        assert_eq!(frame.len(), self.frame_len, "frame length mismatch");
        let nfft = next_pow2(self.frame_len);
        let half = nfft / 2 + 1;
        pad.fft.resize(nfft, crate::complex::Complex::ZERO);
        for ((slot, &x), &w) in pad.fft.iter_mut().zip(frame).zip(&self.window) {
            *slot = crate::complex::Complex::new(x * w, 0.0);
        }
        for slot in pad.fft[self.frame_len..].iter_mut() {
            *slot = crate::complex::Complex::ZERO;
        }
        self.fft_plan.forward(&mut pad.fft);
        pad.power.clear();
        pad.power.extend(
            pad.fft[..half]
                .iter()
                .map(|z| z.norm_sqr() / self.frame_len as f64),
        );
        self.mel_dct_row(pad, out);
    }
}

/// Chunk-fed MFCC extraction that carries pre-emphasis and frame-boundary
/// state across chunk seams.
///
/// Feeding a signal in arbitrary chunks yields a base-MFCC matrix that is
/// bit-identical to [`MfccExtractor::extract_into`] over the concatenated
/// signal: the pre-emphasis filter carries its previous raw sample across
/// seams (the one-shot path starts from an implicit `0.0`), and emphasized
/// samples are buffered until a full `frame_len` window is available, so
/// frame boundaries land at exactly the same absolute sample offsets.
///
/// Base rows only — delta appending and cepstral mean normalization depend
/// on the whole utterance and live downstream (`magshield-asv`).
#[derive(Debug, Clone)]
pub struct StreamingMfcc {
    extractor: MfccExtractor,
    /// Previous raw sample for the pre-emphasis difference across seams;
    /// starts at `0.0` exactly like the one-shot path's implicit
    /// predecessor.
    prev: f64,
    /// Emphasized samples not yet consumed by a completed frame hop.
    pending: Vec<f64>,
    pad: ScratchPad,
    rows: FrameMatrix,
}

impl StreamingMfcc {
    /// Opens a streaming extractor around `extractor`'s configuration.
    pub fn new(extractor: MfccExtractor) -> Self {
        let rows = FrameMatrix::new(extractor.num_coeffs);
        Self {
            extractor,
            prev: 0.0,
            pending: Vec::new(),
            pad: ScratchPad::new(),
            rows,
        }
    }

    /// The wrapped extractor configuration.
    pub fn extractor(&self) -> &MfccExtractor {
        &self.extractor
    }

    /// Ingests the next chunk of raw samples; returns the number of new
    /// complete MFCC rows it produced.
    pub fn push(&mut self, chunk: &[f64]) -> usize {
        for &x in chunk {
            self.pending
                .push(x - self.extractor.pre_emphasis * self.prev);
            self.prev = x;
        }
        let before = self.rows.rows();
        let mut start = 0;
        while start + self.extractor.frame_len <= self.pending.len() {
            // Split the borrow: the frame slice lives in a local copy-free
            // range of `pending`; `pad`/`rows` are disjoint fields.
            let (extractor, pending, pad, rows) = (
                &self.extractor,
                &self.pending,
                &mut self.pad,
                &mut self.rows,
            );
            extractor.emphasized_frame_into(
                &pending[start..start + extractor.frame_len],
                pad,
                rows,
            );
            start += self.extractor.hop;
        }
        // `start` is a multiple of `hop`, so dropping the consumed prefix
        // keeps the next frame boundary at `pending[0]`.
        self.pending.drain(..start);
        self.rows.rows() - before
    }

    /// All base MFCC rows produced so far (prefix of the one-shot matrix).
    pub fn frames(&self) -> &FrameMatrix {
        &self.rows
    }

    /// Total raw-domain frames emitted so far.
    pub fn rows(&self) -> usize {
        self.rows.rows()
    }
}

/// Appends two-frame-window delta features to each frame (reference layout).
pub fn append_deltas(frames: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = frames.len();
    (0..n)
        .map(|t| {
            let prev = if t > 0 { &frames[t - 1] } else { &frames[t] };
            let next = if t + 1 < n {
                &frames[t + 1]
            } else {
                &frames[t]
            };
            let mut row = Vec::with_capacity(frames[t].len() * 2);
            row.extend_from_slice(&frames[t]);
            row.extend(prev.iter().zip(next).map(|(p, nx)| (nx - p) / 2.0));
            row
        })
        .collect()
}

/// [`append_deltas`] from one [`FrameMatrix`] into another, reusing the
/// output's allocation. `out` ends up with `2 * base.cols()` columns.
pub fn append_deltas_into(base: &FrameMatrix, out: &mut FrameMatrix) {
    let (n, dim) = (base.rows(), base.cols());
    out.reset(dim * 2);
    for t in 0..n {
        let prev = base.row(if t > 0 { t - 1 } else { t });
        let next = base.row(if t + 1 < n { t + 1 } else { t });
        let cur = base.row(t);
        let row = out.alloc_row();
        row[..dim].copy_from_slice(cur);
        for d in 0..dim {
            row[dim + d] = (next[d] - prev[d]) / 2.0;
        }
    }
}

/// Cepstral mean normalization: subtracts the per-dimension mean over the
/// utterance, removing stationary channel coloration.
pub fn cepstral_mean_normalize(frames: &mut [Vec<f64>]) {
    if frames.is_empty() {
        return;
    }
    let dim = frames[0].len();
    let n = frames.len() as f64;
    for d in 0..dim {
        let mean = frames.iter().map(|f| f[d]).sum::<f64>() / n;
        for f in frames.iter_mut() {
            f[d] -= mean;
        }
    }
}

/// [`cepstral_mean_normalize`] over a [`FrameMatrix`], in place.
pub fn cepstral_mean_normalize_flat(frames: &mut FrameMatrix) {
    let (rows, dim) = (frames.rows(), frames.cols());
    if rows == 0 {
        return;
    }
    let n = rows as f64;
    for d in 0..dim {
        let mean = (0..rows).map(|r| frames.row(r)[d]).sum::<f64>() / n;
        for r in 0..rows {
            frames.row_mut(r)[d] -= mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_mfcc_bit_identical_across_chunkings() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..8000)
            .map(|i| {
                (std::f64::consts::TAU * 300.0 * i as f64 / fs).sin()
                    + 0.1 * ((i * 2654435761usize) % 997) as f64 / 997.0
            })
            .collect();
        let ex = MfccExtractor::new(fs);
        let oracle = ex.extract(&sig);
        for chunk in [1usize, 3, 160, 400, 401, sig.len()] {
            let mut sm = StreamingMfcc::new(ex.clone());
            let mut produced = 0;
            for c in sig.chunks(chunk) {
                produced += sm.push(c);
            }
            assert_eq!(produced, oracle.rows(), "chunk {chunk}");
            assert_eq!(
                sm.frames().as_slice(),
                oracle.as_slice(),
                "chunk {chunk}: streaming rows diverged from one-shot"
            );
        }
    }

    #[test]
    fn streaming_mfcc_rows_are_prefix_stable() {
        // Rows already emitted never change as more audio arrives.
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..6000)
            .map(|i| (std::f64::consts::TAU * 440.0 * i as f64 / fs).sin())
            .collect();
        let ex = MfccExtractor::new(fs);
        let mut sm = StreamingMfcc::new(ex.clone());
        sm.push(&sig[..2000]);
        let early = sm.frames().as_slice().to_vec();
        sm.push(&sig[2000..]);
        assert_eq!(&sm.frames().as_slice()[..early.len()], &early[..]);
    }

    #[test]
    fn mel_scale_round_trip() {
        for &hz in &[0.0, 100.0, 1000.0, 8000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn mel_1000hz_is_about_1000mel() {
        assert!((hz_to_mel(1000.0) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn filterbank_partitions_energy() {
        let fb = MelFilterbank::new(20, 512, 16_000.0, 80.0, 8000.0);
        assert_eq!(fb.num_filters(), 20);
        // A flat spectrum should produce all-positive band energies.
        let flat = vec![1.0; 257];
        let e = fb.apply(&flat);
        assert!(e.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn sparse_apply_matches_dense_dot_product() {
        // Rebuild the dense weights independently and compare band sums.
        let (num_filters, nfft, fs, lo, hi) = (26, 512, 16_000.0, 80.0, 8000.0);
        let fb = MelFilterbank::new(num_filters, nfft, fs, lo, hi);
        let half = nfft / 2 + 1;
        let power: Vec<f64> = (0..half).map(|k| ((k * 37 % 101) as f64) * 0.01).collect();
        let sparse = fb.apply(&power);

        let (mel_lo, mel_hi) = (hz_to_mel(lo), hz_to_mel(hi));
        let points: Vec<f64> = (0..num_filters + 2)
            .map(|i| mel_to_hz(mel_lo + (mel_hi - mel_lo) * i as f64 / (num_filters + 1) as f64))
            .collect();
        for m in 0..num_filters {
            let (f_lo, f_c, f_hi) = (points[m], points[m + 1], points[m + 2]);
            let dense: f64 = (0..half)
                .map(|k| {
                    let f = k as f64 * fs / nfft as f64;
                    let w = if f <= f_lo || f >= f_hi {
                        0.0
                    } else if f <= f_c {
                        (f - f_lo) / (f_c - f_lo)
                    } else {
                        (f_hi - f) / (f_hi - f_c)
                    };
                    w * power[k]
                })
                .sum();
            assert_eq!(sparse[m], dense, "band {m}");
        }
    }

    #[test]
    fn dct2_constant_input_concentrates_in_c0() {
        let c = dct2(&[3.0; 16], 4);
        assert!(c[0] > 1.0);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn dct2_orthonormal_energy() {
        // Orthonormal DCT preserves energy when all coeffs kept.
        let x = [1.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0, 1.5];
        let c = dct2(&x, 8);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9);
    }

    #[test]
    fn mfcc_output_shape() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..16_000)
            .map(|i| (std::f64::consts::TAU * 300.0 * i as f64 / fs).sin())
            .collect();
        let ex = MfccExtractor::new(fs);
        let frames = ex.extract(&sig);
        // 1 s at 10 ms hop with 25 ms frames → about 98 frames.
        assert!(
            frames.rows() >= 95 && frames.rows() <= 99,
            "{}",
            frames.rows()
        );
        assert_eq!(frames.cols(), 13);
        assert!(frames.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fast_path_is_bit_identical_to_reference() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..8000)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 220.0 * t).sin()
                    + 0.3 * (std::f64::consts::TAU * 1750.0 * t).sin()
            })
            .collect();
        let ex = MfccExtractor::new(fs);
        let fast = ex.extract(&sig);
        let reference = ex.extract_reference(&sig);
        assert_eq!(fast.rows(), reference.len());
        for (t, r) in reference.iter().enumerate() {
            assert_eq!(fast.row(t), r.as_slice(), "frame {t}");
        }
    }

    #[test]
    fn fused_path_matches_exact_to_rounding() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..8000)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 220.0 * t).sin()
                    + 0.3 * (std::f64::consts::TAU * 1750.0 * t).sin()
                    + 0.05 * ((i * 2654435761usize) % 997) as f64 / 997.0
            })
            .collect();
        let ex = MfccExtractor::new(fs);
        let exact = ex.extract(&sig);
        let fused = ex.extract_fused(&sig);
        assert_eq!(fused.rows(), exact.rows());
        assert_eq!(fused.cols(), exact.cols());
        for t in 0..exact.rows() {
            for (d, (f, e)) in fused.row(t).iter().zip(exact.row(t)).enumerate() {
                assert!(
                    (f - e).abs() < 1e-8,
                    "frame {t} dim {d}: fused {f} vs exact {e}"
                );
            }
        }
    }

    #[test]
    fn fused_path_handles_odd_frame_lengths() {
        // 25.0625 ms at 16 kHz → 401-sample frames: the lone-tail pack.
        let fs = 16_000.0;
        let ex = MfccExtractor::with_config(fs, 0.02506, 0.010, 13, 26);
        assert_eq!(ex.frame_len % 2, 1, "geometry no longer odd");
        let sig: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.07).sin()).collect();
        let exact = ex.extract(&sig);
        let fused = ex.extract_fused(&sig);
        assert_eq!(fused.rows(), exact.rows());
        for t in 0..exact.rows() {
            for (f, e) in fused.row(t).iter().zip(exact.row(t)) {
                assert!((f - e).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn fused_path_reuses_scratch_across_calls() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.01).sin()).collect();
        let ex = MfccExtractor::new(fs);
        let mut pad = ScratchPad::new();
        let mut out = FrameMatrix::default();
        ex.extract_fused_into(&sig, &mut pad, &mut out);
        let first = out.clone();
        let footprint = pad.footprint_bytes();
        ex.extract_fused_into(&sig, &mut pad, &mut out);
        assert_eq!(out, first);
        assert_eq!(pad.footprint_bytes(), footprint, "scratch regrew");
    }

    #[test]
    fn extract_into_reuses_scratch_across_calls() {
        let fs = 16_000.0;
        let sig: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.01).sin()).collect();
        let ex = MfccExtractor::new(fs);
        let mut pad = ScratchPad::new();
        let mut out = FrameMatrix::default();
        ex.extract_into(&sig, &mut pad, &mut out);
        let first = out.clone();
        let footprint = pad.footprint_bytes();
        ex.extract_into(&sig, &mut pad, &mut out);
        assert_eq!(out, first);
        assert_eq!(pad.footprint_bytes(), footprint, "scratch regrew");
    }

    #[test]
    fn mfcc_distinguishes_spectra() {
        let fs = 16_000.0;
        let mk = |f0: f64| -> Vec<f64> {
            (0..8000)
                .map(|i| {
                    let t = i as f64 / fs;
                    (std::f64::consts::TAU * f0 * t).sin()
                        + 0.5 * (std::f64::consts::TAU * 2.0 * f0 * t).sin()
                })
                .collect()
        };
        let ex = MfccExtractor::new(fs);
        let a = ex.extract(&mk(200.0));
        let b = ex.extract(&mk(800.0));
        let mean = |fr: &FrameMatrix| -> Vec<f64> {
            let mut m = vec![0.0; fr.cols()];
            for f in fr.iter_rows() {
                for (mi, v) in m.iter_mut().zip(f) {
                    *mi += v;
                }
            }
            m.iter().map(|v| v / fr.rows() as f64).collect()
        };
        let (ma, mb) = (mean(&a), mean(&b));
        let dist: f64 = ma
            .iter()
            .zip(&mb)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "MFCC means too close: {dist}");
    }

    #[test]
    fn deltas_double_dimension() {
        let frames = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let with = append_deltas(&frames);
        assert_eq!(with[0].len(), 4);
        // Delta of middle frame dim 0: (5−1)/2 = 2.
        assert_eq!(with[1][2], 2.0);

        let mut flat = FrameMatrix::default();
        append_deltas_into(&FrameMatrix::from_rows(&frames), &mut flat);
        assert_eq!(flat.to_rows(), with);
    }

    #[test]
    fn cmn_zeroes_means() {
        let mut frames = vec![vec![1.0, 10.0], vec![3.0, 20.0]];
        let mut flat = FrameMatrix::from_rows(&frames);
        cepstral_mean_normalize(&mut frames);
        cepstral_mean_normalize_flat(&mut flat);
        assert_eq!(frames[0][0] + frames[1][0], 0.0);
        assert_eq!(frames[0][1] + frames[1][1], 0.0);
        assert_eq!(flat.to_rows(), frames);
    }

    #[test]
    #[should_panic(expected = "more cepstra")]
    fn rejects_too_many_coeffs() {
        MfccExtractor::with_config(16_000.0, 0.025, 0.01, 30, 20);
    }
}

//! IIR filters: RBJ-cookbook biquads, one-pole smoothers, moving averages.
//!
//! The sensor models use low-pass biquads for anti-aliasing, the pilot
//! ranging uses band-pass isolation around the pilot tone, and the
//! magnetometer detector smooths with one-pole/moving-average stages.

/// A Direct Form I biquad filter.
#[derive(Debug, Clone)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (a0 already divided out).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Self {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// RBJ low-pass design.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_hz` is not in `(0, sample_rate/2)` or `q <= 0`.
    pub fn lowpass(sample_rate: f64, cutoff_hz: f64, q: f64) -> Self {
        let (w0, alpha) = rbj_params(sample_rate, cutoff_hz, q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            (1.0 - cw) / 2.0 / a0,
            (1.0 - cw) / a0,
            (1.0 - cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ high-pass design.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Biquad::lowpass`].
    pub fn highpass(sample_rate: f64, cutoff_hz: f64, q: f64) -> Self {
        let (w0, alpha) = rbj_params(sample_rate, cutoff_hz, q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            (1.0 + cw) / 2.0 / a0,
            -(1.0 + cw) / a0,
            (1.0 + cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ band-pass design (constant 0 dB peak gain).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Biquad::lowpass`].
    pub fn bandpass(sample_rate: f64, center_hz: f64, q: f64) -> Self {
        let (w0, alpha) = rbj_params(sample_rate, center_hz, q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            alpha / a0,
            0.0,
            -alpha / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ peaking EQ with gain `gain_db` at `center_hz` — used to shape
    /// loudspeaker frequency responses.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Biquad::lowpass`].
    pub fn peaking(sample_rate: f64, center_hz: f64, q: f64, gain_db: f64) -> Self {
        let (w0, alpha) = rbj_params(sample_rate, center_hz, q);
        let a = 10f64.powf(gain_db / 40.0);
        let cw = w0.cos();
        let a0 = 1.0 + alpha / a;
        Self::from_coefficients(
            (1.0 + alpha * a) / a0,
            -2.0 * cw / a0,
            (1.0 - alpha * a) / a0,
            -2.0 * cw / a0,
            (1.0 - alpha / a) / a0,
        )
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Filters a whole buffer, returning a new vector.
    pub fn process_buffer(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// Resets the filter state to silence.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

fn rbj_params(sample_rate: f64, freq_hz: f64, q: f64) -> (f64, f64) {
    assert!(
        freq_hz > 0.0 && freq_hz < sample_rate / 2.0,
        "frequency {freq_hz} Hz must be in (0, {})",
        sample_rate / 2.0
    );
    assert!(q > 0.0, "Q must be positive, got {q}");
    let w0 = std::f64::consts::TAU * freq_hz / sample_rate;
    let alpha = w0.sin() / (2.0 * q);
    (w0, alpha)
}

/// One-pole exponential smoother: `y += k (x − y)`.
#[derive(Debug, Clone)]
pub struct OnePole {
    k: f64,
    y: f64,
    primed: bool,
}

impl OnePole {
    /// Creates a smoother with time constant `tau_s` at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `tau_s <= 0` or `sample_rate <= 0`.
    pub fn with_time_constant(sample_rate: f64, tau_s: f64) -> Self {
        assert!(
            tau_s > 0.0 && sample_rate > 0.0,
            "tau and rate must be positive"
        );
        let k = 1.0 - (-1.0 / (tau_s * sample_rate)).exp();
        Self {
            k,
            y: 0.0,
            primed: false,
        }
    }

    /// Processes one sample. The first sample initializes the state so there
    /// is no start-up transient from zero.
    pub fn process(&mut self, x: f64) -> f64 {
        if !self.primed {
            self.y = x;
            self.primed = true;
        } else {
            self.y += self.k * (x - self.y);
        }
        self.y
    }
}

/// Centered moving average over an odd window, edges truncated.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let half = window / 2;
    (0..signal.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(signal.len());
            signal[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// First difference scaled by the sample rate: discrete d/dt.
pub fn derivative(signal: &[f64], sample_rate: f64) -> Vec<f64> {
    if signal.len() < 2 {
        return vec![0.0; signal.len()];
    }
    let mut out = Vec::with_capacity(signal.len());
    out.push((signal[1] - signal[0]) * sample_rate);
    for w in signal.windows(2) {
        out.push((w[1] - w[0]) * sample_rate);
    }
    out
}

/// Pre-emphasis filter `y[n] = x[n] − α x[n−1]` used before MFCC analysis.
pub fn pre_emphasis(signal: &[f64], alpha: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(signal.len());
    pre_emphasis_into(signal, alpha, &mut out);
    out
}

/// [`pre_emphasis`] into a caller-owned buffer, reusing its allocation.
pub fn pre_emphasis_into(signal: &[f64], alpha: f64, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(signal.len());
    let mut prev = 0.0;
    for &x in signal {
        out.push(x - alpha * prev);
        prev = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goertzel::tone_amplitude;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn lowpass_attenuates_high_frequencies() {
        let fs = 8000.0;
        let mut f = Biquad::lowpass(fs, 500.0, std::f64::consts::FRAC_1_SQRT_2);
        let low = f.process_buffer(&tone(100.0, fs, 8000));
        f.reset();
        let high = f.process_buffer(&tone(3000.0, fs, 8000));
        let a_low = tone_amplitude(&low[4000..], 100.0, fs);
        let a_high = tone_amplitude(&high[4000..], 3000.0, fs);
        assert!(a_low > 0.95, "passband {a_low}");
        assert!(a_high < 0.05, "stopband {a_high}");
    }

    #[test]
    fn highpass_attenuates_low_frequencies() {
        let fs = 8000.0;
        let mut f = Biquad::highpass(fs, 1000.0, std::f64::consts::FRAC_1_SQRT_2);
        let low = f.process_buffer(&tone(100.0, fs, 8000));
        f.reset();
        let high = f.process_buffer(&tone(3000.0, fs, 8000));
        assert!(tone_amplitude(&low[4000..], 100.0, fs) < 0.05);
        assert!(tone_amplitude(&high[4000..], 3000.0, fs) > 0.9);
    }

    #[test]
    fn bandpass_passes_center() {
        let fs = 48_000.0;
        let mut f = Biquad::bandpass(fs, 18_000.0, 5.0);
        let on = f.process_buffer(&tone(18_000.0, fs, 48_000));
        f.reset();
        let off = f.process_buffer(&tone(2_000.0, fs, 48_000));
        assert!(tone_amplitude(&on[24_000..], 18_000.0, fs) > 0.9);
        assert!(tone_amplitude(&off[24_000..], 2_000.0, fs) < 0.1);
    }

    #[test]
    fn peaking_boosts_center() {
        let fs = 8000.0;
        let mut f = Biquad::peaking(fs, 1000.0, 1.0, 12.0);
        let out = f.process_buffer(&tone(1000.0, fs, 8000));
        let a = tone_amplitude(&out[4000..], 1000.0, fs);
        // +12 dB ≈ ×3.98.
        assert!((a - 3.98).abs() < 0.2, "gain {a}");
    }

    #[test]
    fn one_pole_converges_to_step() {
        let mut s = OnePole::with_time_constant(100.0, 0.05);
        let mut y = 0.0;
        for _ in 0..200 {
            y = s.process(1.0);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_pole_primes_on_first_sample() {
        let mut s = OnePole::with_time_constant(100.0, 1.0);
        assert_eq!(s.process(5.0), 5.0);
    }

    #[test]
    fn moving_average_flat_signal() {
        let out = moving_average(&[2.0; 10], 5);
        assert!(out.iter().all(|&y| (y - 2.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let mut sig = vec![0.0; 11];
        sig[5] = 5.0;
        let out = moving_average(&sig, 5);
        assert!((out[5] - 1.0).abs() < 1e-12);
        assert!((out[3] - 1.0).abs() < 1e-12);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn derivative_of_ramp_is_slope() {
        let sig: Vec<f64> = (0..100).map(|i| 3.0 * i as f64).collect();
        let d = derivative(&sig, 10.0);
        for &v in &d {
            assert!((v - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pre_emphasis_kills_dc() {
        let out = pre_emphasis(&[1.0; 100], 1.0);
        assert_eq!(out[0], 1.0);
        for &v in &out[1..] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be in (0")]
    fn lowpass_rejects_above_nyquist() {
        Biquad::lowpass(8000.0, 5000.0, 0.7);
    }
}

//! Iterative radix-2 Cooley–Tukey FFT.

use crate::complex::Complex;

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two (zero-pad first; see
/// [`next_pow2`]).
///
/// # Example
///
/// ```
/// use magshield_dsp::fft::{fft, ifft};
/// use magshield_dsp::complex::Complex;
/// let orig: Vec<Complex> = (0..16).map(|i| Complex::new((i as f64).sin(), 0.0)).collect();
/// let mut buf = orig.clone();
/// fft(&mut buf);
/// ifft(&mut buf);
/// for (a, b) in orig.iter().zip(&buf) {
///     assert!((a.re - b.re).abs() < 1e-9);
/// }
/// ```
pub fn fft(buf: &mut [Complex]) {
    fft_dir(buf, false);
}

/// In-place inverse FFT (includes the `1/N` normalization).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn ifft(buf: &mut [Complex]) {
    fft_dir(buf, true);
    let n = buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

fn fft_dir(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Smallest power of two `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// Precomputed forward-FFT plan for one fixed transform size.
///
/// [`fft`] re-derives its twiddle factors with a serial `w *= wlen`
/// recurrence inside every butterfly block — cheap per step, but a loop
/// whose every multiply waits on the previous one, re-run for every
/// frame of a hot loop (MFCC extraction runs one 512-point FFT per
/// 10 ms hop). The plan runs that exact recurrence **once** at
/// construction and stores the values, so [`FftPlan::forward`] computes
/// the same floating-point operations on the same values in the same
/// order as [`fft`] — output is bit-identical — while the per-call
/// butterflies become independent table lookups.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
    /// Per-stage twiddle tables, concatenated: lengths 1, 2, …, n/2.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let mut swaps = Vec::new();
        if n > 1 {
            let bits = n.trailing_zeros();
            for i in 0..n {
                let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
                if i < j {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        // The same recurrence fft() runs per block, evaluated once: the
        // stored values are bitwise what the k-th butterfly would see.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let ang = -std::f64::consts::TAU / len as f64;
            let wlen = Complex::from_polar(1.0, ang);
            let mut w = Complex::ONE;
            for _ in 0..len / 2 {
                twiddles.push(w);
                w = w * wlen;
            }
            len <<= 1;
        }
        Self { n, swaps, twiddles }
    }

    /// Transform size the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the degenerate length-0 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT; bit-identical to [`fft`] on the same input.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn forward(&self, buf: &mut [Complex]) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length {} does not match planned FFT size {}",
            buf.len(),
            self.n
        );
        if self.n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            buf.swap(i as usize, j as usize);
        }
        let mut offset = 0;
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let tw = &self.twiddles[offset..offset + half];
            for start in (0..self.n).step_by(len) {
                for (k, &w) in tw.iter().enumerate() {
                    let u = buf[start + k];
                    let v = buf[start + k + half] * w;
                    buf[start + k] = u + v;
                    buf[start + k + half] = u - v;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// Forward FFT plan specialized for **real** input of a fixed even
/// power-of-two length `n`.
///
/// Uses the classic even/odd packing trick: the real frame is packed into
/// an `n/2`-point complex buffer (`z[j] = x[2j] + i·x[2j+1]`), transformed
/// with a half-size [`FftPlan`], and the one-sided spectrum `X[0..=n/2]`
/// is recovered with one unpack pass:
///
/// ```text
/// E[k] = (Z[k] + conj(Z[m−k])) / 2        (spectrum of even samples)
/// O[k] = (Z[k] − conj(Z[m−k])) / 2        (i · spectrum of odd samples)
/// X[k] = E[k] − i · e^(−2πik/n) · O[k],   m = n/2
/// ```
///
/// Halving the transform size roughly halves the butterfly count — the
/// dominant cost of the MFCC/STFT front ends, which only ever consume the
/// one-sided spectrum of real frames. Results agree with [`rfft`] to
/// rounding error (the operation order differs, so equality is *not*
/// bitwise; see the parity tests).
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    inner: FftPlan,
    /// Unpack twiddles `e^(−2πik/n)` for `k = 0..n/2`.
    twiddles: Vec<Complex>,
}

impl RealFftPlan {
    /// Builds a plan for real transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "real FFT length must be a power of two >= 2, got {n}"
        );
        let m = n / 2;
        let twiddles = (0..m)
            .map(|k| Complex::from_polar(1.0, -std::f64::consts::TAU * k as f64 / n as f64))
            .collect();
        Self {
            n,
            inner: FftPlan::new(m),
            twiddles,
        }
    }

    /// Real transform size the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true — the constructor rejects `n < 2`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of the packed complex buffer (`n/2`).
    pub fn packed_len(&self) -> usize {
        self.n / 2
    }

    /// Packs a real signal (zero-padded to `n`) into `packed` —
    /// `packed[j] = x[2j] + i·x[2j+1]`.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > n`.
    pub fn pack_into(&self, signal: &[f64], packed: &mut Vec<Complex>) {
        assert!(
            signal.len() <= self.n,
            "signal length {} exceeds planned real-FFT size {}",
            signal.len(),
            self.n
        );
        packed.clear();
        packed.resize(self.packed_len(), Complex::ZERO);
        let mut pairs = signal.chunks_exact(2);
        for (slot, p) in packed.iter_mut().zip(&mut pairs) {
            *slot = Complex::new(p[0], p[1]);
        }
        if let [last] = pairs.remainder() {
            packed[signal.len() / 2] = Complex::new(*last, 0.0);
        }
    }

    /// Transforms an already-packed buffer and writes the one-sided
    /// spectrum `X[0..=n/2]` (`n/2 + 1` bins) into `out`. `packed` is
    /// consumed as scratch (left holding the half-size transform).
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != n/2`.
    pub fn spectrum_from_packed(&self, packed: &mut [Complex], out: &mut Vec<Complex>) {
        let m = self.packed_len();
        self.inner.forward(packed);
        out.clear();
        out.reserve(m + 1);
        out.push(Complex::new(packed[0].re + packed[0].im, 0.0));
        for k in 1..m {
            out.push(self.unpack_bin(packed, k));
        }
        out.push(Complex::new(packed[0].re - packed[0].im, 0.0));
    }

    /// Transforms an already-packed buffer and writes the **scaled power
    /// spectrum** `|X[k]|² · scale` for `k = 0..=n/2` into `out`, never
    /// materializing the complex spectrum — the fused form the MFCC front
    /// end consumes.
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != n/2`.
    pub fn power_from_packed(&self, packed: &mut [Complex], scale: f64, out: &mut Vec<f64>) {
        let m = self.packed_len();
        self.inner.forward(packed);
        out.clear();
        out.reserve(m + 1);
        let dc = packed[0].re + packed[0].im;
        out.push(dc * dc * scale);
        for k in 1..m {
            out.push(self.unpack_bin(packed, k).norm_sqr() * scale);
        }
        let nyq = packed[0].re - packed[0].im;
        out.push(nyq * nyq * scale);
    }

    /// One unpacked spectrum bin `X[k]` for `0 < k < n/2` from the
    /// half-size transform `z`.
    #[inline]
    fn unpack_bin(&self, z: &[Complex], k: usize) -> Complex {
        let m = self.packed_len();
        let a = z[k];
        let b = z[m - k].conj();
        let even = (a + b).scale(0.5);
        let odd = (a - b).scale(0.5);
        let t = self.twiddles[k] * odd;
        // even − i·t: multiplying by −i maps (re, im) to (im, −re).
        Complex::new(even.re + t.im, even.im - t.re)
    }

    /// One-sided spectrum of a real signal (zero-padded to `n`), packing
    /// through the caller's scratch buffer. Equivalent to
    /// `rfft(signal)[..n/2 + 1]` up to rounding.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > n`.
    pub fn forward_into(&self, signal: &[f64], packed: &mut Vec<Complex>, out: &mut Vec<Complex>) {
        self.pack_into(signal, packed);
        self.spectrum_from_packed(packed, out);
    }
}

/// Forward FFT of a real signal, zero-padded to a power of two.
///
/// Returns the full complex spectrum of length `next_pow2(signal.len())`.
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    let mut buf = Vec::new();
    rfft_into(signal, &mut buf);
    buf
}

/// [`rfft`] into a caller-owned buffer, reusing its allocation.
///
/// The buffer is cleared and resized to `next_pow2(signal.len())`; after the
/// first call at a given length no further allocation occurs.
pub fn rfft_into(signal: &[f64], buf: &mut Vec<Complex>) {
    let n = next_pow2(signal.len());
    buf.clear();
    buf.resize(n, Complex::ZERO);
    for (slot, &x) in buf.iter_mut().zip(signal) {
        *slot = Complex::new(x, 0.0);
    }
    fft(buf);
}

/// Magnitude spectrum of a real signal: bins `0..=n/2` with their center
/// frequencies, for a given sample rate.
///
/// Returns `(frequencies_hz, magnitudes)`.
pub fn magnitude_spectrum(signal: &[f64], sample_rate: f64) -> (Vec<f64>, Vec<f64>) {
    let mut freqs = Vec::new();
    let mut mags = Vec::new();
    let mut work = Vec::new();
    magnitude_spectrum_into(signal, sample_rate, &mut work, &mut freqs, &mut mags);
    (freqs, mags)
}

/// [`magnitude_spectrum`] into caller-owned buffers, reusing allocations.
///
/// `work` is the complex FFT scratch; `freqs` and `mags` receive bins
/// `0..=n/2`. All three are cleared and refilled.
pub fn magnitude_spectrum_into(
    signal: &[f64],
    sample_rate: f64,
    work: &mut Vec<Complex>,
    freqs: &mut Vec<f64>,
    mags: &mut Vec<f64>,
) {
    rfft_into(signal, work);
    let n = work.len();
    let half = n / 2 + 1;
    freqs.clear();
    freqs.extend((0..half).map(|k| k as f64 * sample_rate / n as f64));
    mags.clear();
    mags.extend(work[..half].iter().map(|z| z.abs()));
}

/// Reference O(n²) DFT used to validate the FFT in tests.
pub fn naive_dft(signal: &[Complex]) -> Vec<Complex> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in signal.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
                acc += x * Complex::from_polar(1.0, ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let expected = naive_dft(&signal);
        let mut got = signal.clone();
        fft(&mut got);
        for (e, g) in expected.iter().zip(&got) {
            assert!((e.re - g.re).abs() < 1e-9 && (e.im - g.im).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_is_bit_identical_to_fft() {
        for &n in &[1usize, 2, 4, 8, 64, 512, 1024] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.317).sin(), (i as f64 * 0.713).cos()))
                .collect();
            let mut reference = signal.clone();
            fft(&mut reference);
            let plan = FftPlan::new(n);
            assert_eq!(plan.len(), n);
            let mut planned = signal;
            plan.forward(&mut planned);
            for (k, (r, p)) in reference.iter().zip(&planned).enumerate() {
                assert_eq!(
                    (r.re.to_bits(), r.im.to_bits()),
                    (p.re.to_bits(), p.im.to_bits()),
                    "n={n} bin {k}: plan diverged from fft ({r:?} vs {p:?})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match planned FFT size")]
    fn plan_rejects_mismatched_buffer() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn round_trip() {
        let orig: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let mut buf = orig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in orig.iter().zip(&buf) {
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 256;
        let fs = 1024.0;
        let f = 64.0; // exactly bin 16
        let signal: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
            .collect();
        let (freqs, mags) = magnitude_spectrum(&signal, fs);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(freqs[peak], 64.0);
        // Tone amplitude 1 over n samples → bin magnitude ≈ n/2.
        assert!((mags[peak] - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn parseval_energy_conservation() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = rfft(&signal);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let mut buf = vec![Complex::ZERO; 3];
        fft(&mut buf);
    }

    #[test]
    fn real_plan_matches_rfft_spectrum() {
        for &n in &[2usize, 4, 8, 64, 256, 512, 1024] {
            let signal: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.173).sin() + 0.4 * (i as f64 * 0.059).cos())
                .collect();
            let full = rfft(&signal);
            let plan = RealFftPlan::new(n);
            assert_eq!(plan.len(), n);
            assert_eq!(plan.packed_len(), n / 2);
            let mut packed = Vec::new();
            let mut half = Vec::new();
            plan.forward_into(&signal, &mut packed, &mut half);
            assert_eq!(half.len(), n / 2 + 1);
            let scale: f64 = full.iter().map(|z| z.abs()).fold(1.0, f64::max);
            for (k, (h, f)) in half.iter().zip(&full).enumerate() {
                assert!(
                    (h.re - f.re).abs() < 1e-10 * scale && (h.im - f.im).abs() < 1e-10 * scale,
                    "n={n} bin {k}: {h:?} vs {f:?}"
                );
            }
        }
    }

    #[test]
    fn real_plan_handles_zero_padded_and_odd_signals() {
        // A 400-sample frame in a 512-point transform (the MFCC geometry)
        // and an odd-length signal exercising the lone-tail pack path.
        for &len in &[400usize, 399, 1, 0] {
            let n = 512;
            let signal: Vec<f64> = (0..len)
                .map(|i| ((i * 37 % 101) as f64) * 0.02 - 1.0)
                .collect();
            let full = rfft(&{
                let mut padded = signal.clone();
                padded.resize(n, 0.0);
                padded
            });
            let plan = RealFftPlan::new(n);
            let mut packed = Vec::new();
            let mut half = Vec::new();
            plan.forward_into(&signal, &mut packed, &mut half);
            for (k, (h, f)) in half.iter().zip(&full).enumerate() {
                assert!(
                    (h.re - f.re).abs() < 1e-9 && (h.im - f.im).abs() < 1e-9,
                    "len={len} bin {k}: {h:?} vs {f:?}"
                );
            }
        }
    }

    #[test]
    fn real_plan_power_matches_spectrum() {
        let n = 256;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let plan = RealFftPlan::new(n);
        let mut packed = Vec::new();
        let mut spec = Vec::new();
        plan.forward_into(&signal, &mut packed, &mut spec);
        let scale = 1.0 / 200.0;
        plan.pack_into(&signal, &mut packed);
        let mut power = Vec::new();
        plan.power_from_packed(&mut packed, scale, &mut power);
        assert_eq!(power.len(), spec.len());
        for (k, (p, z)) in power.iter().zip(&spec).enumerate() {
            assert!(
                (p - z.norm_sqr() * scale).abs() < 1e-9 * (1.0 + z.norm_sqr() * scale),
                "bin {k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two >= 2")]
    fn real_plan_rejects_length_one() {
        RealFftPlan::new(1);
    }

    #[test]
    #[should_panic(expected = "exceeds planned real-FFT size")]
    fn real_plan_rejects_oversized_signal() {
        let plan = RealFftPlan::new(8);
        let mut packed = Vec::new();
        let mut out = Vec::new();
        plan.forward_into(&[0.0; 9], &mut packed, &mut out);
    }

    #[test]
    fn dc_signal_concentrates_at_bin_zero() {
        let mut buf = vec![Complex::ONE; 16];
        fft(&mut buf);
        assert!((buf[0].re - 16.0).abs() < 1e-12);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-10);
        }
    }
}

//! A minimal complex number type for the FFT kernels.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Complex number with `f64` parts.
///
/// # Example
///
/// ```
/// use magshield_dsp::complex::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}` — a unit phasor at angle `theta`.
    #[inline]
    pub fn from_polar(magnitude: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(magnitude * c, magnitude * s)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, FRAC_PI_2);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-12);
        assert!(z.re.abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex::from_polar(1.0, 0.7);
        assert!((z.conj().arg() + 0.7).abs() < 1e-12);
    }

    #[test]
    fn arg_quadrants() {
        assert_eq!(Complex::new(1.0, 0.0).arg(), 0.0);
        assert!((Complex::new(-1.0, 0.0).arg() - PI).abs() < 1e-12);
        assert!((Complex::new(0.0, -1.0).arg() + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn norm_sqr_matches_abs() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }
}

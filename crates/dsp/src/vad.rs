//! Energy-based voice activity detection.
//!
//! The verification pipeline only scores speech frames; silence before and
//! after the passphrase is trimmed with a simple adaptive energy VAD.

/// Configuration for the energy VAD.
#[derive(Debug, Clone, Copy)]
pub struct VadConfig {
    /// Frame length in seconds.
    pub frame_s: f64,
    /// Ratio above the noise floor (in dB) to call a frame speech.
    pub threshold_db: f64,
    /// Hangover frames kept after the last active frame.
    pub hangover: usize,
}

impl Default for VadConfig {
    fn default() -> Self {
        Self {
            frame_s: 0.02,
            threshold_db: 9.0,
            hangover: 3,
        }
    }
}

/// Per-frame speech/non-speech decisions.
#[derive(Debug, Clone)]
pub struct VadResult {
    /// Frame length in samples used for the decisions.
    pub frame_len: usize,
    /// One flag per frame.
    pub active: Vec<bool>,
}

impl VadResult {
    /// Fraction of frames marked active.
    pub fn activity_ratio(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        self.active.iter().filter(|&&a| a).count() as f64 / self.active.len() as f64
    }
}

/// Runs energy VAD over `signal`.
///
/// The noise floor is the 10th percentile of frame energies; frames more
/// than `threshold_db` above it are speech, with hangover smoothing.
pub fn detect(signal: &[f64], sample_rate: f64, config: VadConfig) -> VadResult {
    let frame_len = ((sample_rate * config.frame_s).round() as usize).max(1);
    let energies: Vec<f64> = signal
        .chunks(frame_len)
        .map(|c| c.iter().map(|x| x * x).sum::<f64>() / c.len() as f64)
        .collect();
    if energies.is_empty() {
        return VadResult {
            frame_len,
            active: Vec::new(),
        };
    }
    let mut sorted = energies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let floor = sorted[sorted.len() / 10].max(1e-12);
    let thresh = floor * 10f64.powf(config.threshold_db / 10.0);

    let mut active: Vec<bool> = energies.iter().map(|&e| e > thresh).collect();
    // Hangover: extend activity after each active frame.
    let mut hang = 0usize;
    for a in active.iter_mut() {
        if *a {
            hang = config.hangover;
        } else if hang > 0 {
            *a = true;
            hang -= 1;
        }
    }
    VadResult { frame_len, active }
}

/// Returns the concatenated speech-only samples of `signal`.
pub fn trim_silence(signal: &[f64], sample_rate: f64, config: VadConfig) -> Vec<f64> {
    let mut out = Vec::new();
    trim_silence_into(
        signal,
        sample_rate,
        config,
        &mut VadScratch::default(),
        &mut out,
    );
    out
}

/// Reusable buffers for the allocation-free VAD path.
#[derive(Debug, Clone, Default)]
pub struct VadScratch {
    energies: Vec<f64>,
    sorted: Vec<f64>,
    active: Vec<bool>,
}

impl VadScratch {
    /// Bytes currently reserved across the scratch buffers (capacities).
    pub fn footprint_bytes(&self) -> usize {
        (self.energies.capacity() + self.sorted.capacity()) * std::mem::size_of::<f64>()
            + self.active.capacity()
    }
}

/// [`trim_silence`] into a caller-owned buffer through reusable scratch.
///
/// Decision-identical to [`detect`] + [`trim_silence`]: the unstable sort
/// used for the noise-floor percentile selects the same order statistic as
/// the reference's stable sort. Performs no allocations once the scratch and
/// output buffers have reached their high-water marks.
pub fn trim_silence_into(
    signal: &[f64],
    sample_rate: f64,
    config: VadConfig,
    scratch: &mut VadScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let frame_len = ((sample_rate * config.frame_s).round() as usize).max(1);
    scratch.energies.clear();
    scratch.energies.extend(
        signal
            .chunks(frame_len)
            .map(|c| c.iter().map(|x| x * x).sum::<f64>() / c.len() as f64),
    );
    if scratch.energies.is_empty() {
        return;
    }
    scratch.sorted.clear();
    scratch.sorted.extend_from_slice(&scratch.energies);
    scratch
        .sorted
        .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let floor = scratch.sorted[scratch.sorted.len() / 10].max(1e-12);
    let thresh = floor * 10f64.powf(config.threshold_db / 10.0);

    scratch.active.clear();
    scratch
        .active
        .extend(scratch.energies.iter().map(|&e| e > thresh));
    let mut hang = 0usize;
    for a in scratch.active.iter_mut() {
        if *a {
            hang = config.hangover;
        } else if hang > 0 {
            *a = true;
            hang -= 1;
        }
    }
    for (i, chunk) in signal.chunks(frame_len).enumerate() {
        if scratch.active[i] {
            out.extend_from_slice(chunk);
        }
    }
}

/// Chunk-fed energy VAD that carries frame-boundary state across chunk
/// seams.
///
/// Frame energies are accumulated incrementally: samples arriving mid-frame
/// are buffered until the frame completes, so the energy sequence is
/// bit-identical to [`detect`] run over the concatenated signal regardless
/// of how the stream was chunked. The noise floor is a whole-utterance
/// percentile in the one-shot path, so activity decisions are only final at
/// [`StreamingVad::finalize`]; [`StreamingVad::snapshot`] recomputes the
/// floor over the prefix seen so far for provisional mid-stream decisions.
#[derive(Debug, Clone)]
pub struct StreamingVad {
    config: VadConfig,
    frame_len: usize,
    /// Samples of the current incomplete frame.
    remainder: Vec<f64>,
    /// Energies of completed frames, identical to the one-shot prefix.
    energies: Vec<f64>,
}

impl StreamingVad {
    /// Opens a chunk-fed VAD for a stream at `sample_rate`.
    pub fn new(sample_rate: f64, config: VadConfig) -> Self {
        Self {
            config,
            frame_len: ((sample_rate * config.frame_s).round() as usize).max(1),
            remainder: Vec::new(),
            energies: Vec::new(),
        }
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Number of completed frames so far.
    pub fn frames(&self) -> usize {
        self.energies.len()
    }

    /// Ingests the next chunk of samples.
    pub fn push(&mut self, chunk: &[f64]) {
        let mut rest = chunk;
        if !self.remainder.is_empty() {
            let need = self.frame_len - self.remainder.len();
            let take = need.min(rest.len());
            self.remainder.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.remainder.len() == self.frame_len {
                let e =
                    self.remainder.iter().map(|x| x * x).sum::<f64>() / self.remainder.len() as f64;
                self.energies.push(e);
                self.remainder.clear();
            }
        }
        let mut frames = rest.chunks_exact(self.frame_len);
        for f in &mut frames {
            self.energies
                .push(f.iter().map(|x| x * x).sum::<f64>() / f.len() as f64);
        }
        self.remainder.extend_from_slice(frames.remainder());
    }

    /// Provisional decisions over the prefix seen so far.
    ///
    /// The noise-floor percentile is computed over only the frames ingested
    /// to date, so flags may differ from the eventual one-shot decisions;
    /// use [`Self::finalize`] for the exact result.
    pub fn snapshot(&self) -> VadResult {
        self.decide(&self.energies)
    }

    /// Consumes the stream (flushing any trailing partial frame, exactly as
    /// [`detect`]'s final short chunk) and returns the one-shot result.
    pub fn finalize(mut self) -> VadResult {
        if !self.remainder.is_empty() {
            let e = self.remainder.iter().map(|x| x * x).sum::<f64>() / self.remainder.len() as f64;
            self.energies.push(e);
        }
        self.decide(&self.energies)
    }

    fn decide(&self, energies: &[f64]) -> VadResult {
        if energies.is_empty() {
            return VadResult {
                frame_len: self.frame_len,
                active: Vec::new(),
            };
        }
        let mut sorted = energies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let floor = sorted[sorted.len() / 10].max(1e-12);
        let thresh = floor * 10f64.powf(self.config.threshold_db / 10.0);
        let mut active: Vec<bool> = energies.iter().map(|&e| e > thresh).collect();
        let mut hang = 0usize;
        for a in active.iter_mut() {
            if *a {
                hang = self.config.hangover;
            } else if hang > 0 {
                *a = true;
                hang -= 1;
            }
        }
        VadResult {
            frame_len: self.frame_len,
            active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speech_like(fs: f64) -> Vec<f64> {
        // 0.5 s silence, 1 s "speech" (loud tone), 0.5 s silence.
        let mut v = vec![0.0; (0.5 * fs) as usize];
        for i in 0..(fs as usize) {
            v.push((std::f64::consts::TAU * 220.0 * i as f64 / fs).sin());
        }
        v.extend(vec![0.0; (0.5 * fs) as usize]);
        // Add a tiny noise floor so percentile logic has structure.
        for (i, x) in v.iter_mut().enumerate() {
            *x += 1e-4 * ((i * 2654435761) % 1000) as f64 / 1000.0;
        }
        v
    }

    #[test]
    fn detects_speech_segment() {
        let fs = 8000.0;
        let sig = speech_like(fs);
        let vad = detect(&sig, fs, VadConfig::default());
        let ratio = vad.activity_ratio();
        assert!(
            (0.45..0.65).contains(&ratio),
            "expected ~50% active, got {ratio}"
        );
    }

    #[test]
    fn trim_keeps_loud_part() {
        let fs = 8000.0;
        let sig = speech_like(fs);
        let trimmed = trim_silence(&sig, fs, VadConfig::default());
        assert!(trimmed.len() < sig.len());
        assert!(trimmed.len() > (0.8 * fs) as usize);
        let rms = (trimmed.iter().map(|x| x * x).sum::<f64>() / trimmed.len() as f64).sqrt();
        assert!(rms > 0.5);
    }

    #[test]
    fn scratch_trim_matches_detect_path() {
        let fs = 8000.0;
        let sig = speech_like(fs);
        let vad = detect(&sig, fs, VadConfig::default());
        let mut expected = Vec::new();
        for (i, chunk) in sig.chunks(vad.frame_len).enumerate() {
            if vad.active[i] {
                expected.extend_from_slice(chunk);
            }
        }
        let mut scratch = VadScratch::default();
        let mut out = Vec::new();
        trim_silence_into(&sig, fs, VadConfig::default(), &mut scratch, &mut out);
        assert_eq!(out, expected);
        let footprint = scratch.footprint_bytes();
        trim_silence_into(&sig, fs, VadConfig::default(), &mut scratch, &mut out);
        assert_eq!(scratch.footprint_bytes(), footprint, "scratch regrew");
    }

    #[test]
    fn silence_yields_no_activity() {
        let fs = 8000.0;
        let sig = vec![0.0; 8000];
        let vad = detect(&sig, fs, VadConfig::default());
        assert_eq!(vad.activity_ratio(), 0.0);
    }

    #[test]
    fn empty_signal() {
        let vad = detect(&[], 8000.0, VadConfig::default());
        assert_eq!(vad.active.len(), 0);
        assert_eq!(vad.activity_ratio(), 0.0);
    }

    #[test]
    fn streaming_vad_matches_one_shot_across_chunkings() {
        let fs = 8000.0;
        let sig = speech_like(fs);
        let oracle = detect(&sig, fs, VadConfig::default());
        for chunk in [1usize, 7, 160, 161, 4096, sig.len()] {
            let mut sv = StreamingVad::new(fs, VadConfig::default());
            for c in sig.chunks(chunk) {
                sv.push(c);
            }
            let got = sv.finalize();
            assert_eq!(got.frame_len, oracle.frame_len, "chunk {chunk}");
            assert_eq!(got.active, oracle.active, "chunk {chunk}");
        }
    }

    #[test]
    fn streaming_vad_snapshot_is_prefix_exact_on_energies() {
        // The snapshot over a prefix equals detect() on that prefix when the
        // prefix is whole frames — the energy sequence is seam-independent.
        let fs = 8000.0;
        let sig = speech_like(fs);
        let mut sv = StreamingVad::new(fs, VadConfig::default());
        let cut = sv.frame_len() * 40;
        sv.push(&sig[..cut]);
        let snap = sv.snapshot();
        let oracle = detect(&sig[..cut], fs, VadConfig::default());
        assert_eq!(snap.active, oracle.active);
    }

    #[test]
    fn streaming_vad_empty_finalize() {
        let sv = StreamingVad::new(8000.0, VadConfig::default());
        let r = sv.finalize();
        assert!(r.active.is_empty());
    }

    #[test]
    fn hangover_bridges_short_gaps() {
        let fs = 1000.0;
        let cfg = VadConfig {
            frame_s: 0.01,
            threshold_db: 6.0,
            hangover: 2,
        };
        // Loud, 1-frame gap, loud.
        let mut sig = Vec::new();
        sig.extend(std::iter::repeat_n(1.0, 30));
        sig.extend(std::iter::repeat_n(0.0, 10));
        sig.extend(std::iter::repeat_n(1.0, 30));
        let vad = detect(&sig, fs, cfg);
        assert!(vad.active.iter().all(|&a| a), "{:?}", vad.active);
    }
}

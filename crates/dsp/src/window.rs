//! Analysis windows for framed spectral processing.

use serde::{Deserialize, Serialize};

/// Supported analysis window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WindowKind {
    /// All-ones window.
    Rectangular,
    /// Hann (raised cosine); the default for STFT work.
    #[default]
    Hann,
    /// Hamming — the classic speech-analysis window, used for MFCC frames.
    Hamming,
    /// Blackman — higher sidelobe rejection for pilot-tone work.
    Blackman,
}

impl WindowKind {
    /// Evaluates the window at sample `i` of `n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = std::f64::consts::TAU * i as f64 / (n - 1) as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 * (1.0 - x.cos()),
            WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
            WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Generates the full window of length `n`.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Sum of coefficients (for amplitude normalization).
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.generate(n).iter().sum::<f64>()
    }
}

/// Multiplies `frame` by the window in place.
///
/// # Panics
///
/// Panics if `window.len() != frame.len()`.
pub fn apply_window(frame: &mut [f64], window: &[f64]) {
    assert_eq!(frame.len(), window.len(), "window/frame length mismatch");
    for (x, w) in frame.iter_mut().zip(window) {
        *x *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_and_center() {
        let w = WindowKind::Hann.generate(101);
        assert!(w[0].abs() < 1e-12);
        assert!(w[100].abs() < 1e-12);
        assert!((w[50] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = WindowKind::Hamming.generate(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative() {
        for c in WindowKind::Blackman.generate(64) {
            assert!(c >= -1e-12);
        }
    }

    #[test]
    fn rectangular_is_ones() {
        assert!(WindowKind::Rectangular
            .generate(7)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(WindowKind::Hann.generate(0).len(), 0);
        assert_eq!(WindowKind::Hann.generate(1), vec![1.0]);
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.generate(33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} not symmetric"
                );
            }
        }
    }

    #[test]
    fn apply_window_multiplies() {
        let mut frame = vec![2.0; 4];
        apply_window(&mut frame, &[0.0, 0.5, 1.0, 0.25]);
        assert_eq!(frame, vec![0.0, 1.0, 2.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_window_length_checked() {
        apply_window(&mut [1.0, 2.0], &[1.0]);
    }
}

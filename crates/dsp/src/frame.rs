//! Flat frame-matrix storage and reusable DSP scratch buffers.
//!
//! The reference pipeline shuttles features around as `Vec<Vec<f64>>` — one
//! heap allocation per frame plus pointer-chasing on every access. The fast
//! path stores an utterance's frames in a single contiguous buffer
//! ([`FrameMatrix`]) and threads a caller-owned [`ScratchPad`] through the
//! extraction kernels so the steady state performs no per-frame heap
//! allocations at all: every buffer grows to its high-water mark on the
//! first call and is reused afterwards.
//!
//! [`FrameSource`] abstracts over both layouts so numeric consumers (the
//! GMM scorer, ISV supervectors, …) accept either without conversion.

use crate::complex::Complex;

/// A dense row-major matrix of feature frames in one contiguous buffer.
///
/// `rows` frames of `cols` values each. Row boundaries are implicit
/// (`data[r * cols..(r + 1) * cols]`), so clearing and refilling the matrix
/// reuses the existing allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameMatrix {
    data: Vec<f64>,
    cols: usize,
}

impl FrameMatrix {
    /// An empty matrix whose rows will have `cols` values.
    pub fn new(cols: usize) -> Self {
        Self {
            data: Vec::new(),
            cols,
        }
    }

    /// An empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(cols: usize, rows: usize) -> Self {
        Self {
            data: Vec::with_capacity(cols * rows),
            cols,
        }
    }

    /// Builds a matrix by copying a ragged-capable reference layout.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Self::with_capacity(cols, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Number of frames.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Values per frame.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix holds no frames.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops all rows and re-targets the row width, keeping the allocation.
    pub fn reset(&mut self, cols: usize) {
        self.data.clear();
        self.cols = cols;
    }

    /// Copies one frame onto the end of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends a zero-filled frame and returns it for in-place writing.
    pub fn alloc_row(&mut self) -> &mut [f64] {
        let start = self.data.len();
        self.data.resize(start + self.cols, 0.0);
        &mut self.data[start..]
    }

    /// Borrows frame `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows frame `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over frames as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Iterates over frames as mutable slices.
    pub fn iter_rows_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_exact_mut(self.cols.max(1))
    }

    /// The whole matrix as one flat slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole matrix as one flat mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Converts back to the reference `Vec<Vec<f64>>` layout (allocates).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }

    /// Appends every row of `other` (widths must match unless empty).
    ///
    /// # Panics
    ///
    /// Panics if both matrices are non-empty with different widths.
    pub fn extend_rows(&mut self, other: &FrameMatrix) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.cols = other.cols;
        }
        assert_eq!(self.cols, other.cols, "row width mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Bytes currently reserved by the backing buffer (capacity, not len).
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

/// Read access to a sequence of equal-width feature frames, independent of
/// storage layout.
///
/// Implemented for [`FrameMatrix`] (flat fast path) and `[Vec<f64>]` /
/// `Vec<Vec<f64>>` (reference layout), so numeric consumers accept either.
pub trait FrameSource {
    /// Number of frames.
    fn num_frames(&self) -> usize;
    /// Borrows frame `i`.
    fn frame(&self, i: usize) -> &[f64];
    /// Values per frame (0 when empty).
    fn frame_dim(&self) -> usize {
        if self.num_frames() == 0 {
            0
        } else {
            self.frame(0).len()
        }
    }
}

/// [`FrameSource`] with mutable frame access (for in-place compensation).
pub trait FrameSourceMut: FrameSource {
    /// Mutably borrows frame `i`.
    fn frame_mut(&mut self, i: usize) -> &mut [f64];
}

impl FrameSource for FrameMatrix {
    #[inline]
    fn num_frames(&self) -> usize {
        self.rows()
    }
    #[inline]
    fn frame(&self, i: usize) -> &[f64] {
        self.row(i)
    }
    fn frame_dim(&self) -> usize {
        self.cols
    }
}

impl FrameSourceMut for FrameMatrix {
    fn frame_mut(&mut self, i: usize) -> &mut [f64] {
        self.row_mut(i)
    }
}

impl FrameSource for [Vec<f64>] {
    fn num_frames(&self) -> usize {
        self.len()
    }
    fn frame(&self, i: usize) -> &[f64] {
        &self[i]
    }
}

impl FrameSourceMut for [Vec<f64>] {
    fn frame_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self[i]
    }
}

impl FrameSource for Vec<Vec<f64>> {
    fn num_frames(&self) -> usize {
        self.len()
    }
    fn frame(&self, i: usize) -> &[f64] {
        &self[i]
    }
}

impl FrameSourceMut for Vec<Vec<f64>> {
    fn frame_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self[i]
    }
}

/// Reusable work buffers for the frame-spectral kernels.
///
/// One pad serves any number of extraction calls; each buffer grows to the
/// largest size ever needed and is then reused without reallocating. Batch
/// workers keep one pad per thread.
#[derive(Debug, Clone, Default)]
pub struct ScratchPad {
    /// Complex FFT work buffer (zero-padded frame, transformed in place).
    pub fft: Vec<Complex>,
    /// One-sided power spectrum of the current frame.
    pub power: Vec<f64>,
    /// Log-mel energies of the current frame.
    pub mel: Vec<f64>,
    /// Pre-emphasized copy of the whole input signal.
    pub emphasized: Vec<f64>,
    /// Even/odd-packed half-length complex buffer for the fused real-FFT
    /// front end ([`crate::fft::RealFftPlan`]).
    pub packed: Vec<Complex>,
}

impl ScratchPad {
    /// A fresh pad with no reserved memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across all buffers (capacities).
    ///
    /// In steady state this is constant; growth between two calls measures
    /// exactly the heap the fast path had to acquire, which the pipeline
    /// reports as `dsp.extract.alloc_bytes`.
    pub fn footprint_bytes(&self) -> usize {
        (self.fft.capacity() + self.packed.capacity()) * std::mem::size_of::<Complex>()
            + (self.power.capacity() + self.mel.capacity() + self.emphasized.capacity())
                * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FrameMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn round_trips_reference_layout() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FrameMatrix::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.num_frames(), 3);
        assert_eq!(m.frame(2), &[5.0, 6.0]);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut m = FrameMatrix::with_capacity(4, 8);
        for _ in 0..8 {
            m.push_row(&[0.0; 4]);
        }
        let cap = m.capacity_bytes();
        m.reset(4);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.capacity_bytes(), cap);
    }

    #[test]
    fn alloc_row_is_writable() {
        let mut m = FrameMatrix::new(2);
        m.alloc_row().copy_from_slice(&[7.0, 8.0]);
        assert_eq!(m.row(0), &[7.0, 8.0]);
    }

    #[test]
    fn frame_source_over_both_layouts() {
        fn total<F: FrameSource + ?Sized>(f: &F) -> f64 {
            (0..f.num_frames())
                .map(|i| f.frame(i).iter().sum::<f64>())
                .sum()
        }
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = FrameMatrix::from_rows(&rows);
        assert_eq!(total(&rows), total(&m));
        assert_eq!(rows.frame_dim(), m.frame_dim());
    }

    #[test]
    fn extend_rows_adopts_width() {
        let mut a = FrameMatrix::default();
        let b = FrameMatrix::from_rows(&[vec![1.0, 2.0]]);
        a.extend_rows(&b);
        a.extend_rows(&b);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut m = FrameMatrix::new(2);
        m.push_row(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn scratch_footprint_tracks_capacity() {
        let mut pad = ScratchPad::new();
        assert_eq!(pad.footprint_bytes(), 0);
        pad.power.resize(128, 0.0);
        assert!(pad.footprint_bytes() >= 128 * 8);
    }
}

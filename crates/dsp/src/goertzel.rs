//! Goertzel algorithm: efficient single-bin DFT.
//!
//! The phase-ranging stack (trajectory crate) needs the complex response at
//! exactly the pilot frequency for every short frame; Goertzel computes one
//! bin in O(n) without a full FFT.

use crate::complex::Complex;

/// Complex DFT coefficient of `signal` at `freq_hz` (not normalized).
///
/// Equivalent to `sum_j signal[j] * e^{-2πi·f·j/fs}`.
pub fn goertzel(signal: &[f64], freq_hz: f64, sample_rate: f64) -> Complex {
    let omega = std::f64::consts::TAU * freq_hz / sample_rate;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // Standard complex Goertzel finalization.
    let re = s1 * omega.cos() - s2;
    let im = s1 * omega.sin();
    Complex::new(re, -im).conj()
}

/// Power of `signal` at `freq_hz` (squared magnitude of the Goertzel bin,
/// normalized by `n²/4` so a unit-amplitude tone reads 1.0).
pub fn tone_power(signal: &[f64], freq_hz: f64, sample_rate: f64) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let z = goertzel(signal, freq_hz, sample_rate);
    let n = signal.len() as f64;
    z.norm_sqr() / (n * n / 4.0)
}

/// Amplitude of a tone at `freq_hz` (unit-amplitude tone reads ≈ 1.0).
pub fn tone_amplitude(signal: &[f64], freq_hz: f64, sample_rate: f64) -> f64 {
    tone_power(signal, freq_hz, sample_rate).sqrt()
}

/// Phase (radians) of the tone at `freq_hz` relative to a cosine at the
/// start of the frame.
pub fn tone_phase(signal: &[f64], freq_hz: f64, sample_rate: f64) -> f64 {
    goertzel(signal, freq_hz, sample_rate).arg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::rfft;

    fn cosine(freq: f64, fs: f64, n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / fs + phase).cos())
            .collect()
    }

    #[test]
    fn matches_fft_bin() {
        let fs = 1024.0;
        let n = 256;
        let freq = 128.0; // bin 32
        let sig = cosine(freq, fs, n, 0.4);
        let g = goertzel(&sig, freq, fs);
        let spec = rfft(&sig);
        let bin = spec[32];
        assert!((g.re - bin.re).abs() < 1e-6, "re {} vs {}", g.re, bin.re);
        assert!((g.im - bin.im).abs() < 1e-6, "im {} vs {}", g.im, bin.im);
    }

    #[test]
    fn unit_tone_amplitude_reads_one() {
        let fs = 48_000.0;
        let sig = cosine(18_000.0, fs, 4800, 0.0);
        let a = tone_amplitude(&sig, 18_000.0, fs);
        assert!((a - 1.0).abs() < 0.01, "amplitude {a}");
    }

    #[test]
    fn phase_recovery() {
        let fs = 48_000.0;
        for &phi in &[0.0, 0.5, -1.2, 2.8] {
            // Integer number of cycles so leakage doesn't bias the phase.
            let sig = cosine(12_000.0, fs, 480, phi);
            let p = tone_phase(&sig, 12_000.0, fs);
            assert!((p - phi).abs() < 1e-6, "expected {phi}, got {p}");
        }
    }

    #[test]
    fn off_frequency_rejection() {
        let fs = 48_000.0;
        let sig = cosine(18_000.0, fs, 4800, 0.0);
        let on = tone_power(&sig, 18_000.0, fs);
        let off = tone_power(&sig, 15_000.0, fs);
        assert!(on > off * 1e4);
    }

    #[test]
    fn empty_signal_power_is_zero() {
        assert_eq!(tone_power(&[], 1000.0, 8000.0), 0.0);
    }
}

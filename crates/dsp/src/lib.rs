#![warn(missing_docs)]

//! # magshield-dsp
//!
//! Signal-processing kernels for the magshield workspace, implemented from
//! scratch (no external DSP dependencies):
//!
//! * [`complex`] — a minimal complex number type;
//! * [`fft`] — iterative radix-2 FFT/IFFT and a real-signal spectrum helper;
//! * [`frame`] — flat [`frame::FrameMatrix`] feature storage plus the
//!   reusable [`frame::ScratchPad`] behind the zero-allocation fast path;
//! * [`window`] — Hann / Hamming / Blackman / rectangular analysis windows;
//! * [`stft`] — short-time Fourier transform and spectrogram (Fig. 6 of the
//!   paper shows the received pilot-tone spectrograph);
//! * [`goertzel`] — single-bin DFT for pilot-tone amplitude/phase tracking;
//! * [`filter`] — RBJ biquad filters, one-pole smoothers, moving averages;
//! * [`phase`] — frame-wise phase extraction and unwrapping, the primitive
//!   behind the paper's phase-based distance measurement (§IV-B1);
//! * [`mel`] — mel filterbank, DCT-II and MFCC extraction feeding the ASV
//!   stack;
//! * [`vad`] — energy-based voice activity detection;
//! * [`level`] — framed RMS / dB metering for sound-field features.
//!
//! All functions operate on `&[f64]` sample slices plus an explicit sample
//! rate, so the crate is independent of the simulation substrate.
//!
//! # Example
//!
//! ```
//! use magshield_dsp::fft::fft;
//! use magshield_dsp::complex::Complex;
//! let mut buf: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! fft(&mut buf);
//! // DC bin is the sum of the inputs.
//! assert!((buf[0].re - 28.0).abs() < 1e-9);
//! ```

pub mod complex;
pub mod fft;
pub mod filter;
pub mod frame;
pub mod goertzel;
pub mod level;
pub mod mel;
pub mod phase;
pub mod stft;
pub mod vad;
pub mod window;

pub use complex::Complex;
pub use frame::{FrameMatrix, FrameSource, FrameSourceMut, ScratchPad};
pub use mel::{MfccExtractor, StreamingMfcc};
pub use stft::Spectrogram;
pub use vad::StreamingVad;

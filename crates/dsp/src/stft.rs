//! Short-time Fourier transform and spectrogram.
//!
//! Fig. 6 of the paper shows the received spectrograph of the >16 kHz pilot
//! tone while the phone moves; [`Spectrogram`] regenerates that view, and
//! the trajectory stack consumes per-frame complex bins for phase ranging.

use crate::complex::Complex;
use crate::fft::{FftPlan, RealFftPlan};
use crate::frame::FrameMatrix;
use crate::window::WindowKind;

/// Configuration for STFT analysis.
#[derive(Debug, Clone, Copy)]
pub struct StftConfig {
    /// Samples per analysis frame (will be zero-padded to a power of two).
    pub frame_len: usize,
    /// Samples between frame starts.
    pub hop: usize,
    /// Analysis window.
    pub window: WindowKind,
}

impl Default for StftConfig {
    fn default() -> Self {
        Self {
            frame_len: 1024,
            hop: 256,
            window: WindowKind::Hann,
        }
    }
}

/// A time–frequency magnitude map of a real signal.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// Magnitudes: row `t`, column `k` is the magnitude of bin `k` at
    /// frame `t`, stored flat.
    frames: FrameMatrix,
    /// Center frequency of each bin, Hz.
    bin_freqs: Vec<f64>,
    /// Start time (s) of each frame.
    frame_times: Vec<f64>,
}

impl Spectrogram {
    /// Computes the spectrogram of `signal` at `sample_rate`.
    ///
    /// One complex buffer is reused across all frames, and magnitudes land
    /// in a single flat [`FrameMatrix`] — no per-frame allocations. The
    /// input is real, so each frame runs the fused half-size real-FFT path
    /// ([`RealFftPlan`]): windowing and even/odd packing are one pass, and
    /// the transform does half the butterfly work of the full-size FFT the
    /// previous implementation ran.
    ///
    /// # Panics
    ///
    /// Panics if `config.frame_len == 0` or `config.hop == 0`.
    pub fn compute(signal: &[f64], sample_rate: f64, config: StftConfig) -> Self {
        assert!(config.frame_len > 0, "frame_len must be positive");
        assert!(config.hop > 0, "hop must be positive");
        let nfft = config.frame_len.next_power_of_two().max(2);
        let half = nfft / 2 + 1;
        let win = config.window.generate(config.frame_len);
        let bin_freqs = (0..half)
            .map(|k| k as f64 * sample_rate / nfft as f64)
            .collect();
        let mut frames = FrameMatrix::new(half);
        let mut frame_times = Vec::new();
        let plan = RealFftPlan::new(nfft);
        let mut packed = vec![Complex::ZERO; plan.packed_len()];
        let mut spec = Vec::with_capacity(half);
        let mut start = 0;
        while start + config.frame_len <= signal.len() {
            let frame = &signal[start..start + config.frame_len];
            // Window + even/odd pack in one pass; zero the padded tail.
            for (j, slot) in packed[..config.frame_len / 2].iter_mut().enumerate() {
                let t = 2 * j;
                *slot = Complex::new(frame[t] * win[t], frame[t + 1] * win[t + 1]);
            }
            if config.frame_len % 2 == 1 {
                let t = config.frame_len - 1;
                packed[config.frame_len / 2] = Complex::new(frame[t] * win[t], 0.0);
            }
            for slot in packed[config.frame_len.div_ceil(2)..].iter_mut() {
                *slot = Complex::ZERO;
            }
            plan.spectrum_from_packed(&mut packed, &mut spec);
            let row = frames.alloc_row();
            for (slot, z) in row.iter_mut().zip(&spec) {
                *slot = z.abs();
            }
            frame_times.push(start as f64 / sample_rate);
            start += config.hop;
        }
        Self {
            frames,
            bin_freqs,
            frame_times,
        }
    }

    /// Number of analysis frames.
    pub fn num_frames(&self) -> usize {
        self.frames.rows()
    }

    /// Number of frequency bins per frame.
    pub fn num_bins(&self) -> usize {
        self.bin_freqs.len()
    }

    /// Bin center frequencies (Hz).
    pub fn bin_freqs(&self) -> &[f64] {
        &self.bin_freqs
    }

    /// Frame start times (s).
    pub fn frame_times(&self) -> &[f64] {
        &self.frame_times
    }

    /// Magnitude of bin `k` at frame `t`.
    pub fn magnitude(&self, t: usize, k: usize) -> f64 {
        self.frames.row(t)[k]
    }

    /// All magnitudes for frame `t`.
    pub fn frame(&self, t: usize) -> &[f64] {
        self.frames.row(t)
    }

    /// Index of the bin whose center frequency is closest to `freq_hz`.
    pub fn bin_of(&self, freq_hz: f64) -> usize {
        self.bin_freqs
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - freq_hz)
                    .abs()
                    .partial_cmp(&(b.1 - freq_hz).abs())
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Total energy in `[lo_hz, hi_hz]` for frame `t`.
    pub fn band_energy(&self, t: usize, lo_hz: f64, hi_hz: f64) -> f64 {
        self.bin_freqs
            .iter()
            .zip(self.frames.row(t))
            .filter(|(f, _)| **f >= lo_hz && **f <= hi_hz)
            .map(|(_, m)| m * m)
            .sum()
    }

    /// The per-frame trace of a single bin's magnitude over time — the view
    /// Fig. 6 plots for the pilot tone.
    pub fn bin_trace(&self, freq_hz: f64) -> Vec<f64> {
        let k = self.bin_of(freq_hz);
        self.frames.iter_rows().map(|f| f[k]).collect()
    }
}

/// Raw STFT: windowed, zero-padded complex frames.
///
/// # Panics
///
/// Panics if `config.frame_len == 0` or `config.hop == 0`.
pub fn stft(signal: &[f64], config: StftConfig) -> Vec<Vec<Complex>> {
    assert!(config.frame_len > 0, "frame_len must be positive");
    assert!(config.hop > 0, "hop must be positive");
    let nfft = config.frame_len.next_power_of_two();
    let win = config.window.generate(config.frame_len);
    let mut out = Vec::new();
    let plan = FftPlan::new(nfft);
    let mut start = 0;
    while start + config.frame_len <= signal.len() {
        let mut buf = vec![Complex::ZERO; nfft];
        for i in 0..config.frame_len {
            buf[i] = Complex::new(signal[start + i] * win[i], 0.0);
        }
        plan.forward(&mut buf);
        out.push(buf);
        start += config.hop;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn tone_energy_concentrates_in_bin() {
        let fs = 8000.0;
        let sig = tone(1000.0, fs, 4096);
        let sg = Spectrogram::compute(
            &sig,
            fs,
            StftConfig {
                frame_len: 512,
                hop: 256,
                window: WindowKind::Hann,
            },
        );
        assert!(sg.num_frames() > 10);
        let k = sg.bin_of(1000.0);
        for t in 0..sg.num_frames() {
            let peak = (0..sg.num_bins())
                .max_by(|&a, &b| sg.magnitude(t, a).partial_cmp(&sg.magnitude(t, b)).unwrap())
                .unwrap();
            assert!((peak as i64 - k as i64).abs() <= 1);
        }
    }

    #[test]
    fn band_energy_selects_band() {
        let fs = 8000.0;
        let mut sig = tone(500.0, fs, 2048);
        let hi = tone(3000.0, fs, 2048);
        for (a, b) in sig.iter_mut().zip(&hi) {
            *a += 0.1 * b;
        }
        let sg = Spectrogram::compute(&sig, fs, StftConfig::default());
        let low = sg.band_energy(0, 400.0, 600.0);
        let high = sg.band_energy(0, 2900.0, 3100.0);
        assert!(low > high * 10.0);
    }

    #[test]
    fn spectrogram_matches_full_fft_magnitudes() {
        // `stft` still runs the full-size complex FFT; the spectrogram's
        // half-size real path must agree to rounding error, including on
        // odd frame lengths (lone-tail packing).
        let fs = 8000.0;
        let sig: Vec<f64> = (0..4096)
            .map(|i| (i as f64 * 0.11).sin() + 0.2 * (i as f64 * 0.047).cos())
            .collect();
        for frame_len in [512usize, 100, 99] {
            let cfg = StftConfig {
                frame_len,
                hop: 64,
                window: WindowKind::Hann,
            };
            let sg = Spectrogram::compute(&sig, fs, cfg);
            let full = stft(&sig, cfg);
            assert_eq!(sg.num_frames(), full.len());
            for (t, frame) in full.iter().enumerate() {
                for (k, bin) in frame.iter().enumerate().take(sg.num_bins()) {
                    let expect = bin.abs();
                    assert!(
                        (sg.magnitude(t, k) - expect).abs() < 1e-9 * (1.0 + expect),
                        "frame_len {frame_len} t={t} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn frame_times_follow_hop() {
        let fs = 1000.0;
        let sig = vec![0.0; 1000];
        let sg = Spectrogram::compute(
            &sig,
            fs,
            StftConfig {
                frame_len: 100,
                hop: 50,
                window: WindowKind::Rectangular,
            },
        );
        assert!((sg.frame_times()[1] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn short_signal_yields_no_frames() {
        let sg = Spectrogram::compute(&[0.0; 10], 100.0, StftConfig::default());
        assert_eq!(sg.num_frames(), 0);
    }

    #[test]
    fn bin_trace_length_matches_frames() {
        let fs = 8000.0;
        let sig = tone(440.0, fs, 8192);
        let sg = Spectrogram::compute(&sig, fs, StftConfig::default());
        assert_eq!(sg.bin_trace(440.0).len(), sg.num_frames());
    }

    #[test]
    #[should_panic(expected = "hop must be positive")]
    fn rejects_zero_hop() {
        stft(
            &[0.0; 100],
            StftConfig {
                frame_len: 10,
                hop: 0,
                window: WindowKind::Hann,
            },
        );
    }
}

//! Framed signal-level metering.
//!
//! The sound-field verification component (§IV-B2) builds feature vectors of
//! `(volume dB, rotation angle)` tuples; this module produces the framed
//! volume track from microphone samples.

/// RMS of a slice (0 for empty input).
pub fn rms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Converts an amplitude to dB full-scale, with a −120 dB silence floor.
pub fn amplitude_to_dbfs(a: f64) -> f64 {
    if a <= 0.0 {
        return -120.0;
    }
    (20.0 * a.log10()).max(-120.0)
}

/// Per-frame RMS levels in dBFS.
///
/// Returns `(frame_times_s, levels_db)`.
///
/// # Panics
///
/// Panics if `frame_s` or `sample_rate` is non-positive.
pub fn level_track(samples: &[f64], sample_rate: f64, frame_s: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(
        sample_rate > 0.0 && frame_s > 0.0,
        "rate and frame must be positive"
    );
    let frame_len = ((sample_rate * frame_s).round() as usize).max(1);
    let mut times = Vec::new();
    let mut levels = Vec::new();
    for (i, chunk) in samples.chunks(frame_len).enumerate() {
        times.push(i as f64 * frame_len as f64 / sample_rate);
        levels.push(amplitude_to_dbfs(rms(chunk)));
    }
    (times, levels)
}

/// Peak absolute amplitude.
pub fn peak(samples: &[f64]) -> f64 {
    samples.iter().fold(0.0f64, |acc, x| acc.max(x.abs()))
}

/// Crest factor (peak / RMS) in dB; 0 dB for silence.
pub fn crest_factor_db(samples: &[f64]) -> f64 {
    let r = rms(samples);
    let p = peak(samples);
    if r <= 0.0 || p <= 0.0 {
        return 0.0;
    }
    20.0 * (p / r).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_sine() {
        let sig: Vec<f64> = (0..1000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
            .collect();
        assert!((rms(&sig) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn dbfs_reference_points() {
        assert!((amplitude_to_dbfs(1.0)).abs() < 1e-12);
        assert!((amplitude_to_dbfs(0.5) + 6.0206).abs() < 1e-3);
        assert_eq!(amplitude_to_dbfs(0.0), -120.0);
    }

    #[test]
    fn level_track_shape() {
        let sig = vec![1.0; 1000];
        let (t, l) = level_track(&sig, 1000.0, 0.1);
        assert_eq!(t.len(), 10);
        assert!(l.iter().all(|&x| x.abs() < 1e-9));
        assert!((t[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn crest_factor_of_sine_is_3db() {
        let sig: Vec<f64> = (0..10_000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 100.0).sin())
            .collect();
        assert!((crest_factor_db(&sig) - 3.0103).abs() < 0.05);
    }

    #[test]
    fn crest_factor_of_silence_is_zero() {
        assert_eq!(crest_factor_db(&[0.0; 10]), 0.0);
    }
}

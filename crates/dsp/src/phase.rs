//! Frame-wise phase tracking of a narrowband pilot tone.
//!
//! The paper's sound-source distance verification (§IV-B1) emits an
//! inaudible tone above 16 kHz from the phone speaker and tracks the phase
//! of the received tone: moving the phone by Δd changes the acoustic path
//! length and therefore the phase by `2π·Δd/λ`. With λ < 2 cm, centimetre
//! motion produces multiple full cycles, so the phase must be unwrapped.
//!
//! [`PhaseTracker`] produces per-frame unwrapped phase; converting to
//! displacement is `Δd = −Δφ·λ/(2π)` for a direct path (the paper's §IV-B1,
//! following LLAP-style phase ranging \[49\]).

use crate::goertzel::goertzel;

/// Per-frame phase measurements of a pilot tone.
#[derive(Debug, Clone)]
pub struct PhaseTrack {
    /// Frame start times (s).
    pub times: Vec<f64>,
    /// Unwrapped phase (radians) per frame.
    pub phase: Vec<f64>,
    /// Tone amplitude per frame (for confidence gating).
    pub amplitude: Vec<f64>,
}

/// Extracts framed, unwrapped pilot-tone phase from a signal.
#[derive(Debug, Clone)]
pub struct PhaseTracker {
    /// Pilot frequency (Hz).
    pub pilot_hz: f64,
    /// Frame length in samples.
    pub frame_len: usize,
    /// Hop between frames in samples.
    pub hop: usize,
}

impl PhaseTracker {
    /// Creates a tracker with frame/hop sized for ~1 ms resolution at `fs`.
    pub fn new(pilot_hz: f64, sample_rate: f64) -> Self {
        // ~2 ms frames, 1 ms hop: enough cycles of an 18 kHz pilot for a
        // stable phase estimate, fast enough to keep Δφ per hop ≪ π for
        // hand-speed motion.
        let frame_len = (sample_rate * 0.002).round() as usize;
        let hop = (sample_rate * 0.001).round() as usize;
        Self {
            pilot_hz,
            frame_len: frame_len.max(8),
            hop: hop.max(1),
        }
    }

    /// Tracks the pilot through `signal`, returning unwrapped phase frames.
    ///
    /// The phase of frame `t` is measured relative to the pilot oscillator,
    /// by mixing down with the frame's start offset so that a static scene
    /// yields constant phase.
    pub fn track(&self, signal: &[f64], sample_rate: f64) -> PhaseTrack {
        let mut times = Vec::new();
        let mut raw_phase = Vec::new();
        let mut amplitude = Vec::new();
        let mut start = 0;
        while start + self.frame_len <= signal.len() {
            let frame = &signal[start..start + self.frame_len];
            let z = goertzel(frame, self.pilot_hz, sample_rate);
            // Remove the carrier phase accumulated up to the frame start so
            // consecutive frames of a static tone agree.
            let carrier = std::f64::consts::TAU * self.pilot_hz * start as f64 / sample_rate;
            let corrected = z.arg() - carrier;
            times.push(start as f64 / sample_rate);
            raw_phase.push(wrap(corrected));
            amplitude.push(z.abs() * 2.0 / self.frame_len as f64);
            start += self.hop;
        }
        PhaseTrack {
            times,
            phase: unwrap_phase(&raw_phase),
            amplitude,
        }
    }
}

/// Unwraps a sequence of wrapped phases (each in `(-π, π]`) into a
/// continuous phase curve.
pub fn unwrap_phase(wrapped: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(wrapped.len());
    let mut offset = 0.0;
    let mut prev = None;
    for &p in wrapped {
        if let Some(pr) = prev {
            let mut d: f64 = p + offset - pr;
            while d > std::f64::consts::PI {
                offset -= std::f64::consts::TAU;
                d -= std::f64::consts::TAU;
            }
            while d < -std::f64::consts::PI {
                offset += std::f64::consts::TAU;
                d += std::f64::consts::TAU;
            }
        }
        let v = p + offset;
        out.push(v);
        prev = Some(v);
    }
    out
}

/// Converts an unwrapped phase change to a path-length change (meters) for a
/// one-way acoustic path.
///
/// `Δd = −Δφ · λ / 2π` where `λ = c / f`.
pub fn phase_to_displacement(delta_phase: f64, pilot_hz: f64, speed_of_sound: f64) -> f64 {
    let lambda = speed_of_sound / pilot_hz;
    -delta_phase * lambda / std::f64::consts::TAU
}

fn wrap(a: f64) -> f64 {
    let mut a = a % std::f64::consts::TAU;
    if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    } else if a <= -std::f64::consts::PI {
        a += std::f64::consts::TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn unwrap_recovers_linear_ramp() {
        let true_phase: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (t, u) in true_phase.iter().zip(&un) {
            assert!((t - u).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_negative_ramp() {
        let true_phase: Vec<f64> = (0..100).map(|i| -(i as f64) * 0.7).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (t, u) in true_phase.iter().zip(&un) {
            assert!((t - u).abs() < 1e-9);
        }
    }

    #[test]
    fn static_tone_has_flat_phase() {
        let fs = 48_000.0;
        let pilot = 18_000.0;
        let sig: Vec<f64> = (0..48_00)
            .map(|i| (TAU * pilot * i as f64 / fs + 0.3).cos())
            .collect();
        let track = PhaseTracker::new(pilot, fs).track(&sig, fs);
        assert!(track.phase.len() > 50);
        let spread = track
            .phase
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            });
        assert!(spread.1 - spread.0 < 0.05, "phase drifted: {spread:?}");
    }

    #[test]
    fn moving_source_phase_matches_displacement() {
        // Simulate a received tone whose path length shrinks at 10 cm/s.
        let fs = 48_000.0;
        let pilot = 18_000.0;
        let c = 343.0;
        let v = -0.10; // m/s (approaching)
        let sig: Vec<f64> = (0..48_000)
            .map(|i| {
                let t = i as f64 / fs;
                let d = 0.20 + v * t; // path length in meters
                (TAU * pilot * (t - d / c)).cos()
            })
            .collect();
        let track = PhaseTracker::new(pilot, fs).track(&sig, fs);
        let dphi = track.phase.last().unwrap() - track.phase[0];
        let dt = track.times.last().unwrap() - track.times[0];
        let dd = phase_to_displacement(dphi, pilot, c);
        let expected = v * dt;
        assert!(
            (dd - expected).abs() < 0.005,
            "estimated {dd:.4} m vs true {expected:.4} m"
        );
    }

    #[test]
    fn phase_to_displacement_sign() {
        // Approaching source (path shrinks) ⇒ phase grows ⇒ negative Δd.
        let d = phase_to_displacement(TAU, 17_150.0, 343.0);
        assert!(
            (d + 0.02).abs() < 1e-9,
            "one cycle at λ=2 cm is −2 cm, got {d}"
        );
    }

    #[test]
    fn wrap_stays_in_range() {
        for k in -20..20 {
            let a = wrap(0.1 + k as f64 * 1.3);
            assert!(a > -PI - 1e-12 && a <= PI + 1e-12);
        }
    }
}

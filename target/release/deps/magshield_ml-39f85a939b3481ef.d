/root/repo/target/release/deps/magshield_ml-39f85a939b3481ef.d: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

/root/repo/target/release/deps/libmagshield_ml-39f85a939b3481ef.rlib: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

/root/repo/target/release/deps/libmagshield_ml-39f85a939b3481ef.rmeta: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

crates/ml/src/lib.rs:
crates/ml/src/circlefit.rs:
crates/ml/src/codec.rs:
crates/ml/src/gmm.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/metrics.rs:
crates/ml/src/pca.rs:
crates/ml/src/scaler.rs:
crates/ml/src/svm.rs:

/root/repo/target/release/deps/magshield-64cbef75c81ec8b0.d: src/bin/magshield.rs

/root/repo/target/release/deps/magshield-64cbef75c81ec8b0: src/bin/magshield.rs

src/bin/magshield.rs:

/root/repo/target/release/deps/exp_speakers-d62104ec05775041.d: crates/bench/src/bin/exp_speakers.rs

/root/repo/target/release/deps/exp_speakers-d62104ec05775041: crates/bench/src/bin/exp_speakers.rs

crates/bench/src/bin/exp_speakers.rs:

/root/repo/target/release/deps/exp_obs_overhead-1437ef49fb1ea05b.d: crates/bench/src/bin/exp_obs_overhead.rs

/root/repo/target/release/deps/exp_obs_overhead-1437ef49fb1ea05b: crates/bench/src/bin/exp_obs_overhead.rs

crates/bench/src/bin/exp_obs_overhead.rs:

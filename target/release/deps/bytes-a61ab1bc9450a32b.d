/root/repo/target/release/deps/bytes-a61ab1bc9450a32b.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-a61ab1bc9450a32b.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-a61ab1bc9450a32b.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:

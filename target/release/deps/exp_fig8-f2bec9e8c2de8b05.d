/root/repo/target/release/deps/exp_fig8-f2bec9e8c2de8b05.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-f2bec9e8c2de8b05: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:

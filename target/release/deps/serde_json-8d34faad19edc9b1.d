/root/repo/target/release/deps/serde_json-8d34faad19edc9b1.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-8d34faad19edc9b1.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-8d34faad19edc9b1.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:

/root/repo/target/release/deps/magshield-5c96cf6787a0cd07.d: src/lib.rs

/root/repo/target/release/deps/libmagshield-5c96cf6787a0cd07.rlib: src/lib.rs

/root/repo/target/release/deps/libmagshield-5c96cf6787a0cd07.rmeta: src/lib.rs

src/lib.rs:

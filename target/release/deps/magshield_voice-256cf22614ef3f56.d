/root/repo/target/release/deps/magshield_voice-256cf22614ef3f56.d: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

/root/repo/target/release/deps/libmagshield_voice-256cf22614ef3f56.rlib: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

/root/repo/target/release/deps/libmagshield_voice-256cf22614ef3f56.rmeta: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

crates/voice/src/lib.rs:
crates/voice/src/attacks.rs:
crates/voice/src/corpus.rs:
crates/voice/src/devices.rs:
crates/voice/src/profile.rs:
crates/voice/src/synth.rs:

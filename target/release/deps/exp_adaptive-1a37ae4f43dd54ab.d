/root/repo/target/release/deps/exp_adaptive-1a37ae4f43dd54ab.d: crates/bench/src/bin/exp_adaptive.rs

/root/repo/target/release/deps/exp_adaptive-1a37ae4f43dd54ab: crates/bench/src/bin/exp_adaptive.rs

crates/bench/src/bin/exp_adaptive.rs:

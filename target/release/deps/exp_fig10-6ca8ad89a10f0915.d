/root/repo/target/release/deps/exp_fig10-6ca8ad89a10f0915.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/release/deps/exp_fig10-6ca8ad89a10f0915: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:

/root/repo/target/release/deps/exp_fig14-c7150d3333f846d5.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/release/deps/exp_fig14-c7150d3333f846d5: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:

/root/repo/target/release/deps/magshield_simkit-d247aea1f4064192.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

/root/repo/target/release/deps/libmagshield_simkit-d247aea1f4064192.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

/root/repo/target/release/deps/libmagshield_simkit-d247aea1f4064192.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/interp.rs:
crates/simkit/src/noise.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/units.rs:
crates/simkit/src/vec3.rs:

/root/repo/target/release/deps/serde-254b11a4143b1f1f.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-254b11a4143b1f1f.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-254b11a4143b1f1f.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:

/root/repo/target/release/deps/exp_throughput-cbc3939e42872d69.d: crates/bench/src/bin/exp_throughput.rs

/root/repo/target/release/deps/exp_throughput-cbc3939e42872d69: crates/bench/src/bin/exp_throughput.rs

crates/bench/src/bin/exp_throughput.rs:

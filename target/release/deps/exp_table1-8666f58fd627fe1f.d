/root/repo/target/release/deps/exp_table1-8666f58fd627fe1f.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-8666f58fd627fe1f: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:

/root/repo/target/release/deps/exp_streaming-518b23ab3d9692cb.d: crates/bench/src/bin/exp_streaming.rs

/root/repo/target/release/deps/exp_streaming-518b23ab3d9692cb: crates/bench/src/bin/exp_streaming.rs

crates/bench/src/bin/exp_streaming.rs:

/root/repo/target/release/deps/exp_ablation-06c88f6aebc25a6d.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-06c88f6aebc25a6d: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:

/root/repo/target/release/deps/magshield_physics-741d172de3a0c6b9.d: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs

/root/repo/target/release/deps/libmagshield_physics-741d172de3a0c6b9.rlib: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs

/root/repo/target/release/deps/libmagshield_physics-741d172de3a0c6b9.rmeta: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs

crates/physics/src/lib.rs:
crates/physics/src/acoustics/mod.rs:
crates/physics/src/acoustics/field.rs:
crates/physics/src/acoustics/medium.rs:
crates/physics/src/acoustics/piston.rs:
crates/physics/src/acoustics/propagation.rs:
crates/physics/src/acoustics/source.rs:
crates/physics/src/acoustics/tube.rs:
crates/physics/src/magnetics/mod.rs:
crates/physics/src/magnetics/dipole.rs:
crates/physics/src/magnetics/earth.rs:
crates/physics/src/magnetics/interference.rs:
crates/physics/src/magnetics/scene.rs:
crates/physics/src/magnetics/shielding.rs:

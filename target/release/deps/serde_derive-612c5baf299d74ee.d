/root/repo/target/release/deps/serde_derive-612c5baf299d74ee.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-612c5baf299d74ee.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:

/root/repo/target/release/deps/magshield_asv-079eefb96704c75d.d: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

/root/repo/target/release/deps/libmagshield_asv-079eefb96704c75d.rlib: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

/root/repo/target/release/deps/libmagshield_asv-079eefb96704c75d.rmeta: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

crates/asv/src/lib.rs:
crates/asv/src/eval.rs:
crates/asv/src/frontend.rs:
crates/asv/src/isv.rs:
crates/asv/src/model.rs:
crates/asv/src/replay_baseline.rs:
crates/asv/src/ubm.rs:

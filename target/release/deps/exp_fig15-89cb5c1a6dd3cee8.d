/root/repo/target/release/deps/exp_fig15-89cb5c1a6dd3cee8.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/release/deps/exp_fig15-89cb5c1a6dd3cee8: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:

/root/repo/target/release/deps/magshield_trajectory-ecfe95dc0e437536.d: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

/root/repo/target/release/deps/libmagshield_trajectory-ecfe95dc0e437536.rlib: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

/root/repo/target/release/deps/libmagshield_trajectory-ecfe95dc0e437536.rmeta: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

crates/trajectory/src/lib.rs:
crates/trajectory/src/motion.rs:
crates/trajectory/src/ranging.rs:
crates/trajectory/src/reconstruct.rs:

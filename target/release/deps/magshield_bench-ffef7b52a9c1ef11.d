/root/repo/target/release/deps/magshield_bench-ffef7b52a9c1ef11.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmagshield_bench-ffef7b52a9c1ef11.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmagshield_bench-ffef7b52a9c1ef11.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

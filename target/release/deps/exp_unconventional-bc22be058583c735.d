/root/repo/target/release/deps/exp_unconventional-bc22be058583c735.d: crates/bench/src/bin/exp_unconventional.rs

/root/repo/target/release/deps/exp_unconventional-bc22be058583c735: crates/bench/src/bin/exp_unconventional.rs

crates/bench/src/bin/exp_unconventional.rs:

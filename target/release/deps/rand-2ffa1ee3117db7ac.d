/root/repo/target/release/deps/rand-2ffa1ee3117db7ac.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-2ffa1ee3117db7ac.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-2ffa1ee3117db7ac.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:

/root/repo/target/release/deps/magshield_obs-c84c2cfe3f5a7b6a.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libmagshield_obs-c84c2cfe3f5a7b6a.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libmagshield_obs-c84c2cfe3f5a7b6a.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/labels.rs:
crates/obs/src/metrics.rs:
crates/obs/src/slo.rs:
crates/obs/src/span.rs:
crates/obs/src/trace.rs:

/root/repo/target/release/deps/exp_kernels-42422d5cb97f447c.d: crates/bench/src/bin/exp_kernels.rs

/root/repo/target/release/deps/exp_kernels-42422d5cb97f447c: crates/bench/src/bin/exp_kernels.rs

crates/bench/src/bin/exp_kernels.rs:

/root/repo/target/release/deps/exp_fig12-cb20b985a2cc1bb0.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/release/deps/exp_fig12-cb20b985a2cc1bb0: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:

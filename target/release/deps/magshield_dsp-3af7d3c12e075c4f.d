/root/repo/target/release/deps/magshield_dsp-3af7d3c12e075c4f.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libmagshield_dsp-3af7d3c12e075c4f.rlib: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libmagshield_dsp-3af7d3c12e075c4f.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/frame.rs:
crates/dsp/src/goertzel.rs:
crates/dsp/src/level.rs:
crates/dsp/src/mel.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stft.rs:
crates/dsp/src/vad.rs:
crates/dsp/src/window.rs:

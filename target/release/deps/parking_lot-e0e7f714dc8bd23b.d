/root/repo/target/release/deps/parking_lot-e0e7f714dc8bd23b.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e0e7f714dc8bd23b.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e0e7f714dc8bd23b.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:

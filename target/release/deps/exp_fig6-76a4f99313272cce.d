/root/repo/target/release/deps/exp_fig6-76a4f99313272cce.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-76a4f99313272cce: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:

/root/repo/target/release/deps/exp_soundtube-79ea991caaf8a5b5.d: crates/bench/src/bin/exp_soundtube.rs

/root/repo/target/release/deps/exp_soundtube-79ea991caaf8a5b5: crates/bench/src/bin/exp_soundtube.rs

crates/bench/src/bin/exp_soundtube.rs:

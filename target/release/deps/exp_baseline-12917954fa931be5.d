/root/repo/target/release/deps/exp_baseline-12917954fa931be5.d: crates/bench/src/bin/exp_baseline.rs

/root/repo/target/release/deps/exp_baseline-12917954fa931be5: crates/bench/src/bin/exp_baseline.rs

crates/bench/src/bin/exp_baseline.rs:

/root/repo/target/release/deps/exp_dualmic-b6c2088fd7f7e426.d: crates/bench/src/bin/exp_dualmic.rs

/root/repo/target/release/deps/exp_dualmic-b6c2088fd7f7e426: crates/bench/src/bin/exp_dualmic.rs

crates/bench/src/bin/exp_dualmic.rs:

/root/repo/target/release/deps/magshield_sensors-5dd7207a0e7bbf2b.d: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

/root/repo/target/release/deps/libmagshield_sensors-5dd7207a0e7bbf2b.rlib: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

/root/repo/target/release/deps/libmagshield_sensors-5dd7207a0e7bbf2b.rmeta: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

crates/sensors/src/lib.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/magnetometer.rs:
crates/sensors/src/microphone.rs:
crates/sensors/src/orientation.rs:
crates/sensors/src/phone.rs:
crates/sensors/src/speaker.rs:

/root/repo/target/release/deps/crossbeam-431f7885f7a8edb3.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-431f7885f7a8edb3.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-431f7885f7a8edb3.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:

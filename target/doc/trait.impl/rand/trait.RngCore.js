(function() {
    const implementors = Object.fromEntries([["magshield_simkit",[["impl RngCore for <a class=\"struct\" href=\"magshield_simkit/rng/struct.SimRng.html\" title=\"struct magshield_simkit::rng::SimRng\">SimRng</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[172]}
(function() {
    const implementors = Object.fromEntries([["magshield_obs",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"magshield_obs/slo/enum.HealthState.html\" title=\"enum magshield_obs::slo::HealthState\">HealthState</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"magshield_obs/labels/struct.Labels.html\" title=\"struct magshield_obs::labels::Labels\">Labels</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[554]}
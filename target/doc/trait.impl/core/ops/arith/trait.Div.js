(function() {
    const implementors = Object.fromEntries([["magshield_simkit",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Div.html\" title=\"trait core::ops::arith::Div\">Div</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"magshield_simkit/vec3/struct.Vec3.html\" title=\"struct magshield_simkit::vec3::Vec3\">Vec3</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[400]}
/root/repo/target/debug/examples/voice_unlock_server-29da23b5a2bd6034.d: examples/voice_unlock_server.rs

/root/repo/target/debug/examples/voice_unlock_server-29da23b5a2bd6034: examples/voice_unlock_server.rs

examples/voice_unlock_server.rs:

/root/repo/target/debug/examples/quickstart-dfd5b43436f71598.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-dfd5b43436f71598.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/dual_mic_unlock-42fb153703b8a228.d: examples/dual_mic_unlock.rs Cargo.toml

/root/repo/target/debug/examples/libdual_mic_unlock-42fb153703b8a228.rmeta: examples/dual_mic_unlock.rs Cargo.toml

examples/dual_mic_unlock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/attack_gauntlet-5a05e1dea1b62403.d: examples/attack_gauntlet.rs

/root/repo/target/debug/examples/attack_gauntlet-5a05e1dea1b62403: examples/attack_gauntlet.rs

examples/attack_gauntlet.rs:

/root/repo/target/debug/examples/train_bundle-77b2fb15cf2151de.d: examples/train_bundle.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_bundle-77b2fb15cf2151de.rmeta: examples/train_bundle.rs Cargo.toml

examples/train_bundle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

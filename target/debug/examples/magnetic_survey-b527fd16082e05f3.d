/root/repo/target/debug/examples/magnetic_survey-b527fd16082e05f3.d: examples/magnetic_survey.rs

/root/repo/target/debug/examples/magnetic_survey-b527fd16082e05f3: examples/magnetic_survey.rs

examples/magnetic_survey.rs:

/root/repo/target/debug/examples/dual_mic_unlock-092979292737a428.d: examples/dual_mic_unlock.rs

/root/repo/target/debug/examples/dual_mic_unlock-092979292737a428: examples/dual_mic_unlock.rs

examples/dual_mic_unlock.rs:

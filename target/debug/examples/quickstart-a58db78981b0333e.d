/root/repo/target/debug/examples/quickstart-a58db78981b0333e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a58db78981b0333e: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/magnetic_survey-a0080178d5819a4c.d: examples/magnetic_survey.rs Cargo.toml

/root/repo/target/debug/examples/libmagnetic_survey-a0080178d5819a4c.rmeta: examples/magnetic_survey.rs Cargo.toml

examples/magnetic_survey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

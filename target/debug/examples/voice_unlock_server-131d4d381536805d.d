/root/repo/target/debug/examples/voice_unlock_server-131d4d381536805d.d: examples/voice_unlock_server.rs Cargo.toml

/root/repo/target/debug/examples/libvoice_unlock_server-131d4d381536805d.rmeta: examples/voice_unlock_server.rs Cargo.toml

examples/voice_unlock_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

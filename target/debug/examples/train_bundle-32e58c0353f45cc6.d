/root/repo/target/debug/examples/train_bundle-32e58c0353f45cc6.d: examples/train_bundle.rs

/root/repo/target/debug/examples/train_bundle-32e58c0353f45cc6: examples/train_bundle.rs

examples/train_bundle.rs:

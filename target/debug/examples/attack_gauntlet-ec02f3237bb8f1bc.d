/root/repo/target/debug/examples/attack_gauntlet-ec02f3237bb8f1bc.d: examples/attack_gauntlet.rs Cargo.toml

/root/repo/target/debug/examples/libattack_gauntlet-ec02f3237bb8f1bc.rmeta: examples/attack_gauntlet.rs Cargo.toml

examples/attack_gauntlet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

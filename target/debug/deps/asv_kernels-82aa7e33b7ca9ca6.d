/root/repo/target/debug/deps/asv_kernels-82aa7e33b7ca9ca6.d: crates/bench/benches/asv_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libasv_kernels-82aa7e33b7ca9ca6.rmeta: crates/bench/benches/asv_kernels.rs Cargo.toml

crates/bench/benches/asv_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_asv-1c1e0706e5043121.d: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_asv-1c1e0706e5043121.rmeta: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs Cargo.toml

crates/asv/src/lib.rs:
crates/asv/src/eval.rs:
crates/asv/src/frontend.rs:
crates/asv/src/isv.rs:
crates/asv/src/model.rs:
crates/asv/src/replay_baseline.rs:
crates/asv/src/ubm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

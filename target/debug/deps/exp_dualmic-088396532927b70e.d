/root/repo/target/debug/deps/exp_dualmic-088396532927b70e.d: crates/bench/src/bin/exp_dualmic.rs

/root/repo/target/debug/deps/exp_dualmic-088396532927b70e: crates/bench/src/bin/exp_dualmic.rs

crates/bench/src/bin/exp_dualmic.rs:

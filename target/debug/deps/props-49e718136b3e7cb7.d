/root/repo/target/debug/deps/props-49e718136b3e7cb7.d: crates/trajectory/tests/props.rs

/root/repo/target/debug/deps/props-49e718136b3e7cb7: crates/trajectory/tests/props.rs

crates/trajectory/tests/props.rs:

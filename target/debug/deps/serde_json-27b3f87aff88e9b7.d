/root/repo/target/debug/deps/serde_json-27b3f87aff88e9b7.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-27b3f87aff88e9b7.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:

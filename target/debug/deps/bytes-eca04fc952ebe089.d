/root/repo/target/debug/deps/bytes-eca04fc952ebe089.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-eca04fc952ebe089.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:

/root/repo/target/debug/deps/exp_kernels-db69d4faed6d6781.d: crates/bench/src/bin/exp_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libexp_kernels-db69d4faed6d6781.rmeta: crates/bench/src/bin/exp_kernels.rs Cargo.toml

crates/bench/src/bin/exp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

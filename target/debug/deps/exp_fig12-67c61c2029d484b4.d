/root/repo/target/debug/deps/exp_fig12-67c61c2029d484b4.d: crates/bench/src/bin/exp_fig12.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig12-67c61c2029d484b4.rmeta: crates/bench/src/bin/exp_fig12.rs Cargo.toml

crates/bench/src/bin/exp_fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

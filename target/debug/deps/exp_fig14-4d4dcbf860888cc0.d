/root/repo/target/debug/deps/exp_fig14-4d4dcbf860888cc0.d: crates/bench/src/bin/exp_fig14.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig14-4d4dcbf860888cc0.rmeta: crates/bench/src/bin/exp_fig14.rs Cargo.toml

crates/bench/src/bin/exp_fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

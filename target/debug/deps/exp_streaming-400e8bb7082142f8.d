/root/repo/target/debug/deps/exp_streaming-400e8bb7082142f8.d: crates/bench/src/bin/exp_streaming.rs

/root/repo/target/debug/deps/exp_streaming-400e8bb7082142f8: crates/bench/src/bin/exp_streaming.rs

crates/bench/src/bin/exp_streaming.rs:

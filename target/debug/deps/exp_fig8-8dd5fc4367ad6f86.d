/root/repo/target/debug/deps/exp_fig8-8dd5fc4367ad6f86.d: crates/bench/src/bin/exp_fig8.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig8-8dd5fc4367ad6f86.rmeta: crates/bench/src/bin/exp_fig8.rs Cargo.toml

crates/bench/src/bin/exp_fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

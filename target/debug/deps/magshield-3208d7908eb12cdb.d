/root/repo/target/debug/deps/magshield-3208d7908eb12cdb.d: src/bin/magshield.rs

/root/repo/target/debug/deps/magshield-3208d7908eb12cdb: src/bin/magshield.rs

src/bin/magshield.rs:

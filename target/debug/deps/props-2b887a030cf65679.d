/root/repo/target/debug/deps/props-2b887a030cf65679.d: crates/ml/tests/props.rs

/root/repo/target/debug/deps/props-2b887a030cf65679: crates/ml/tests/props.rs

crates/ml/tests/props.rs:

/root/repo/target/debug/deps/pipeline-f10e067f20eb62b0.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-f10e067f20eb62b0.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_asv-a52076df20655e34.d: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

/root/repo/target/debug/deps/libmagshield_asv-a52076df20655e34.rlib: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

/root/repo/target/debug/deps/libmagshield_asv-a52076df20655e34.rmeta: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

crates/asv/src/lib.rs:
crates/asv/src/eval.rs:
crates/asv/src/frontend.rs:
crates/asv/src/isv.rs:
crates/asv/src/model.rs:
crates/asv/src/replay_baseline.rs:
crates/asv/src/ubm.rs:

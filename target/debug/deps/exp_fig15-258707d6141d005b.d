/root/repo/target/debug/deps/exp_fig15-258707d6141d005b.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/debug/deps/exp_fig15-258707d6141d005b: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:

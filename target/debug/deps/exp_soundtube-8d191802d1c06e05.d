/root/repo/target/debug/deps/exp_soundtube-8d191802d1c06e05.d: crates/bench/src/bin/exp_soundtube.rs Cargo.toml

/root/repo/target/debug/deps/libexp_soundtube-8d191802d1c06e05.rmeta: crates/bench/src/bin/exp_soundtube.rs Cargo.toml

crates/bench/src/bin/exp_soundtube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

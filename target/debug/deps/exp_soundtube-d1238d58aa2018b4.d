/root/repo/target/debug/deps/exp_soundtube-d1238d58aa2018b4.d: crates/bench/src/bin/exp_soundtube.rs

/root/repo/target/debug/deps/exp_soundtube-d1238d58aa2018b4: crates/bench/src/bin/exp_soundtube.rs

crates/bench/src/bin/exp_soundtube.rs:

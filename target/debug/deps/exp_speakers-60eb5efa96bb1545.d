/root/repo/target/debug/deps/exp_speakers-60eb5efa96bb1545.d: crates/bench/src/bin/exp_speakers.rs

/root/repo/target/debug/deps/exp_speakers-60eb5efa96bb1545: crates/bench/src/bin/exp_speakers.rs

crates/bench/src/bin/exp_speakers.rs:

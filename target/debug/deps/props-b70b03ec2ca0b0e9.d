/root/repo/target/debug/deps/props-b70b03ec2ca0b0e9.d: crates/sensors/tests/props.rs

/root/repo/target/debug/deps/props-b70b03ec2ca0b0e9: crates/sensors/tests/props.rs

crates/sensors/tests/props.rs:

/root/repo/target/debug/deps/props-f9694f9e1da64407.d: crates/simkit/tests/props.rs

/root/repo/target/debug/deps/props-f9694f9e1da64407: crates/simkit/tests/props.rs

crates/simkit/tests/props.rs:

/root/repo/target/debug/deps/magshield_sensors-afcf37bf22a9a973.d: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

/root/repo/target/debug/deps/libmagshield_sensors-afcf37bf22a9a973.rlib: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

/root/repo/target/debug/deps/libmagshield_sensors-afcf37bf22a9a973.rmeta: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

crates/sensors/src/lib.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/magnetometer.rs:
crates/sensors/src/microphone.rs:
crates/sensors/src/orientation.rs:
crates/sensors/src/phone.rs:
crates/sensors/src/speaker.rs:

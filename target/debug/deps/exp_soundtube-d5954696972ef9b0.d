/root/repo/target/debug/deps/exp_soundtube-d5954696972ef9b0.d: crates/bench/src/bin/exp_soundtube.rs Cargo.toml

/root/repo/target/debug/deps/libexp_soundtube-d5954696972ef9b0.rmeta: crates/bench/src/bin/exp_soundtube.rs Cargo.toml

crates/bench/src/bin/exp_soundtube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/crossbeam-3f1b668b05cc229a.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-3f1b668b05cc229a.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-3f1b668b05cc229a.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:

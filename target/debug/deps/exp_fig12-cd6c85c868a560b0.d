/root/repo/target/debug/deps/exp_fig12-cd6c85c868a560b0.d: crates/bench/src/bin/exp_fig12.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig12-cd6c85c868a560b0.rmeta: crates/bench/src/bin/exp_fig12.rs Cargo.toml

crates/bench/src/bin/exp_fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exp_adaptive-2cfdba5640cc641d.d: crates/bench/src/bin/exp_adaptive.rs

/root/repo/target/debug/deps/exp_adaptive-2cfdba5640cc641d: crates/bench/src/bin/exp_adaptive.rs

crates/bench/src/bin/exp_adaptive.rs:

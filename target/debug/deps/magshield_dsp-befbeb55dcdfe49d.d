/root/repo/target/debug/deps/magshield_dsp-befbeb55dcdfe49d.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libmagshield_dsp-befbeb55dcdfe49d.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/frame.rs:
crates/dsp/src/goertzel.rs:
crates/dsp/src/level.rs:
crates/dsp/src/mel.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stft.rs:
crates/dsp/src/vad.rs:
crates/dsp/src/window.rs:

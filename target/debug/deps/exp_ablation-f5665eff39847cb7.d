/root/repo/target/debug/deps/exp_ablation-f5665eff39847cb7.d: crates/bench/src/bin/exp_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation-f5665eff39847cb7.rmeta: crates/bench/src/bin/exp_ablation.rs Cargo.toml

crates/bench/src/bin/exp_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_simkit-4c05ee67eb36712e.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_simkit-4c05ee67eb36712e.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/interp.rs:
crates/simkit/src/noise.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/units.rs:
crates/simkit/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/batch_engine-5b4c3d89d5db1ed2.d: tests/batch_engine.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_engine-5b4c3d89d5db1ed2.rmeta: tests/batch_engine.rs Cargo.toml

tests/batch_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_voice-6b3d954948938dea.d: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_voice-6b3d954948938dea.rmeta: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs Cargo.toml

crates/voice/src/lib.rs:
crates/voice/src/attacks.rs:
crates/voice/src/corpus.rs:
crates/voice/src/devices.rs:
crates/voice/src/profile.rs:
crates/voice/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

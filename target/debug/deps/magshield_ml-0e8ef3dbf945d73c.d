/root/repo/target/debug/deps/magshield_ml-0e8ef3dbf945d73c.d: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

/root/repo/target/debug/deps/libmagshield_ml-0e8ef3dbf945d73c.rmeta: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

crates/ml/src/lib.rs:
crates/ml/src/circlefit.rs:
crates/ml/src/codec.rs:
crates/ml/src/gmm.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/metrics.rs:
crates/ml/src/pca.rs:
crates/ml/src/scaler.rs:
crates/ml/src/svm.rs:

/root/repo/target/debug/deps/zero_alloc-6d1726adf3827878.d: crates/asv/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-6d1726adf3827878.rmeta: crates/asv/tests/zero_alloc.rs Cargo.toml

crates/asv/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_dsp-895dd847b2461f16.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_dsp-895dd847b2461f16.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/frame.rs:
crates/dsp/src/goertzel.rs:
crates/dsp/src/level.rs:
crates/dsp/src/mel.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stft.rs:
crates/dsp/src/vad.rs:
crates/dsp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_trajectory-26331681fa76624f.d: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_trajectory-26331681fa76624f.rmeta: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs Cargo.toml

crates/trajectory/src/lib.rs:
crates/trajectory/src/motion.rs:
crates/trajectory/src/ranging.rs:
crates/trajectory/src/reconstruct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exp_fig14-22af40f348b79890.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-22af40f348b79890: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:

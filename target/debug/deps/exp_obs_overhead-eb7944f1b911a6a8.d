/root/repo/target/debug/deps/exp_obs_overhead-eb7944f1b911a6a8.d: crates/bench/src/bin/exp_obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libexp_obs_overhead-eb7944f1b911a6a8.rmeta: crates/bench/src/bin/exp_obs_overhead.rs Cargo.toml

crates/bench/src/bin/exp_obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

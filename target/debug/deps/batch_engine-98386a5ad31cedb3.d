/root/repo/target/debug/deps/batch_engine-98386a5ad31cedb3.d: tests/batch_engine.rs

/root/repo/target/debug/deps/batch_engine-98386a5ad31cedb3: tests/batch_engine.rs

tests/batch_engine.rs:

/root/repo/target/debug/deps/exp_kernels-3e85d744173e03ae.d: crates/bench/src/bin/exp_kernels.rs

/root/repo/target/debug/deps/exp_kernels-3e85d744173e03ae: crates/bench/src/bin/exp_kernels.rs

crates/bench/src/bin/exp_kernels.rs:

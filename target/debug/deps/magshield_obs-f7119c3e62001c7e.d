/root/repo/target/debug/deps/magshield_obs-f7119c3e62001c7e.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/magshield_obs-f7119c3e62001c7e: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/labels.rs:
crates/obs/src/metrics.rs:
crates/obs/src/slo.rs:
crates/obs/src/span.rs:
crates/obs/src/trace.rs:

/root/repo/target/debug/deps/criterion-589066d432a6bbb2.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-589066d432a6bbb2.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:

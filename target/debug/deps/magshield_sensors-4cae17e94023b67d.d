/root/repo/target/debug/deps/magshield_sensors-4cae17e94023b67d.d: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

/root/repo/target/debug/deps/magshield_sensors-4cae17e94023b67d: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs

crates/sensors/src/lib.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/magnetometer.rs:
crates/sensors/src/microphone.rs:
crates/sensors/src/orientation.rs:
crates/sensors/src/phone.rs:
crates/sensors/src/speaker.rs:

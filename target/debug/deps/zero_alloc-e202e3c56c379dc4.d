/root/repo/target/debug/deps/zero_alloc-e202e3c56c379dc4.d: crates/asv/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-e202e3c56c379dc4: crates/asv/tests/zero_alloc.rs

crates/asv/tests/zero_alloc.rs:

/root/repo/target/debug/deps/magshield_ml-d8a053b92b7246b4.d: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

/root/repo/target/debug/deps/magshield_ml-d8a053b92b7246b4: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs

crates/ml/src/lib.rs:
crates/ml/src/circlefit.rs:
crates/ml/src/codec.rs:
crates/ml/src/gmm.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/metrics.rs:
crates/ml/src/pca.rs:
crates/ml/src/scaler.rs:
crates/ml/src/svm.rs:

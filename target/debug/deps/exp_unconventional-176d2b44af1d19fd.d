/root/repo/target/debug/deps/exp_unconventional-176d2b44af1d19fd.d: crates/bench/src/bin/exp_unconventional.rs

/root/repo/target/debug/deps/exp_unconventional-176d2b44af1d19fd: crates/bench/src/bin/exp_unconventional.rs

crates/bench/src/bin/exp_unconventional.rs:

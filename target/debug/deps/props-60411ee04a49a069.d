/root/repo/target/debug/deps/props-60411ee04a49a069.d: crates/trajectory/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-60411ee04a49a069.rmeta: crates/trajectory/tests/props.rs Cargo.toml

crates/trajectory/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

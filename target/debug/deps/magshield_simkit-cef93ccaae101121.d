/root/repo/target/debug/deps/magshield_simkit-cef93ccaae101121.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

/root/repo/target/debug/deps/libmagshield_simkit-cef93ccaae101121.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

/root/repo/target/debug/deps/libmagshield_simkit-cef93ccaae101121.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/interp.rs:
crates/simkit/src/noise.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/units.rs:
crates/simkit/src/vec3.rs:

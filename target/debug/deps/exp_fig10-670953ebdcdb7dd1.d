/root/repo/target/debug/deps/exp_fig10-670953ebdcdb7dd1.d: crates/bench/src/bin/exp_fig10.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig10-670953ebdcdb7dd1.rmeta: crates/bench/src/bin/exp_fig10.rs Cargo.toml

crates/bench/src/bin/exp_fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

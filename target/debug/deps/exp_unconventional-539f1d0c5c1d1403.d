/root/repo/target/debug/deps/exp_unconventional-539f1d0c5c1d1403.d: crates/bench/src/bin/exp_unconventional.rs Cargo.toml

/root/repo/target/debug/deps/libexp_unconventional-539f1d0c5c1d1403.rmeta: crates/bench/src/bin/exp_unconventional.rs Cargo.toml

crates/bench/src/bin/exp_unconventional.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

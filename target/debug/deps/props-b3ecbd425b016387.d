/root/repo/target/debug/deps/props-b3ecbd425b016387.d: crates/voice/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-b3ecbd425b016387.rmeta: crates/voice/tests/props.rs Cargo.toml

crates/voice/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_voice-a62c86644894b2ed.d: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_voice-a62c86644894b2ed.rmeta: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs Cargo.toml

crates/voice/src/lib.rs:
crates/voice/src/attacks.rs:
crates/voice/src/corpus.rs:
crates/voice/src/devices.rs:
crates/voice/src/profile.rs:
crates/voice/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

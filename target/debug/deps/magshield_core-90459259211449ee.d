/root/repo/target/debug/deps/magshield_core-90459259211449ee.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/artifact.rs crates/core/src/batch.rs crates/core/src/cascade.rs crates/core/src/components/mod.rs crates/core/src/components/distance.rs crates/core/src/components/loudspeaker.rs crates/core/src/components/sld.rs crates/core/src/components/sound_field.rs crates/core/src/components/speaker_id.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/registry.rs crates/core/src/scenario.rs crates/core/src/server/mod.rs crates/core/src/server/protocol.rs crates/core/src/session.rs crates/core/src/stream.rs crates/core/src/trainer.rs crates/core/src/verdict.rs

/root/repo/target/debug/deps/libmagshield_core-90459259211449ee.rlib: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/artifact.rs crates/core/src/batch.rs crates/core/src/cascade.rs crates/core/src/components/mod.rs crates/core/src/components/distance.rs crates/core/src/components/loudspeaker.rs crates/core/src/components/sld.rs crates/core/src/components/sound_field.rs crates/core/src/components/speaker_id.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/registry.rs crates/core/src/scenario.rs crates/core/src/server/mod.rs crates/core/src/server/protocol.rs crates/core/src/session.rs crates/core/src/stream.rs crates/core/src/trainer.rs crates/core/src/verdict.rs

/root/repo/target/debug/deps/libmagshield_core-90459259211449ee.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/artifact.rs crates/core/src/batch.rs crates/core/src/cascade.rs crates/core/src/components/mod.rs crates/core/src/components/distance.rs crates/core/src/components/loudspeaker.rs crates/core/src/components/sld.rs crates/core/src/components/sound_field.rs crates/core/src/components/speaker_id.rs crates/core/src/config.rs crates/core/src/pipeline.rs crates/core/src/registry.rs crates/core/src/scenario.rs crates/core/src/server/mod.rs crates/core/src/server/protocol.rs crates/core/src/session.rs crates/core/src/stream.rs crates/core/src/trainer.rs crates/core/src/verdict.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/artifact.rs:
crates/core/src/batch.rs:
crates/core/src/cascade.rs:
crates/core/src/components/mod.rs:
crates/core/src/components/distance.rs:
crates/core/src/components/loudspeaker.rs:
crates/core/src/components/sld.rs:
crates/core/src/components/sound_field.rs:
crates/core/src/components/speaker_id.rs:
crates/core/src/config.rs:
crates/core/src/pipeline.rs:
crates/core/src/registry.rs:
crates/core/src/scenario.rs:
crates/core/src/server/mod.rs:
crates/core/src/server/protocol.rs:
crates/core/src/session.rs:
crates/core/src/stream.rs:
crates/core/src/trainer.rs:
crates/core/src/verdict.rs:

/root/repo/target/debug/deps/props-3a3989b8498ad2ce.d: crates/voice/tests/props.rs

/root/repo/target/debug/deps/props-3a3989b8498ad2ce: crates/voice/tests/props.rs

crates/voice/tests/props.rs:

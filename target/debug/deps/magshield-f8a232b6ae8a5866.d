/root/repo/target/debug/deps/magshield-f8a232b6ae8a5866.d: src/lib.rs

/root/repo/target/debug/deps/magshield-f8a232b6ae8a5866: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/serde-f0d9592228c3a11f.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f0d9592228c3a11f.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:

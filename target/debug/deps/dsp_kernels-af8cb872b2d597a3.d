/root/repo/target/debug/deps/dsp_kernels-af8cb872b2d597a3.d: crates/bench/benches/dsp_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libdsp_kernels-af8cb872b2d597a3.rmeta: crates/bench/benches/dsp_kernels.rs Cargo.toml

crates/bench/benches/dsp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

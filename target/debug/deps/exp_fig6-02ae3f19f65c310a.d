/root/repo/target/debug/deps/exp_fig6-02ae3f19f65c310a.d: crates/bench/src/bin/exp_fig6.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig6-02ae3f19f65c310a.rmeta: crates/bench/src/bin/exp_fig6.rs Cargo.toml

crates/bench/src/bin/exp_fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

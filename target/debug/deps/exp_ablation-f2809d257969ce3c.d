/root/repo/target/debug/deps/exp_ablation-f2809d257969ce3c.d: crates/bench/src/bin/exp_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablation-f2809d257969ce3c.rmeta: crates/bench/src/bin/exp_ablation.rs Cargo.toml

crates/bench/src/bin/exp_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/failure_injection-65da2e117f54e7f9.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-65da2e117f54e7f9.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/telemetry_plane-337cdd6f109c6dae.d: tests/telemetry_plane.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_plane-337cdd6f109c6dae.rmeta: tests/telemetry_plane.rs Cargo.toml

tests/telemetry_plane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_obs-4e707688da0361a8.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_obs-4e707688da0361a8.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/labels.rs:
crates/obs/src/metrics.rs:
crates/obs/src/slo.rs:
crates/obs/src/span.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/zero_alloc-77328e4df13facb7.d: crates/ml/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-77328e4df13facb7.rmeta: crates/ml/tests/zero_alloc.rs Cargo.toml

crates/ml/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/props-a8aa67aee50d39c0.d: crates/dsp/tests/props.rs

/root/repo/target/debug/deps/props-a8aa67aee50d39c0: crates/dsp/tests/props.rs

crates/dsp/tests/props.rs:

/root/repo/target/debug/deps/magshield_bench-99657b7f7313d07e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_bench-99657b7f7313d07e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

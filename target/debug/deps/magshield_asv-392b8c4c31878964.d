/root/repo/target/debug/deps/magshield_asv-392b8c4c31878964.d: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

/root/repo/target/debug/deps/magshield_asv-392b8c4c31878964: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

crates/asv/src/lib.rs:
crates/asv/src/eval.rs:
crates/asv/src/frontend.rs:
crates/asv/src/isv.rs:
crates/asv/src/model.rs:
crates/asv/src/replay_baseline.rs:
crates/asv/src/ubm.rs:

/root/repo/target/debug/deps/magshield_bench-a27fcdf69ada9968.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_bench-a27fcdf69ada9968.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

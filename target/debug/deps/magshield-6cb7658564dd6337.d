/root/repo/target/debug/deps/magshield-6cb7658564dd6337.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield-6cb7658564dd6337.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

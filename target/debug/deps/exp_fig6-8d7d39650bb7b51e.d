/root/repo/target/debug/deps/exp_fig6-8d7d39650bb7b51e.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-8d7d39650bb7b51e: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:

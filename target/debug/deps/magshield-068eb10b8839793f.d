/root/repo/target/debug/deps/magshield-068eb10b8839793f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield-068eb10b8839793f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand-f34009bf42a194df.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f34009bf42a194df.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:

/root/repo/target/debug/deps/exp_fig8-37bcac64e1bcdfad.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-37bcac64e1bcdfad: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:

/root/repo/target/debug/deps/magshield_dsp-6e921f9a2aefcce8.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/magshield_dsp-6e921f9a2aefcce8: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/frame.rs crates/dsp/src/goertzel.rs crates/dsp/src/level.rs crates/dsp/src/mel.rs crates/dsp/src/phase.rs crates/dsp/src/stft.rs crates/dsp/src/vad.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/frame.rs:
crates/dsp/src/goertzel.rs:
crates/dsp/src/level.rs:
crates/dsp/src/mel.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stft.rs:
crates/dsp/src/vad.rs:
crates/dsp/src/window.rs:

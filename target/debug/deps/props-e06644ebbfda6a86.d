/root/repo/target/debug/deps/props-e06644ebbfda6a86.d: crates/physics/tests/props.rs

/root/repo/target/debug/deps/props-e06644ebbfda6a86: crates/physics/tests/props.rs

crates/physics/tests/props.rs:

/root/repo/target/debug/deps/exp_throughput-6e2352cbb485a6f7.d: crates/bench/src/bin/exp_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libexp_throughput-6e2352cbb485a6f7.rmeta: crates/bench/src/bin/exp_throughput.rs Cargo.toml

crates/bench/src/bin/exp_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/artifact_compat-97a5b7d03df45308.d: tests/artifact_compat.rs /root/repo/results/golden_bundle_v1.bin Cargo.toml

/root/repo/target/debug/deps/libartifact_compat-97a5b7d03df45308.rmeta: tests/artifact_compat.rs /root/repo/results/golden_bundle_v1.bin Cargo.toml

tests/artifact_compat.rs:
/root/repo/results/golden_bundle_v1.bin:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/end_to_end-467ed9ce0d5cfb4a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-467ed9ce0d5cfb4a: tests/end_to_end.rs

tests/end_to_end.rs:

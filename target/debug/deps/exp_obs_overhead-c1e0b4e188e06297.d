/root/repo/target/debug/deps/exp_obs_overhead-c1e0b4e188e06297.d: crates/bench/src/bin/exp_obs_overhead.rs

/root/repo/target/debug/deps/exp_obs_overhead-c1e0b4e188e06297: crates/bench/src/bin/exp_obs_overhead.rs

crates/bench/src/bin/exp_obs_overhead.rs:

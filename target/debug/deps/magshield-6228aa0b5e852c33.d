/root/repo/target/debug/deps/magshield-6228aa0b5e852c33.d: src/bin/magshield.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield-6228aa0b5e852c33.rmeta: src/bin/magshield.rs Cargo.toml

src/bin/magshield.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

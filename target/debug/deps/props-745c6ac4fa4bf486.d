/root/repo/target/debug/deps/props-745c6ac4fa4bf486.d: crates/ml/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-745c6ac4fa4bf486.rmeta: crates/ml/tests/props.rs Cargo.toml

crates/ml/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

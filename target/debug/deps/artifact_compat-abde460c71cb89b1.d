/root/repo/target/debug/deps/artifact_compat-abde460c71cb89b1.d: tests/artifact_compat.rs /root/repo/results/golden_bundle_v1.bin

/root/repo/target/debug/deps/artifact_compat-abde460c71cb89b1: tests/artifact_compat.rs /root/repo/results/golden_bundle_v1.bin

tests/artifact_compat.rs:
/root/repo/results/golden_bundle_v1.bin:

# env-dep:CARGO_MANIFEST_DIR=/root/repo

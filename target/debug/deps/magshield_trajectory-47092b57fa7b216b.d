/root/repo/target/debug/deps/magshield_trajectory-47092b57fa7b216b.d: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

/root/repo/target/debug/deps/magshield_trajectory-47092b57fa7b216b: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

crates/trajectory/src/lib.rs:
crates/trajectory/src/motion.rs:
crates/trajectory/src/ranging.rs:
crates/trajectory/src/reconstruct.rs:

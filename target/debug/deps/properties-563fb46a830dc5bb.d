/root/repo/target/debug/deps/properties-563fb46a830dc5bb.d: tests/properties.rs

/root/repo/target/debug/deps/properties-563fb46a830dc5bb: tests/properties.rs

tests/properties.rs:

/root/repo/target/debug/deps/crossbeam-c240428f70a444f5.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-c240428f70a444f5.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:

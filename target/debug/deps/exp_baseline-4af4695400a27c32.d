/root/repo/target/debug/deps/exp_baseline-4af4695400a27c32.d: crates/bench/src/bin/exp_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libexp_baseline-4af4695400a27c32.rmeta: crates/bench/src/bin/exp_baseline.rs Cargo.toml

crates/bench/src/bin/exp_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

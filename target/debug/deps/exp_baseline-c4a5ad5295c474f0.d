/root/repo/target/debug/deps/exp_baseline-c4a5ad5295c474f0.d: crates/bench/src/bin/exp_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libexp_baseline-c4a5ad5295c474f0.rmeta: crates/bench/src/bin/exp_baseline.rs Cargo.toml

crates/bench/src/bin/exp_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

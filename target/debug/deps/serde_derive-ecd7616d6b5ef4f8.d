/root/repo/target/debug/deps/serde_derive-ecd7616d6b5ef4f8.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ecd7616d6b5ef4f8.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:

/root/repo/target/debug/deps/exp_throughput-bedd3b37593f3aed.d: crates/bench/src/bin/exp_throughput.rs

/root/repo/target/debug/deps/exp_throughput-bedd3b37593f3aed: crates/bench/src/bin/exp_throughput.rs

crates/bench/src/bin/exp_throughput.rs:

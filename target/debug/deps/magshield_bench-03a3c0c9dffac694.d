/root/repo/target/debug/deps/magshield_bench-03a3c0c9dffac694.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagshield_bench-03a3c0c9dffac694.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/end_to_end-a5ab6a33f4bac2a8.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-a5ab6a33f4bac2a8.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

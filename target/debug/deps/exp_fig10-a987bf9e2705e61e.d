/root/repo/target/debug/deps/exp_fig10-a987bf9e2705e61e.d: crates/bench/src/bin/exp_fig10.rs

/root/repo/target/debug/deps/exp_fig10-a987bf9e2705e61e: crates/bench/src/bin/exp_fig10.rs

crates/bench/src/bin/exp_fig10.rs:

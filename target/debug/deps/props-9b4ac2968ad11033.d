/root/repo/target/debug/deps/props-9b4ac2968ad11033.d: crates/dsp/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-9b4ac2968ad11033.rmeta: crates/dsp/tests/props.rs Cargo.toml

crates/dsp/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

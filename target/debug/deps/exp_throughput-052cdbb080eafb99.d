/root/repo/target/debug/deps/exp_throughput-052cdbb080eafb99.d: crates/bench/src/bin/exp_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libexp_throughput-052cdbb080eafb99.rmeta: crates/bench/src/bin/exp_throughput.rs Cargo.toml

crates/bench/src/bin/exp_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/criterion-d810d1a0b57c2c59.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d810d1a0b57c2c59.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d810d1a0b57c2c59.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:

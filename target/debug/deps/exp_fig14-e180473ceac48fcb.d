/root/repo/target/debug/deps/exp_fig14-e180473ceac48fcb.d: crates/bench/src/bin/exp_fig14.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig14-e180473ceac48fcb.rmeta: crates/bench/src/bin/exp_fig14.rs Cargo.toml

crates/bench/src/bin/exp_fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

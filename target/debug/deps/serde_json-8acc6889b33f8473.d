/root/repo/target/debug/deps/serde_json-8acc6889b33f8473.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-8acc6889b33f8473.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-8acc6889b33f8473.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:

/root/repo/target/debug/deps/parking_lot-95117fade845c261.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-95117fade845c261.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-95117fade845c261.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:

/root/repo/target/debug/deps/magshield_physics-8c3bd7b5fc6e5669.d: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_physics-8c3bd7b5fc6e5669.rmeta: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs Cargo.toml

crates/physics/src/lib.rs:
crates/physics/src/acoustics/mod.rs:
crates/physics/src/acoustics/field.rs:
crates/physics/src/acoustics/medium.rs:
crates/physics/src/acoustics/piston.rs:
crates/physics/src/acoustics/propagation.rs:
crates/physics/src/acoustics/source.rs:
crates/physics/src/acoustics/tube.rs:
crates/physics/src/magnetics/mod.rs:
crates/physics/src/magnetics/dipole.rs:
crates/physics/src/magnetics/earth.rs:
crates/physics/src/magnetics/interference.rs:
crates/physics/src/magnetics/scene.rs:
crates/physics/src/magnetics/shielding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_voice-1485ab9a457b0b8b.d: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

/root/repo/target/debug/deps/magshield_voice-1485ab9a457b0b8b: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

crates/voice/src/lib.rs:
crates/voice/src/attacks.rs:
crates/voice/src/corpus.rs:
crates/voice/src/devices.rs:
crates/voice/src/profile.rs:
crates/voice/src/synth.rs:

/root/repo/target/debug/deps/magshield_simkit-0e0c899011251f21.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

/root/repo/target/debug/deps/magshield_simkit-0e0c899011251f21: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/interp.rs:
crates/simkit/src/noise.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/units.rs:
crates/simkit/src/vec3.rs:

/root/repo/target/debug/deps/magshield_asv-344686c8ee0d4d8c.d: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

/root/repo/target/debug/deps/libmagshield_asv-344686c8ee0d4d8c.rmeta: crates/asv/src/lib.rs crates/asv/src/eval.rs crates/asv/src/frontend.rs crates/asv/src/isv.rs crates/asv/src/model.rs crates/asv/src/replay_baseline.rs crates/asv/src/ubm.rs

crates/asv/src/lib.rs:
crates/asv/src/eval.rs:
crates/asv/src/frontend.rs:
crates/asv/src/isv.rs:
crates/asv/src/model.rs:
crates/asv/src/replay_baseline.rs:
crates/asv/src/ubm.rs:

/root/repo/target/debug/deps/exp_unconventional-eb7121daef6e30c5.d: crates/bench/src/bin/exp_unconventional.rs Cargo.toml

/root/repo/target/debug/deps/libexp_unconventional-eb7121daef6e30c5.rmeta: crates/bench/src/bin/exp_unconventional.rs Cargo.toml

crates/bench/src/bin/exp_unconventional.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde-d3467588b6a1c1cb.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d3467588b6a1c1cb.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d3467588b6a1c1cb.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:

/root/repo/target/debug/deps/exp_dualmic-49c1b3429374e068.d: crates/bench/src/bin/exp_dualmic.rs Cargo.toml

/root/repo/target/debug/deps/libexp_dualmic-49c1b3429374e068.rmeta: crates/bench/src/bin/exp_dualmic.rs Cargo.toml

crates/bench/src/bin/exp_dualmic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

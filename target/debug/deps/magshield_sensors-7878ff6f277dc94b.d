/root/repo/target/debug/deps/magshield_sensors-7878ff6f277dc94b.d: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_sensors-7878ff6f277dc94b.rmeta: crates/sensors/src/lib.rs crates/sensors/src/imu.rs crates/sensors/src/magnetometer.rs crates/sensors/src/microphone.rs crates/sensors/src/orientation.rs crates/sensors/src/phone.rs crates/sensors/src/speaker.rs Cargo.toml

crates/sensors/src/lib.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/magnetometer.rs:
crates/sensors/src/microphone.rs:
crates/sensors/src/orientation.rs:
crates/sensors/src/phone.rs:
crates/sensors/src/speaker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

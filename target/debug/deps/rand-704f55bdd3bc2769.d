/root/repo/target/debug/deps/rand-704f55bdd3bc2769.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-704f55bdd3bc2769.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-704f55bdd3bc2769.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:

/root/repo/target/debug/deps/props-b3e602caab7e1995.d: crates/obs/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-b3e602caab7e1995.rmeta: crates/obs/tests/props.rs Cargo.toml

crates/obs/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_trajectory-153085e7b4d27867.d: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

/root/repo/target/debug/deps/libmagshield_trajectory-153085e7b4d27867.rmeta: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

crates/trajectory/src/lib.rs:
crates/trajectory/src/motion.rs:
crates/trajectory/src/ranging.rs:
crates/trajectory/src/reconstruct.rs:

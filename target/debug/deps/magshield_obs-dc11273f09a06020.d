/root/repo/target/debug/deps/magshield_obs-dc11273f09a06020.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libmagshield_obs-dc11273f09a06020.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libmagshield_obs-dc11273f09a06020.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/labels.rs:
crates/obs/src/metrics.rs:
crates/obs/src/slo.rs:
crates/obs/src/span.rs:
crates/obs/src/trace.rs:

/root/repo/target/debug/deps/exp_dualmic-a21f5f168c92b996.d: crates/bench/src/bin/exp_dualmic.rs Cargo.toml

/root/repo/target/debug/deps/libexp_dualmic-a21f5f168c92b996.rmeta: crates/bench/src/bin/exp_dualmic.rs Cargo.toml

crates/bench/src/bin/exp_dualmic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/exp_speakers-3be8ada25f4fbbfa.d: crates/bench/src/bin/exp_speakers.rs Cargo.toml

/root/repo/target/debug/deps/libexp_speakers-3be8ada25f4fbbfa.rmeta: crates/bench/src/bin/exp_speakers.rs Cargo.toml

crates/bench/src/bin/exp_speakers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/props-f04d0de0ed131139.d: crates/simkit/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-f04d0de0ed131139.rmeta: crates/simkit/tests/props.rs Cargo.toml

crates/simkit/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

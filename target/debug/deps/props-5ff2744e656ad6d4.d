/root/repo/target/debug/deps/props-5ff2744e656ad6d4.d: crates/physics/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-5ff2744e656ad6d4.rmeta: crates/physics/tests/props.rs Cargo.toml

crates/physics/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/model_lifecycle-959e13d4bdf03b7c.d: tests/model_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_lifecycle-959e13d4bdf03b7c.rmeta: tests/model_lifecycle.rs Cargo.toml

tests/model_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

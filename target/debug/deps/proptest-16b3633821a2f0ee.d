/root/repo/target/debug/deps/proptest-16b3633821a2f0ee.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-16b3633821a2f0ee.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:

/root/repo/target/debug/deps/exp_fig12-3731397960d8199b.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-3731397960d8199b: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:

/root/repo/target/debug/deps/exp_baseline-6c96d86339712c8a.d: crates/bench/src/bin/exp_baseline.rs

/root/repo/target/debug/deps/exp_baseline-6c96d86339712c8a: crates/bench/src/bin/exp_baseline.rs

crates/bench/src/bin/exp_baseline.rs:

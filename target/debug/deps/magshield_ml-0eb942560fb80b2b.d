/root/repo/target/debug/deps/magshield_ml-0eb942560fb80b2b.d: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_ml-0eb942560fb80b2b.rmeta: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/circlefit.rs:
crates/ml/src/codec.rs:
crates/ml/src/gmm.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/metrics.rs:
crates/ml/src/pca.rs:
crates/ml/src/scaler.rs:
crates/ml/src/svm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/properties-afab09812074b326.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-afab09812074b326.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

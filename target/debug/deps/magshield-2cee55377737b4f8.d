/root/repo/target/debug/deps/magshield-2cee55377737b4f8.d: src/bin/magshield.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield-2cee55377737b4f8.rmeta: src/bin/magshield.rs Cargo.toml

src/bin/magshield.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

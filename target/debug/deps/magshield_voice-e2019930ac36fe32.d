/root/repo/target/debug/deps/magshield_voice-e2019930ac36fe32.d: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

/root/repo/target/debug/deps/libmagshield_voice-e2019930ac36fe32.rmeta: crates/voice/src/lib.rs crates/voice/src/attacks.rs crates/voice/src/corpus.rs crates/voice/src/devices.rs crates/voice/src/profile.rs crates/voice/src/synth.rs

crates/voice/src/lib.rs:
crates/voice/src/attacks.rs:
crates/voice/src/corpus.rs:
crates/voice/src/devices.rs:
crates/voice/src/profile.rs:
crates/voice/src/synth.rs:

/root/repo/target/debug/deps/props-f792f668a954054c.d: crates/sensors/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-f792f668a954054c.rmeta: crates/sensors/tests/props.rs Cargo.toml

crates/sensors/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

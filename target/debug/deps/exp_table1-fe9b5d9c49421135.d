/root/repo/target/debug/deps/exp_table1-fe9b5d9c49421135.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-fe9b5d9c49421135: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:

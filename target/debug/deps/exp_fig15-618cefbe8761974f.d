/root/repo/target/debug/deps/exp_fig15-618cefbe8761974f.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/debug/deps/exp_fig15-618cefbe8761974f: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:

/root/repo/target/debug/deps/props-037ed9bdc1797379.d: crates/obs/tests/props.rs

/root/repo/target/debug/deps/props-037ed9bdc1797379: crates/obs/tests/props.rs

crates/obs/tests/props.rs:

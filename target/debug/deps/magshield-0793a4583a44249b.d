/root/repo/target/debug/deps/magshield-0793a4583a44249b.d: src/lib.rs

/root/repo/target/debug/deps/libmagshield-0793a4583a44249b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmagshield-0793a4583a44249b.rmeta: src/lib.rs

src/lib.rs:

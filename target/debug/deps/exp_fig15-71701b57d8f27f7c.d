/root/repo/target/debug/deps/exp_fig15-71701b57d8f27f7c.d: crates/bench/src/bin/exp_fig15.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig15-71701b57d8f27f7c.rmeta: crates/bench/src/bin/exp_fig15.rs Cargo.toml

crates/bench/src/bin/exp_fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

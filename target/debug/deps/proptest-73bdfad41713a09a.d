/root/repo/target/debug/deps/proptest-73bdfad41713a09a.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-73bdfad41713a09a.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-73bdfad41713a09a.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:

/root/repo/target/debug/deps/telemetry_plane-bf89dcc8b851fa1a.d: tests/telemetry_plane.rs

/root/repo/target/debug/deps/telemetry_plane-bf89dcc8b851fa1a: tests/telemetry_plane.rs

tests/telemetry_plane.rs:

/root/repo/target/debug/deps/zero_alloc-222e354f29a306d2.d: crates/ml/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-222e354f29a306d2: crates/ml/tests/zero_alloc.rs

crates/ml/tests/zero_alloc.rs:

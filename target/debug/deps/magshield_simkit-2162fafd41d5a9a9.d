/root/repo/target/debug/deps/magshield_simkit-2162fafd41d5a9a9.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

/root/repo/target/debug/deps/libmagshield_simkit-2162fafd41d5a9a9.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/interp.rs crates/simkit/src/noise.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/units.rs crates/simkit/src/vec3.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/interp.rs:
crates/simkit/src/noise.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/units.rs:
crates/simkit/src/vec3.rs:

/root/repo/target/debug/deps/magshield_ml-2011eaea6ee0c2d2.d: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs Cargo.toml

/root/repo/target/debug/deps/libmagshield_ml-2011eaea6ee0c2d2.rmeta: crates/ml/src/lib.rs crates/ml/src/circlefit.rs crates/ml/src/codec.rs crates/ml/src/gmm.rs crates/ml/src/kmeans.rs crates/ml/src/metrics.rs crates/ml/src/pca.rs crates/ml/src/scaler.rs crates/ml/src/svm.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/circlefit.rs:
crates/ml/src/codec.rs:
crates/ml/src/gmm.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/metrics.rs:
crates/ml/src/pca.rs:
crates/ml/src/scaler.rs:
crates/ml/src/svm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/magshield_physics-1a66a8d3380e858d.d: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs

/root/repo/target/debug/deps/libmagshield_physics-1a66a8d3380e858d.rlib: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs

/root/repo/target/debug/deps/libmagshield_physics-1a66a8d3380e858d.rmeta: crates/physics/src/lib.rs crates/physics/src/acoustics/mod.rs crates/physics/src/acoustics/field.rs crates/physics/src/acoustics/medium.rs crates/physics/src/acoustics/piston.rs crates/physics/src/acoustics/propagation.rs crates/physics/src/acoustics/source.rs crates/physics/src/acoustics/tube.rs crates/physics/src/magnetics/mod.rs crates/physics/src/magnetics/dipole.rs crates/physics/src/magnetics/earth.rs crates/physics/src/magnetics/interference.rs crates/physics/src/magnetics/scene.rs crates/physics/src/magnetics/shielding.rs

crates/physics/src/lib.rs:
crates/physics/src/acoustics/mod.rs:
crates/physics/src/acoustics/field.rs:
crates/physics/src/acoustics/medium.rs:
crates/physics/src/acoustics/piston.rs:
crates/physics/src/acoustics/propagation.rs:
crates/physics/src/acoustics/source.rs:
crates/physics/src/acoustics/tube.rs:
crates/physics/src/magnetics/mod.rs:
crates/physics/src/magnetics/dipole.rs:
crates/physics/src/magnetics/earth.rs:
crates/physics/src/magnetics/interference.rs:
crates/physics/src/magnetics/scene.rs:
crates/physics/src/magnetics/shielding.rs:

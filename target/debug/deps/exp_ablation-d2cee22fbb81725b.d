/root/repo/target/debug/deps/exp_ablation-d2cee22fbb81725b.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-d2cee22fbb81725b: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:

/root/repo/target/debug/deps/magshield_trajectory-ae96796214f569a7.d: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

/root/repo/target/debug/deps/libmagshield_trajectory-ae96796214f569a7.rlib: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

/root/repo/target/debug/deps/libmagshield_trajectory-ae96796214f569a7.rmeta: crates/trajectory/src/lib.rs crates/trajectory/src/motion.rs crates/trajectory/src/ranging.rs crates/trajectory/src/reconstruct.rs

crates/trajectory/src/lib.rs:
crates/trajectory/src/motion.rs:
crates/trajectory/src/ranging.rs:
crates/trajectory/src/reconstruct.rs:

/root/repo/target/debug/deps/bytes-6df66f66eed6dbc0.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-6df66f66eed6dbc0.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-6df66f66eed6dbc0.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:

/root/repo/target/debug/deps/exp_table1-4c35113a8cfcda08.d: crates/bench/src/bin/exp_table1.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table1-4c35113a8cfcda08.rmeta: crates/bench/src/bin/exp_table1.rs Cargo.toml

crates/bench/src/bin/exp_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/batch-2d26584cb855a39a.d: crates/bench/benches/batch.rs Cargo.toml

/root/repo/target/debug/deps/libbatch-2d26584cb855a39a.rmeta: crates/bench/benches/batch.rs Cargo.toml

crates/bench/benches/batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

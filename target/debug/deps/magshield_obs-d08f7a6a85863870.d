/root/repo/target/debug/deps/magshield_obs-d08f7a6a85863870.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libmagshield_obs-d08f7a6a85863870.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/labels.rs crates/obs/src/metrics.rs crates/obs/src/slo.rs crates/obs/src/span.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/labels.rs:
crates/obs/src/metrics.rs:
crates/obs/src/slo.rs:
crates/obs/src/span.rs:
crates/obs/src/trace.rs:

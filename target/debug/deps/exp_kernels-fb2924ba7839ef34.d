/root/repo/target/debug/deps/exp_kernels-fb2924ba7839ef34.d: crates/bench/src/bin/exp_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libexp_kernels-fb2924ba7839ef34.rmeta: crates/bench/src/bin/exp_kernels.rs Cargo.toml

crates/bench/src/bin/exp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

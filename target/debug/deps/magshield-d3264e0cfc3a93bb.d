/root/repo/target/debug/deps/magshield-d3264e0cfc3a93bb.d: src/bin/magshield.rs

/root/repo/target/debug/deps/magshield-d3264e0cfc3a93bb: src/bin/magshield.rs

src/bin/magshield.rs:

/root/repo/target/debug/deps/model_lifecycle-fe93975cffe87b94.d: tests/model_lifecycle.rs

/root/repo/target/debug/deps/model_lifecycle-fe93975cffe87b94: tests/model_lifecycle.rs

tests/model_lifecycle.rs:

/root/repo/target/debug/deps/magshield_bench-dd3bf8f412c1d2a4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/magshield_bench-dd3bf8f412c1d2a4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

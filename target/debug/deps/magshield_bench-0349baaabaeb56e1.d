/root/repo/target/debug/deps/magshield_bench-0349baaabaeb56e1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagshield_bench-0349baaabaeb56e1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmagshield_bench-0349baaabaeb56e1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

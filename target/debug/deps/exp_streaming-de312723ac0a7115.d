/root/repo/target/debug/deps/exp_streaming-de312723ac0a7115.d: crates/bench/src/bin/exp_streaming.rs Cargo.toml

/root/repo/target/debug/deps/libexp_streaming-de312723ac0a7115.rmeta: crates/bench/src/bin/exp_streaming.rs Cargo.toml

crates/bench/src/bin/exp_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

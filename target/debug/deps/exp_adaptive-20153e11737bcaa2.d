/root/repo/target/debug/deps/exp_adaptive-20153e11737bcaa2.d: crates/bench/src/bin/exp_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adaptive-20153e11737bcaa2.rmeta: crates/bench/src/bin/exp_adaptive.rs Cargo.toml

crates/bench/src/bin/exp_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

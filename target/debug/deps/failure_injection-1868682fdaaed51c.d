/root/repo/target/debug/deps/failure_injection-1868682fdaaed51c.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-1868682fdaaed51c: tests/failure_injection.rs

tests/failure_injection.rs:

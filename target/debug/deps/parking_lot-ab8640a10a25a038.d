/root/repo/target/debug/deps/parking_lot-ab8640a10a25a038.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-ab8640a10a25a038.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:

/root/repo/target/debug/deps/exp_adaptive-b893f7a81d79542f.d: crates/bench/src/bin/exp_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adaptive-b893f7a81d79542f.rmeta: crates/bench/src/bin/exp_adaptive.rs Cargo.toml

crates/bench/src/bin/exp_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
